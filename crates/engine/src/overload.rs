//! Security-aware overload management: degradation ladder, semantic load
//! shedding, classed (control/data) bounded queues, and admission control.
//!
//! Under overload a streaming engine must drop *something*. The invariant
//! this module enforces is that it never drops — or delays past slack, or
//! reorders — **security punctuations**: sps are lossless control traffic
//! at every layer, while data tuples are the only sheddable class. Shedding
//! data can only ever *under*-release (the released set of a shedded run is
//! a subset of the unloaded run's), and the analyzer's end-of-run policy
//! table stays byte-identical because every sp still flows through in
//! order.
//!
//! Four cooperating pieces:
//!
//! - [`DegradationLadder`]: a watermark controller with hysteresis that
//!   maps queue occupancy to an [`OverloadLevel`] — `Normal` →
//!   `Shedding` → `CriticalShedding` → `FailClosed` — and records every
//!   transition for observability.
//! - [`Shedder`]: an in-plan operator that models its downstream queue as
//!   a deterministic virtual queue (filled by admitted tuples, drained by
//!   stream-time progress) and sheds data tuples per a pluggable
//!   [`ShedPolicy`] when the ladder escalates. Policies pass through
//!   untouched at every level, including `FailClosed`.
//! - [`classed_channel`]: a two-class bounded queue for the parallel
//!   runtime where control traffic (punctuations, epoch barriers) is
//!   always enqueueable and only data admission is bounded, so a stuffed
//!   pipe can never block an sp behind data backpressure.
//! - [`AdmissionController`]: a per-session token bucket at the ingestion
//!   boundary with burst allowance and deadline-based debt, surfacing
//!   typed [`EngineError::Overloaded`] errors with a `retry_after` hint.
//!
//! Everything is driven by *stream time*, never wall clock, so overload
//! behaviour is deterministic and replayable — the property the
//! `overload_props` test suite leans on.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

use bytes::Buf;
use sp_core::{StreamId, Timestamp, Tuple};

use crate::checkpoint as ckpt;
use crate::element::{Element, SegmentPolicy};
use crate::error::EngineError;
use crate::fault::SplitMix64;
use crate::operator::{Emitter, Operator};
use crate::predicate_index::PredicateIndex;
use crate::slack::Slack;
use crate::stats::{DegradationStats, OperatorStats};

/// How degraded the engine currently is. Levels are ordered: escalation
/// moves right, recovery moves left, one rung at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum OverloadLevel {
    /// No shedding; every admitted element flows.
    #[default]
    Normal,
    /// The configured [`ShedPolicy`] decides which data tuples to drop.
    Shedding,
    /// Only tuples that some registered query's predicate can match (or,
    /// without an index, tuples whose governing policy is not deny-all)
    /// pass; everything else is shed.
    CriticalShedding,
    /// All data is refused; security punctuations are still absorbed so
    /// policy state keeps advancing and recovery starts warm.
    FailClosed,
}

impl OverloadLevel {
    /// Stable numeric code (`Normal` = 0 … `FailClosed` = 3) used in
    /// snapshots and [`DegradationStats::overload_level`].
    #[must_use]
    pub const fn code(self) -> u8 {
        match self {
            Self::Normal => 0,
            Self::Shedding => 1,
            Self::CriticalShedding => 2,
            Self::FailClosed => 3,
        }
    }

    /// Inverse of [`OverloadLevel::code`].
    ///
    /// # Errors
    ///
    /// Fails on codes above 3.
    pub fn from_code(code: u8) -> Result<Self, String> {
        match code {
            0 => Ok(Self::Normal),
            1 => Ok(Self::Shedding),
            2 => Ok(Self::CriticalShedding),
            3 => Ok(Self::FailClosed),
            other => Err(format!("bad overload level code {other}")),
        }
    }

    /// Short display name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Normal => "Normal",
            Self::Shedding => "Shedding",
            Self::CriticalShedding => "CriticalShedding",
            Self::FailClosed => "FailClosed",
        }
    }

    fn up(self) -> Option<Self> {
        match self {
            Self::Normal => Some(Self::Shedding),
            Self::Shedding => Some(Self::CriticalShedding),
            Self::CriticalShedding => Some(Self::FailClosed),
            Self::FailClosed => None,
        }
    }

    fn down(self) -> Option<Self> {
        match self {
            Self::Normal => None,
            Self::Shedding => Some(Self::Normal),
            Self::CriticalShedding => Some(Self::Shedding),
            Self::FailClosed => Some(Self::CriticalShedding),
        }
    }
}

impl fmt::Display for OverloadLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Occupancy watermarks (percent of queue capacity) that drive the
/// [`DegradationLadder`].
///
/// Each rung has a *high* watermark that triggers escalation into it and a
/// *low* watermark that must be crossed downward before recovering out of
/// it. Keeping `low < high` gives hysteresis: the ladder does not flap
/// when occupancy oscillates around a single threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatermarkConfig {
    /// Escalate `Normal` → `Shedding` at or above this occupancy.
    pub shed_high: u64,
    /// Recover `Shedding` → `Normal` at or below this occupancy.
    pub shed_low: u64,
    /// Escalate `Shedding` → `CriticalShedding` at or above.
    pub critical_high: u64,
    /// Recover `CriticalShedding` → `Shedding` at or below.
    pub critical_low: u64,
    /// Escalate `CriticalShedding` → `FailClosed` at or above.
    pub fail_high: u64,
    /// Recover `FailClosed` → `CriticalShedding` at or below.
    pub fail_low: u64,
}

impl Default for WatermarkConfig {
    fn default() -> Self {
        Self {
            shed_high: 60,
            shed_low: 35,
            critical_high: 80,
            critical_low: 55,
            fail_high: 95,
            fail_low: 70,
        }
    }
}

impl WatermarkConfig {
    fn high_into(self, level: OverloadLevel) -> u64 {
        match level {
            OverloadLevel::Normal => 0,
            OverloadLevel::Shedding => self.shed_high,
            OverloadLevel::CriticalShedding => self.critical_high,
            OverloadLevel::FailClosed => self.fail_high,
        }
    }

    fn low_out_of(self, level: OverloadLevel) -> u64 {
        match level {
            OverloadLevel::Normal => 0,
            OverloadLevel::Shedding => self.shed_low,
            OverloadLevel::CriticalShedding => self.critical_low,
            OverloadLevel::FailClosed => self.fail_low,
        }
    }
}

/// One recorded ladder transition, kept for observability and asserted on
/// by the chaos suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderTransition {
    /// Level before the transition.
    pub from: OverloadLevel,
    /// Level after the transition.
    pub to: OverloadLevel,
    /// Stream time at which the transition fired.
    pub at: Timestamp,
    /// Queue occupancy (percent) that triggered it.
    pub occupancy_pct: u64,
}

impl fmt::Display for LadderTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ladder {}->{} at {} ({}% full)", self.from, self.to, self.at, self.occupancy_pct)
    }
}

/// Upper bound on recorded transitions; beyond it only the counters keep
/// counting, so a flapping ladder cannot grow memory without bound.
pub const MAX_RECORDED_TRANSITIONS: usize = 256;

/// Hysteresis watermark controller mapping queue occupancy to an
/// [`OverloadLevel`].
#[derive(Debug, Clone)]
pub struct DegradationLadder {
    cfg: WatermarkConfig,
    level: OverloadLevel,
    peak: OverloadLevel,
    escalations: u64,
    recoveries: u64,
    transitions: Vec<LadderTransition>,
}

impl DegradationLadder {
    /// A ladder at `Normal` with the given watermarks.
    #[must_use]
    pub fn new(cfg: WatermarkConfig) -> Self {
        Self {
            cfg,
            level: OverloadLevel::Normal,
            peak: OverloadLevel::Normal,
            escalations: 0,
            recoveries: 0,
            transitions: Vec::new(),
        }
    }

    /// Current level.
    #[must_use]
    pub fn level(&self) -> OverloadLevel {
        self.level
    }

    /// Highest level ever reached.
    #[must_use]
    pub fn peak(&self) -> OverloadLevel {
        self.peak
    }

    /// Number of upward transitions.
    #[must_use]
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// Number of downward transitions.
    #[must_use]
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Recorded transitions (capped at [`MAX_RECORDED_TRANSITIONS`]).
    #[must_use]
    pub fn transitions(&self) -> &[LadderTransition] {
        &self.transitions
    }

    /// Feeds one occupancy observation (percent of capacity) at stream
    /// time `at`; returns the level after applying any transitions.
    ///
    /// A single observation can climb or descend several rungs (e.g. a
    /// burst that jumps occupancy from 10% to 99% escalates straight to
    /// `FailClosed`, logging each rung).
    pub fn observe(&mut self, occupancy_pct: u64, at: Timestamp) -> OverloadLevel {
        while let Some(next) = self.level.up() {
            if occupancy_pct >= self.cfg.high_into(next) {
                self.record(next, at, occupancy_pct);
                self.escalations += 1;
                self.level = next;
                self.peak = self.peak.max(next);
            } else {
                break;
            }
        }
        while let Some(prev) = self.level.down() {
            if occupancy_pct <= self.cfg.low_out_of(self.level) {
                self.record(prev, at, occupancy_pct);
                self.recoveries += 1;
                self.level = prev;
            } else {
                break;
            }
        }
        self.level
    }

    fn record(&mut self, to: OverloadLevel, at: Timestamp, occupancy_pct: u64) {
        if self.transitions.len() < MAX_RECORDED_TRANSITIONS {
            self.transitions.push(LadderTransition { from: self.level, to, at, occupancy_pct });
        }
    }

    fn snapshot(&self, buf: &mut Vec<u8>) {
        buf.push(self.level.code());
        buf.push(self.peak.code());
        buf.extend_from_slice(&self.escalations.to_be_bytes());
        buf.extend_from_slice(&self.recoveries.to_be_bytes());
        #[allow(clippy::cast_possible_truncation)] // capped at 256
        let n = self.transitions.len() as u32;
        buf.extend_from_slice(&n.to_be_bytes());
        for t in &self.transitions {
            buf.push(t.from.code());
            buf.push(t.to.code());
            buf.extend_from_slice(&t.at.0.to_be_bytes());
            buf.extend_from_slice(&t.occupancy_pct.to_be_bytes());
        }
    }

    fn restore(&mut self, buf: &mut impl Buf) -> Result<(), String> {
        ckpt::need(buf, 2 + 8 + 8 + 4, "ladder header")?;
        self.level = OverloadLevel::from_code(buf.get_u8())?;
        self.peak = OverloadLevel::from_code(buf.get_u8())?;
        self.escalations = buf.get_u64();
        self.recoveries = buf.get_u64();
        let n = buf.get_u32() as usize;
        if n > MAX_RECORDED_TRANSITIONS {
            return Err(format!("ladder transition count {n} exceeds cap"));
        }
        self.transitions.clear();
        for _ in 0..n {
            ckpt::need(buf, 2 + 8 + 8, "ladder transition")?;
            let from = OverloadLevel::from_code(buf.get_u8())?;
            let to = OverloadLevel::from_code(buf.get_u8())?;
            let at = Timestamp(buf.get_u64());
            let occupancy_pct = buf.get_u64();
            self.transitions.push(LadderTransition { from, to, at, occupancy_pct });
        }
        Ok(())
    }
}

/// Which data tuples a [`Shedder`] drops while the ladder sits at
/// [`OverloadLevel::Shedding`]. Higher levels override the policy:
/// `CriticalShedding` keeps only predicate-matched tuples and
/// `FailClosed` keeps none.
///
/// No policy ever sheds a security punctuation — that is structural (the
/// shedder's policy arm never consults the shed policy), not a property
/// each policy must re-establish.
#[derive(Debug, Clone, PartialEq)]
pub enum ShedPolicy {
    /// Shed each tuple independently with probability `p`, using a seeded
    /// deterministic generator.
    RandomP {
        /// Per-tuple shed probability in `[0, 1]`.
        p: f64,
        /// Generator seed (same seed + same input → same shed set).
        seed: u64,
    },
    /// Shed tuples that are already late by more than the slack relative
    /// to the maximum timestamp seen — they are the least useful to keep,
    /// and dropping them cannot starve fresh data.
    OldestFirst {
        /// Lateness bound; shares the [`Slack`] definition with the
        /// reorder buffer.
        slack: Slack,
    },
    /// Max-min fairness across source streams: a tuple is shed if its
    /// stream has already been admitted strictly more than the
    /// least-admitted stream this overload episode. Counts reset when the
    /// ladder returns to `Normal`.
    FairPerStream,
}

impl ShedPolicy {
    /// Short name for display/benchmark labels.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::RandomP { .. } => "random-p",
            Self::OldestFirst { .. } => "oldest-first",
            Self::FairPerStream => "fair-per-stream",
        }
    }
}

/// Configuration for a [`Shedder`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShedderConfig {
    /// Virtual queue capacity in tuples; occupancy percentages are
    /// relative to this.
    pub capacity: u64,
    /// Tuples drained per millisecond of stream-time progress — the
    /// modelled downstream service rate.
    pub drain_per_ms: u64,
    /// Watermarks for the degradation ladder.
    pub watermarks: WatermarkConfig,
    /// Which tuples to drop at `Shedding` level.
    pub policy: ShedPolicy,
}

impl Default for ShedderConfig {
    fn default() -> Self {
        Self {
            capacity: 512,
            drain_per_ms: 1,
            watermarks: WatermarkConfig::default(),
            policy: ShedPolicy::RandomP { p: 0.5, seed: 7 },
        }
    }
}

/// Semantic load-shedding operator.
///
/// Models the downstream queue it protects as a deterministic *virtual
/// queue*: each admitted tuple adds one unit, and every advance of stream
/// time drains [`ShedderConfig::drain_per_ms`] units per millisecond. The
/// occupancy of that queue drives a [`DegradationLadder`], and the ladder
/// level decides how tuples are filtered. Because the model is driven by
/// stream time only, a given input prefix always produces the same shed
/// set — overload behaviour is replayable and checkpointable.
///
/// Security punctuations are never shed, delayed, or reordered: the
/// policy arm of [`Operator::process`] forwards them unconditionally (it
/// advances the clock and the ladder, but no level gates it). This is the
/// leak-proofness half of the module's invariant; the `overload_props`
/// suite proves the other half (released-set subset, byte-identical
/// policy tables) end to end.
#[derive(Debug)]
pub struct Shedder {
    cfg: ShedderConfig,
    ladder: DegradationLadder,
    rng: SplitMix64,
    /// Virtual queue length in tuples.
    qlen: u64,
    /// Latest stream time observed (drain clock).
    clock: Timestamp,
    /// Latest security-policy segment seen, for the critical-level
    /// deny-all fallback filter.
    current: Option<Arc<SegmentPolicy>>,
    /// Optional predicate index for the critical-level "some query could
    /// match this" filter.
    index: Option<PredicateIndex>,
    /// Per-stream admission counts for [`ShedPolicy::FairPerStream`].
    fair: BTreeMap<u32, u64>,
    shed_tuples: u64,
    shed_critical: u64,
    /// Deliberately-broken mode for negative tests: sheds security
    /// punctuations under load. See [`Shedder::break_sp_shedding`].
    broken_sheds_sps: bool,
    /// Security flight recorder: shed decisions and ladder transitions.
    recorder: crate::telemetry::FlightRecorder,
    /// How many entries of `ladder.transitions()` are already audited,
    /// so each transition is recorded exactly once.
    audited_transitions: usize,
    stats: OperatorStats,
}

impl Shedder {
    /// A shedder with the given configuration and no predicate index.
    #[must_use]
    pub fn new(cfg: ShedderConfig) -> Self {
        let seed = match cfg.policy {
            ShedPolicy::RandomP { seed, .. } => seed,
            _ => 0,
        };
        Self {
            ladder: DegradationLadder::new(cfg.watermarks),
            rng: SplitMix64::new(seed),
            qlen: 0,
            clock: Timestamp::ZERO,
            current: None,
            index: None,
            fair: BTreeMap::new(),
            shed_tuples: 0,
            shed_critical: 0,
            broken_sheds_sps: false,
            recorder: crate::telemetry::FlightRecorder::disabled(),
            audited_transitions: 0,
            stats: OperatorStats::new(),
            cfg,
        }
    }

    /// Attaches a predicate index so `CriticalShedding` can pass exactly
    /// the tuples some registered query's predicate might match, instead
    /// of the coarser "policy is not deny-all" fallback.
    #[must_use]
    pub fn with_index(mut self, index: PredicateIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// **Test-only negative control.** Makes the shedder drop security
    /// punctuations whenever the ladder is above `Normal` — the exact
    /// defect the leak-proofness suite must catch. A correct deployment
    /// never calls this; it exists so `overload_props` can demonstrate
    /// that a shedder which sheds sps *fails* the released-set-subset
    /// and byte-identical-policy-table invariants.
    pub fn break_sp_shedding(&mut self) {
        self.broken_sheds_sps = true;
    }

    /// Current ladder level.
    #[must_use]
    pub fn level(&self) -> OverloadLevel {
        self.ladder.level()
    }

    /// Recorded ladder transitions.
    #[must_use]
    pub fn transitions(&self) -> &[LadderTransition] {
        self.ladder.transitions()
    }

    /// Virtual queue occupancy as a percentage of capacity.
    #[must_use]
    pub fn occupancy_pct(&self) -> u64 {
        self.qlen.saturating_mul(100) / self.cfg.capacity.max(1)
    }

    /// Advances the drain clock to `ts`, releasing `drain_per_ms` units
    /// of virtual queue per elapsed millisecond.
    fn advance_clock(&mut self, ts: Timestamp) {
        if ts > self.clock {
            let dt = ts.0 - self.clock.0;
            let drained = dt.saturating_mul(self.cfg.drain_per_ms);
            self.qlen = self.qlen.saturating_sub(drained);
            self.clock = ts;
        }
    }

    /// Re-evaluates the ladder at the current occupancy; clears fairness
    /// counts when an overload episode fully ends.
    fn sync_ladder(&mut self, at: Timestamp) -> OverloadLevel {
        let before = self.ladder.level();
        let level = self.ladder.observe(self.occupancy_pct(), at);
        if level == OverloadLevel::Normal && before != OverloadLevel::Normal {
            self.fair.clear();
        }
        if self.recorder.enabled() {
            // Audit every rung the observation crossed, exactly once.
            for t in &self.ladder.transitions()[self.audited_transitions..] {
                self.recorder.record(
                    crate::telemetry::NO_TUPLE,
                    t.at.0,
                    crate::telemetry::AuditEvent::LadderTransition {
                        from: t.from.code(),
                        to: t.to.code(),
                    },
                );
            }
            self.audited_transitions = self.ladder.transitions().len();
        }
        level
    }

    /// Shed decision at `Shedding` level. `true` means drop.
    fn policy_sheds(&mut self, t: &Arc<Tuple>) -> bool {
        match &self.cfg.policy {
            ShedPolicy::RandomP { p, .. } => {
                let p = *p;
                self.rng.chance(p)
            }
            ShedPolicy::OldestFirst { slack } => slack.is_late(t.ts, self.clock),
            ShedPolicy::FairPerStream => {
                let count = self.fair.get(&t.sid.0).copied().unwrap_or(0);
                let min = self.fair.values().copied().min().unwrap_or(0);
                count > min
            }
        }
    }

    /// Critical-level filter: does any registered query stand a chance of
    /// seeing this tuple?
    fn critical_passes(&self, t: &Arc<Tuple>) -> bool {
        let Some(seg) = &self.current else {
            // No policy yet governs this tuple; downstream shields will
            // deny it anyway, so shedding it cannot change the output.
            return false;
        };
        let policy = seg.policy_for(t);
        match &self.index {
            Some(idx) => !idx.matching_queries(&policy).is_empty(),
            None => !policy.is_deny_all(),
        }
    }

    fn admit(&mut self, t: &Arc<Tuple>) {
        self.qlen = self.qlen.saturating_add(1);
        if matches!(self.cfg.policy, ShedPolicy::FairPerStream) {
            *self.fair.entry(t.sid.0).or_insert(0) += 1;
        }
    }
}

impl Operator for Shedder {
    fn name(&self) -> &str {
        "shed"
    }

    fn process(
        &mut self,
        port: usize,
        elem: Element,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "shed".into(), port, arity: 1 });
        }
        self.handle(elem, out);
        Ok(())
    }

    /// Batch path: one port check, then the per-element state machine.
    /// The virtual queue, drain clock, and ladder are judged per element
    /// in batch order — identical accounting to element-at-a-time
    /// processing (shed decisions depend on the *order* of arrivals,
    /// which batching preserves, never on batch boundaries).
    fn process_batch(
        &mut self,
        port: usize,
        batch: crate::batch::ElementBatch,
        out: &mut Emitter,
    ) -> Result<(), EngineError> {
        if port != 0 {
            return Err(EngineError::BadPort { operator: "shed".into(), port, arity: 1 });
        }
        for elem in batch {
            self.handle(elem, out);
        }
        Ok(())
    }

    fn stats(&self) -> &OperatorStats {
        &self.stats
    }

    fn set_audit(&mut self, capacity: usize) -> bool {
        self.recorder = crate::telemetry::FlightRecorder::new(capacity);
        self.audited_transitions = self.ladder.transitions().len();
        true
    }

    fn audit(&self) -> Option<&crate::telemetry::FlightRecorder> {
        self.recorder.enabled().then_some(&self.recorder)
    }

    fn degradation(&self) -> Option<DegradationStats> {
        let mut d = DegradationStats::new();
        d.shed_tuples = self.shed_tuples;
        d.shed_critical = self.shed_critical;
        d.ladder_escalations = self.ladder.escalations();
        d.ladder_recoveries = self.ladder.recoveries();
        d.overload_peak = u64::from(self.ladder.peak().code());
        d.overload_level = u64::from(self.ladder.level().code());
        Some(d)
    }

    fn state_mem_bytes(&self) -> usize {
        self.fair.len() * (4 + 8)
            + std::mem::size_of_val(self.ladder.transitions())
            + self.current.as_ref().map_or(0, |s| s.mem_bytes())
    }

    fn snapshot(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.qlen.to_be_bytes());
        buf.extend_from_slice(&self.clock.0.to_be_bytes());
        buf.extend_from_slice(&self.rng.state.to_be_bytes());
        buf.extend_from_slice(&self.shed_tuples.to_be_bytes());
        buf.extend_from_slice(&self.shed_critical.to_be_bytes());
        self.ladder.snapshot(buf);
        #[allow(clippy::cast_possible_truncation)] // stream count, not tuple count
        let n = self.fair.len() as u32;
        buf.extend_from_slice(&n.to_be_bytes());
        for (sid, count) in &self.fair {
            buf.extend_from_slice(&sid.to_be_bytes());
            buf.extend_from_slice(&count.to_be_bytes());
        }
        ckpt::encode_opt_segment(self.current.as_ref(), buf);
        self.stats.encode_counters(buf);
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), EngineError> {
        let mut buf = bytes;
        let buf = &mut buf;
        let fail = |e| ckpt::corrupt("shed", e);
        ckpt::need(buf, 5 * 8, "shedder header").map_err(fail)?;
        self.qlen = buf.get_u64();
        self.clock = Timestamp(buf.get_u64());
        self.rng.state = buf.get_u64();
        self.shed_tuples = buf.get_u64();
        self.shed_critical = buf.get_u64();
        self.ladder.restore(buf).map_err(fail)?;
        ckpt::need(buf, 4, "fair map length").map_err(fail)?;
        let n = buf.get_u32() as usize;
        self.fair.clear();
        for _ in 0..n {
            ckpt::need(buf, 4 + 8, "fair map entry").map_err(fail)?;
            let sid = buf.get_u32();
            let count = buf.get_u64();
            self.fair.insert(sid, count);
        }
        self.current = ckpt::decode_opt_segment(buf).map_err(fail)?;
        self.stats.decode_counters(buf).map_err(fail)?;
        ckpt::done(buf).map_err(fail)?;
        // Audit state is not checkpointed: clear the ring and skip the
        // restored (pre-crash) ladder transitions so replay records only
        // transitions it actually re-observes.
        self.recorder.clear();
        self.audited_transitions = self.ladder.transitions().len();
        Ok(())
    }
}

impl Shedder {
    /// The per-element admission state machine (shared by `process` and
    /// `process_batch`).
    fn handle(&mut self, elem: Element, out: &mut Emitter) {
        match elem {
            Element::Policy(p) => {
                self.stats.sps_in += 1;
                self.advance_clock(p.ts);
                self.current = Some(Arc::clone(&p));
                let level = self.sync_ladder(p.ts);
                if self.broken_sheds_sps && level > OverloadLevel::Normal {
                    // Negative control: silently losing an sp. The
                    // invariant tests exist to catch exactly this.
                    return;
                }
                self.stats.sps_out += 1;
                out.push(Element::Policy(p));
            }
            Element::Tuple(t) => {
                self.stats.tuples_in += 1;
                self.advance_clock(t.ts);
                // Drain-driven recovery first, so a long quiet gap lets
                // the ladder step down before this tuple is judged.
                let level = self.sync_ladder(t.ts);
                let shed = match level {
                    OverloadLevel::Normal => false,
                    OverloadLevel::Shedding => self.policy_sheds(&t),
                    OverloadLevel::CriticalShedding => !self.critical_passes(&t),
                    OverloadLevel::FailClosed => true,
                };
                if shed {
                    self.shed_tuples += 1;
                    if level >= OverloadLevel::CriticalShedding {
                        self.shed_critical += 1;
                    }
                    self.recorder.record(
                        t.tid.raw(),
                        t.ts.0,
                        crate::telemetry::AuditEvent::Shed { level: level.code() },
                    );
                } else {
                    self.admit(&t);
                    self.stats.tuples_out += 1;
                    out.push(Element::Tuple(t));
                    // Escalation check after the enqueue this tuple
                    // caused.
                    self.sync_ladder(self.clock);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Classed (control/data) bounded channel
// ---------------------------------------------------------------------------

/// Why a data send was refused by a [`ClassedSender`].
#[derive(Debug, PartialEq, Eq)]
pub enum DataRejected<T> {
    /// The data class is at capacity; the element is handed back so the
    /// caller can retry (backpressure) or shed it.
    Full(T),
    /// The receiver is gone; the element is handed back.
    Disconnected(T),
}

struct ClassedState<T> {
    q: VecDeque<T>,
    data_len: usize,
    senders: usize,
    rx_alive: bool,
}

struct ClassedShared<T> {
    state: Mutex<ClassedState<T>>,
    not_empty: Condvar,
    data_capacity: usize,
}

impl<T> ClassedShared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, ClassedState<T>> {
        // A poisoned mutex means a peer panicked mid-push/pop of a
        // VecDeque, which cannot leave the queue structurally broken;
        // recover the guard rather than cascading the panic.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Sending half of a two-class bounded queue; see [`classed_channel`].
pub struct ClassedSender<T> {
    shared: Arc<ClassedShared<T>>,
}

/// Receiving half of a two-class bounded queue; see [`classed_channel`].
pub struct ClassedReceiver<T> {
    shared: Arc<ClassedShared<T>>,
}

/// Creates a two-class bounded FIFO channel.
///
/// Both classes share one FIFO queue — classing changes *admission*, never
/// *order*, so a pipeline using this channel stays deterministic:
///
/// - **Control** (punctuations, epoch barriers): [`ClassedSender::send_control`]
///   always succeeds while the receiver lives. Control traffic is lossless
///   and can never be blocked behind a data bound.
/// - **Data**: [`ClassedSender::try_send_data`] is bounded at
///   `data_capacity` in-flight data elements and hands the element back on
///   [`DataRejected::Full`], giving the caller the backpressure /shed
///   decision.
#[must_use]
pub fn classed_channel<T>(data_capacity: usize) -> (ClassedSender<T>, ClassedReceiver<T>) {
    let shared = Arc::new(ClassedShared {
        state: Mutex::new(ClassedState {
            q: VecDeque::new(),
            data_len: 0,
            senders: 1,
            rx_alive: true,
        }),
        not_empty: Condvar::new(),
        data_capacity,
    });
    (ClassedSender { shared: Arc::clone(&shared) }, ClassedReceiver { shared })
}

impl<T> ClassedSender<T> {
    /// Enqueues a control element. Control is never bounded: this fails
    /// only when the receiver has been dropped, handing the element back.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` when the receiving half is gone.
    pub fn send_control(&self, v: T) -> Result<(), T> {
        let mut st = self.shared.lock();
        if !st.rx_alive {
            return Err(v);
        }
        st.q.push_back(v);
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Attempts to enqueue a data element, bounded by the channel's data
    /// capacity.
    ///
    /// # Errors
    ///
    /// [`DataRejected::Full`] when `data_capacity` data elements are
    /// already in flight; [`DataRejected::Disconnected`] when the
    /// receiver is gone. Both hand the element back.
    pub fn try_send_data(&self, v: T) -> Result<(), DataRejected<T>> {
        let mut st = self.shared.lock();
        if !st.rx_alive {
            return Err(DataRejected::Disconnected(v));
        }
        if st.data_len >= self.shared.data_capacity {
            return Err(DataRejected::Full(v));
        }
        st.q.push_back(v);
        st.data_len += 1;
        drop(st);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of data elements currently queued (control excluded).
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.shared.lock().data_len
    }
}

impl<T> Clone for ClassedSender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Self { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for ClassedSender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> ClassedReceiver<T> {
    /// Blocks until an element is available; returns `None` once every
    /// sender is dropped and the queue is drained.
    ///
    /// The receiver cannot tell control from data — classing only guards
    /// admission — so it must decrement the data bound itself; the
    /// caller passes whether the popped element was data via the
    /// provided closure-free two-step: pop first, then call
    /// [`ClassedReceiver::data_popped`] for data elements.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.lock();
        loop {
            if let Some(v) = st.q.pop_front() {
                return Some(v);
            }
            if st.senders == 0 {
                return None;
            }
            st = self.shared.not_empty.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Informs the channel that a previously-received element was a data
    /// element, freeing one slot of data capacity.
    pub fn data_popped(&self) {
        let mut st = self.shared.lock();
        st.data_len = st.data_len.saturating_sub(1);
    }

    /// Total queued elements, both classes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shared.lock().q.len()
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for ClassedReceiver<T> {
    fn drop(&mut self) {
        self.shared.lock().rx_alive = false;
    }
}

impl<T> fmt::Debug for ClassedSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassedSender").field("data_len", &self.data_len()).finish()
    }
}

impl<T> fmt::Debug for ClassedReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClassedReceiver").field("len", &self.len()).finish()
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Token-bucket admission parameters for one ingestion session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Sustained admitted rate, tuples per second of stream time.
    pub tokens_per_sec: u64,
    /// Burst allowance: the bucket holds at most this many whole tokens.
    pub burst: u64,
    /// How far into token debt a tuple may be admitted — the deadline
    /// (in ms) within which the missing token would accrue. Beyond it the
    /// tuple is refused with [`EngineError::Overloaded`].
    pub enqueue_deadline_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { tokens_per_sec: 1000, burst: 64, enqueue_deadline_ms: 50 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    /// Milli-tokens; may go negative up to the deadline debt.
    milli: i64,
    last: Timestamp,
}

/// Per-stream token-bucket admission controller at the ingestion
/// boundary.
///
/// Buckets refill with *stream time* (1000 milli-tokens per admitted
/// tuple; `tokens_per_sec` milli-tokens per elapsed ms), so admission is
/// deterministic given the input. A tuple arriving to an empty bucket is
/// still admitted if the missing tokens would accrue within the enqueue
/// deadline (bounded debt — this is the "deadline-based enqueue timeout"
/// of the overload design); otherwise it is refused with a typed
/// [`EngineError::Overloaded`] carrying the retry delay. **Security
/// punctuations bypass admission entirely**: they refill the bucket's
/// clock but never pay tokens and are never refused.
#[derive(Debug, Default)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    buckets: BTreeMap<u32, Bucket>,
    admitted: u64,
    rejected: u64,
    sps_bypassed: u64,
}

/// Milli-tokens one data tuple costs.
const TUPLE_COST_MILLI: i64 = 1000;

impl AdmissionController {
    /// A controller with the given config and no history.
    #[must_use]
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self { cfg, ..Self::default() }
    }

    /// Data tuples admitted so far.
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Data tuples refused so far.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Security punctuations waved through without paying tokens.
    #[must_use]
    pub fn sps_bypassed(&self) -> u64 {
        self.sps_bypassed
    }

    /// Counters in [`DegradationStats`] form for report plumbing.
    #[must_use]
    pub fn degradation(&self) -> DegradationStats {
        let mut d = DegradationStats::new();
        d.admission_rejected = self.rejected;
        d
    }

    fn refill(&mut self, stream: StreamId, at: Timestamp) -> &mut Bucket {
        let cap = i64::try_from(self.cfg.burst.saturating_mul(1000)).unwrap_or(i64::MAX);
        let rate = i64::try_from(self.cfg.tokens_per_sec).unwrap_or(i64::MAX);
        let bucket = self.buckets.entry(stream.0).or_insert(Bucket { milli: cap, last: at });
        if at > bucket.last {
            let dt = i64::try_from(at.0 - bucket.last.0).unwrap_or(i64::MAX);
            bucket.milli = bucket.milli.saturating_add(dt.saturating_mul(rate)).min(cap);
            bucket.last = at;
        }
        bucket
    }

    /// Decides admission for one element arriving on `stream` at `at`.
    /// Punctuations always pass; data tuples pay one token or bounded
    /// debt.
    ///
    /// # Errors
    ///
    /// [`EngineError::Overloaded`] when the stream's bucket is empty and
    /// would not hold a token within the enqueue deadline. The element
    /// was *not* enqueued; the caller may retry after the indicated
    /// stream-time delay.
    pub fn admit(
        &mut self,
        stream: StreamId,
        is_tuple: bool,
        at: Timestamp,
    ) -> Result<(), EngineError> {
        let deadline = self.cfg.enqueue_deadline_ms;
        let rate = self.cfg.tokens_per_sec.max(1);
        let bucket = self.refill(stream, at);
        if !is_tuple {
            self.sps_bypassed += 1;
            return Ok(());
        }
        let after = bucket.milli - TUPLE_COST_MILLI;
        let max_debt = i64::try_from(deadline.saturating_mul(rate)).unwrap_or(i64::MAX);
        if after >= -max_debt {
            bucket.milli = after;
            self.admitted += 1;
            Ok(())
        } else {
            let deficit = u64::try_from(-after).unwrap_or(0);
            let retry_after_ms = deficit.div_ceil(rate);
            self.rejected += 1;
            Err(EngineError::Overloaded { retry_after_ms })
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{Policy, TupleId};

    fn tup(sid: u32, tid: u64, ts: u64) -> Element {
        Element::tuple(Tuple::new(StreamId(sid), TupleId(tid), Timestamp(ts), vec![]))
    }

    fn sp_open(ts: u64) -> Element {
        let mut roles = sp_core::RoleSet::new();
        roles.insert(sp_core::RoleId(1));
        Element::policy(SegmentPolicy::uniform(Policy::tuple_level(roles, Timestamp(ts))))
    }

    fn sp_deny(ts: u64) -> Element {
        Element::policy(SegmentPolicy::uniform(Policy::deny_all(Timestamp(ts))))
    }

    #[test]
    fn ladder_escalates_and_recovers_with_hysteresis() {
        let mut ladder = DegradationLadder::new(WatermarkConfig::default());
        assert_eq!(ladder.observe(10, Timestamp(0)), OverloadLevel::Normal);
        assert_eq!(ladder.observe(61, Timestamp(1)), OverloadLevel::Shedding);
        // Between low and high: holds (hysteresis).
        assert_eq!(ladder.observe(50, Timestamp(2)), OverloadLevel::Shedding);
        assert_eq!(ladder.observe(35, Timestamp(3)), OverloadLevel::Normal);
        // A massive burst climbs several rungs in one observation.
        assert_eq!(ladder.observe(99, Timestamp(4)), OverloadLevel::FailClosed);
        assert_eq!(ladder.peak(), OverloadLevel::FailClosed);
        // And a deep drain descends all the way back down.
        assert_eq!(ladder.observe(0, Timestamp(5)), OverloadLevel::Normal);
        assert_eq!(ladder.escalations(), 4);
        assert_eq!(ladder.recoveries(), 4);
        assert_eq!(ladder.transitions().len(), 8);
        let t = ladder.transitions()[0];
        assert_eq!((t.from, t.to), (OverloadLevel::Normal, OverloadLevel::Shedding));
        assert!(t.to_string().contains("Normal->Shedding"));
    }

    #[test]
    fn ladder_transition_log_is_capped() {
        let mut ladder = DegradationLadder::new(WatermarkConfig::default());
        for i in 0..400 {
            ladder.observe(99, Timestamp(2 * i));
            ladder.observe(0, Timestamp(2 * i + 1));
        }
        assert!(ladder.transitions().len() <= MAX_RECORDED_TRANSITIONS);
        assert!(ladder.escalations() > u64::try_from(MAX_RECORDED_TRANSITIONS).unwrap());
    }

    #[test]
    fn shedder_never_sheds_policies_even_fail_closed() {
        let cfg = ShedderConfig {
            capacity: 10,
            drain_per_ms: 0,
            policy: ShedPolicy::RandomP { p: 0.0, seed: 1 },
            ..ShedderConfig::default()
        };
        let mut shed = Shedder::new(cfg);
        let mut out = Emitter::new();
        // Stuff the virtual queue to FailClosed: drain_per_ms = 0 means
        // nothing ever leaves, and an open policy lets tuples through the
        // critical rung until the queue is full.
        shed.process(0, sp_open(0), &mut out).unwrap();
        for i in 0..10 {
            shed.process(0, tup(1, i, 0), &mut out).unwrap();
        }
        assert_eq!(shed.level(), OverloadLevel::FailClosed);
        let _ = out.take();
        shed.process(0, sp_open(20), &mut out).unwrap();
        shed.process(0, tup(1, 99, 21), &mut out).unwrap();
        let emitted = out.take();
        assert_eq!(emitted.len(), 1, "sp passes, tuple shed");
        assert!(emitted[0].as_policy().is_some());
        let d = shed.degradation().unwrap();
        assert!(d.shed_tuples >= 1);
        assert_eq!(d.overload_level, 3);
        assert_eq!(d.overload_peak, 3);
    }

    #[test]
    fn shedder_recovers_when_stream_time_drains_the_queue() {
        let cfg = ShedderConfig {
            capacity: 10,
            drain_per_ms: 1,
            policy: ShedPolicy::RandomP { p: 0.0, seed: 1 },
            ..ShedderConfig::default()
        };
        let mut shed = Shedder::new(cfg);
        let mut out = Emitter::new();
        shed.process(0, sp_open(0), &mut out).unwrap();
        for i in 0..10 {
            shed.process(0, tup(1, i, 0), &mut out).unwrap();
        }
        assert_eq!(shed.level(), OverloadLevel::FailClosed);
        // 10 ms of quiet stream time drains the whole queue.
        shed.process(0, tup(1, 50, 10), &mut out).unwrap();
        assert_eq!(shed.level(), OverloadLevel::Normal);
        let d = shed.degradation().unwrap();
        assert_eq!(d.overload_level, 0);
        assert!(d.ladder_recoveries >= d.ladder_escalations);
    }

    #[test]
    fn oldest_first_sheds_only_late_tuples() {
        let cfg = ShedderConfig {
            capacity: 10,
            drain_per_ms: 0,
            policy: ShedPolicy::OldestFirst { slack: Slack::new(5) },
            ..ShedderConfig::default()
        };
        let mut shed = Shedder::new(cfg);
        let mut out = Emitter::new();
        // Reach Shedding (60% of 10 => qlen 6) without touching Critical.
        for i in 0..6 {
            shed.process(0, tup(1, i, 100), &mut out).unwrap();
        }
        assert_eq!(shed.level(), OverloadLevel::Shedding);
        let _ = out.take();
        // Fresh tuple (ts == clock) is kept; a tuple 6 ms late is shed.
        shed.process(0, tup(1, 10, 100), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        shed.process(0, tup(1, 11, 94), &mut out).unwrap();
        assert_eq!(out.len(), 1, "late tuple shed");
        assert_eq!(shed.degradation().unwrap().shed_tuples, 1);
    }

    #[test]
    fn fair_per_stream_sheds_the_hog() {
        let cfg = ShedderConfig {
            capacity: 4,
            drain_per_ms: 0,
            policy: ShedPolicy::FairPerStream,
            ..ShedderConfig::default()
        };
        let mut shed = Shedder::new(cfg);
        let mut out = Emitter::new();
        // One tuple each from streams 1 and 2, then one more from 1:
        // at Shedding level stream 1 is ahead and gets shed, stream 2
        // does not.
        for (sid, tid) in [(1, 0), (2, 1), (1, 2)] {
            shed.process(0, tup(sid, tid, 0), &mut out).unwrap();
        }
        assert_eq!(shed.level(), OverloadLevel::Shedding);
        let _ = out.take();
        shed.process(0, tup(1, 10, 0), &mut out).unwrap();
        assert_eq!(out.len(), 0, "hog stream shed");
        shed.process(0, tup(2, 11, 0), &mut out).unwrap();
        assert_eq!(out.len(), 1, "behind stream admitted");
    }

    #[test]
    fn critical_level_passes_only_matchable_tuples() {
        let mut index = PredicateIndex::new();
        let mut roles = sp_core::RoleSet::new();
        roles.insert(sp_core::RoleId(1));
        index.register(roles);
        let cfg = ShedderConfig {
            capacity: 10,
            drain_per_ms: 0,
            watermarks: WatermarkConfig {
                shed_high: 10,
                shed_low: 5,
                critical_high: 30,
                critical_low: 15,
                fail_high: 99,
                fail_low: 80,
            },
            policy: ShedPolicy::RandomP { p: 0.0, seed: 1 },
        };
        let mut shed = Shedder::new(cfg).with_index(index);
        let mut out = Emitter::new();
        shed.process(0, sp_open(0), &mut out).unwrap();
        for i in 0..3 {
            shed.process(0, tup(1, i, 0), &mut out).unwrap();
        }
        assert_eq!(shed.level(), OverloadLevel::CriticalShedding);
        let _ = out.take();
        // Governing policy grants role 1, which a registered query holds:
        // the tuple passes even at critical level.
        shed.process(0, tup(1, 20, 0), &mut out).unwrap();
        assert_eq!(out.len(), 1);
        // Deny-all segment: nothing can match, tuples are shed.
        shed.process(0, sp_deny(1), &mut out).unwrap();
        let _ = out.take();
        shed.process(0, tup(1, 21, 1), &mut out).unwrap();
        assert_eq!(out.len(), 0);
        let d = shed.degradation().unwrap();
        assert_eq!(d.shed_critical, 1);
        assert_eq!(d.shed_tuples, 1);
    }

    #[test]
    fn shedder_snapshot_round_trips_canonically() {
        let cfg = ShedderConfig {
            capacity: 6,
            drain_per_ms: 1,
            policy: ShedPolicy::FairPerStream,
            ..ShedderConfig::default()
        };
        let mut a = Shedder::new(cfg.clone());
        let mut out = Emitter::new();
        a.process(0, sp_open(0), &mut out).unwrap();
        for i in 0..8 {
            a.process(0, tup(u32::try_from(i % 3).unwrap(), i, i / 2), &mut out).unwrap();
        }
        let mut buf = Vec::new();
        a.snapshot(&mut buf);
        let mut b = Shedder::new(cfg);
        b.restore(&buf).unwrap();
        let mut buf2 = Vec::new();
        b.snapshot(&mut buf2);
        assert_eq!(buf, buf2, "snapshot is canonical across a round trip");
        assert_eq!(b.level(), a.level());
        assert_eq!(b.degradation(), a.degradation());
        // Restored shedder keeps making the same decisions.
        let mut oa = Emitter::new();
        let mut ob = Emitter::new();
        for i in 100..110 {
            a.process(0, tup(1, i, 4), &mut oa).unwrap();
            b.process(0, tup(1, i, 4), &mut ob).unwrap();
        }
        assert_eq!(oa.take(), ob.take());
    }

    #[test]
    fn shedder_rejects_corrupt_snapshots() {
        let mut shed = Shedder::new(ShedderConfig::default());
        let err = shed.restore(&[1, 2, 3]).unwrap_err();
        assert!(matches!(err, EngineError::CheckpointCorrupt { .. }));
    }

    #[test]
    fn broken_shedder_drops_sps_under_load() {
        let cfg = ShedderConfig {
            capacity: 4,
            drain_per_ms: 0,
            policy: ShedPolicy::RandomP { p: 0.0, seed: 1 },
            ..ShedderConfig::default()
        };
        let mut shed = Shedder::new(cfg);
        shed.break_sp_shedding();
        let mut out = Emitter::new();
        for i in 0..3 {
            shed.process(0, tup(1, i, 0), &mut out).unwrap();
        }
        assert!(shed.level() > OverloadLevel::Normal);
        let _ = out.take();
        shed.process(0, sp_open(1), &mut out).unwrap();
        assert_eq!(out.len(), 0, "negative control: the sp was lost");
        assert_eq!(shed.stats().sps_in, 1);
        assert_eq!(shed.stats().sps_out, 0);
    }

    #[test]
    fn classed_channel_control_bypasses_data_bound() {
        let (tx, rx) = classed_channel::<&'static str>(2);
        tx.try_send_data("d1").unwrap();
        tx.try_send_data("d2").unwrap();
        assert!(matches!(tx.try_send_data("d3"), Err(DataRejected::Full("d3"))));
        // Control still flows over a full data bound.
        tx.send_control("sp").unwrap();
        tx.send_control("barrier").unwrap();
        assert_eq!(rx.len(), 4);
        // FIFO order across classes.
        assert_eq!(rx.recv(), Some("d1"));
        rx.data_popped();
        // A slot freed: data admits again.
        tx.try_send_data("d3").unwrap();
        assert_eq!(rx.recv(), Some("d2"));
        rx.data_popped();
        assert_eq!(rx.recv(), Some("sp"));
        assert_eq!(rx.recv(), Some("barrier"));
        assert_eq!(rx.recv(), Some("d3"));
        rx.data_popped();
        drop(tx);
        assert_eq!(rx.recv(), None, "disconnect after drain");
    }

    #[test]
    fn classed_channel_reports_disconnects_both_ways() {
        let (tx, rx) = classed_channel::<u32>(1);
        drop(rx);
        assert_eq!(tx.send_control(7), Err(7));
        assert!(matches!(tx.try_send_data(8), Err(DataRejected::Disconnected(8))));
        let (tx, rx) = classed_channel::<u32>(1);
        tx.try_send_data(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn classed_channel_blocking_recv_wakes_on_send() {
        let (tx, rx) = classed_channel::<u32>(4);
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send_control(42).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn admission_burst_then_refusal_with_retry_hint() {
        let cfg = AdmissionConfig { tokens_per_sec: 1000, burst: 2, enqueue_deadline_ms: 0 };
        let mut ac = AdmissionController::new(cfg);
        let s = StreamId(1);
        // Burst of 2 admitted instantly.
        ac.admit(s, true, Timestamp(0)).unwrap();
        ac.admit(s, true, Timestamp(0)).unwrap();
        // Third at the same instant: bucket empty, deadline 0 → refused.
        let err = ac.admit(s, true, Timestamp(0)).unwrap_err();
        assert_eq!(err, EngineError::Overloaded { retry_after_ms: 1 });
        // 1 ms later a token has accrued (1000 milli-tokens/ms).
        ac.admit(s, true, Timestamp(1)).unwrap();
        assert_eq!(ac.admitted(), 3);
        assert_eq!(ac.rejected(), 1);
        assert_eq!(ac.degradation().admission_rejected, 1);
    }

    #[test]
    fn admission_deadline_allows_bounded_debt() {
        let cfg = AdmissionConfig { tokens_per_sec: 1000, burst: 1, enqueue_deadline_ms: 2 };
        let mut ac = AdmissionController::new(cfg);
        let s = StreamId(1);
        // Bucket holds 1 token; deadline of 2 ms allows 2 more on debt.
        ac.admit(s, true, Timestamp(0)).unwrap();
        ac.admit(s, true, Timestamp(0)).unwrap();
        ac.admit(s, true, Timestamp(0)).unwrap();
        let err = ac.admit(s, true, Timestamp(0)).unwrap_err();
        assert!(matches!(err, EngineError::Overloaded { retry_after_ms } if retry_after_ms > 2));
    }

    #[test]
    fn admission_sps_always_bypass() {
        let cfg = AdmissionConfig { tokens_per_sec: 1, burst: 1, enqueue_deadline_ms: 0 };
        let mut ac = AdmissionController::new(cfg);
        let s = StreamId(1);
        ac.admit(s, true, Timestamp(0)).unwrap();
        assert!(ac.admit(s, true, Timestamp(0)).is_err());
        // Tuples are refused but sps sail through, arbitrarily many.
        for i in 0..100 {
            ac.admit(s, false, Timestamp(i)).unwrap();
        }
        assert_eq!(ac.sps_bypassed(), 100);
    }

    #[test]
    fn admission_buckets_are_per_stream() {
        let cfg = AdmissionConfig { tokens_per_sec: 1000, burst: 1, enqueue_deadline_ms: 0 };
        let mut ac = AdmissionController::new(cfg);
        ac.admit(StreamId(1), true, Timestamp(0)).unwrap();
        assert!(ac.admit(StreamId(1), true, Timestamp(0)).is_err());
        // Stream 2 has its own bucket.
        ac.admit(StreamId(2), true, Timestamp(0)).unwrap();
    }
}
