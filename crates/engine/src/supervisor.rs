//! Crash supervision: epoch checkpointing, restart, and deterministic
//! replay with a fail-closed security invariant.
//!
//! The supervisor drives a [`SessionExecutor`] — the sequential
//! [`Executor`] or the key-partitioned
//! [`ShardedExecutor`](crate::shard::ShardedExecutor) — over a recorded
//! input, cutting a [`Checkpoint`](crate::Checkpoint) every
//! `epoch_interval` input elements (the executor is quiescent between
//! pushes, so every boundary is a consistent cut) and persisting it
//! through a [`CheckpointStore`]. When the pipeline dies — an operator
//! reports an [`EngineError`], an injected kill simulates a crash, or a
//! shard worker dies under a checkpoint barrier — the supervisor rebuilds
//! the plan from its builder factory, restores the last durable
//! checkpoint, and replays the input from the checkpoint's offset.
//! Checkpoints are canonical across shard counts, so a sharded session
//! may recover at a different width than it crashed at.
//!
//! **Recovery invariant** (the property the chaos suite asserts): for any
//! kill point, the union of tuples released before the kill and tuples
//! released by the recovered run is a subset of what an uninterrupted run
//! releases, and the restored policy state is byte-identical to the state
//! that was checkpointed. Recovery may *lose* tuples — counted in
//! [`RecoveryReport::recovery_dropped`] when the restart budget runs out —
//! but must never leak one: replay starts from a policy state at least as
//! restrictive as the live state it replaces, and sinks restart empty.
//!
//! **Overload during recovery**: load shedders
//! ([`Shedder`](crate::overload::Shedder)) are ordinary operators with
//! canonical snapshots, so their virtual queue, degradation-ladder level,
//! and shed counters ride through kill/restore like any other state — a
//! recovered run keeps making byte-identical shed decisions, and
//! [`SupervisedRun::degradation`] reports the ladder's peak and current
//! rung alongside the recovery counters.
//!
//! Restarts use bounded exponential backoff. Delays are *recorded*, not
//! slept, so supervised runs stay deterministic and fast under test; an
//! embedding that wants real pauses can sleep on
//! [`RecoveryReport::backoff_ms`] entries as they are produced. After
//! `max_restarts` failed restarts the supervisor enters a terminal
//! fail-closed state: the remaining input is refused (never processed,
//! never released) and the run reports [`EngineError::RecoveryExhausted`].

use sp_core::{StreamElement, StreamId};

use crate::checkpoint::{Checkpoint, CheckpointStore};
use crate::error::EngineError;
use crate::plan::{Executor, PlanBuilder};
use crate::shard::ShardedExecutor;
use crate::stats::DegradationStats;
use crate::telemetry::{span::span, AuditEvent, AuditOp, AuditTrail, FlightRecorder, NO_TUPLE};

/// The executor surface crash supervision needs: feed input, cut
/// checkpoints at quiescent points, and restore a rebuilt instance from a
/// durable cut. Implemented by the sequential [`Executor`] and the
/// key-partitioned [`ShardedExecutor`], so one supervision loop covers
/// both — a sharded session recovers (and re-shards) through exactly the
/// same epoch/replay machinery as a sequential one.
pub trait SessionExecutor {
    /// Feeds one stream element.
    ///
    /// # Errors
    ///
    /// An error is a pipeline death: the supervisor discards this
    /// instance and recovers from the last durable checkpoint.
    fn push(&mut self, stream: StreamId, elem: StreamElement) -> Result<(), EngineError>;

    /// Flushes end-of-stream work.
    ///
    /// # Errors
    ///
    /// Treated as a death, like [`SessionExecutor::push`].
    fn finish(&mut self) -> Result<(), EngineError>;

    /// Cuts a canonical checkpoint at the current (quiescent) point.
    ///
    /// # Errors
    ///
    /// A sharded executor can fail the cut when a shard worker died;
    /// the supervisor treats that as a death, not a durability failure.
    fn checkpoint(&mut self, epoch: u64, input_pos: u64) -> Result<Checkpoint, EngineError>;

    /// Restores a freshly built instance from a checkpoint.
    ///
    /// # Errors
    ///
    /// Fail-closed: any decode error discards the instance.
    fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), EngineError>;

    /// Arms per-operator flight recorders (0 disables).
    fn set_audit(&mut self, capacity: usize);

    /// Arms sp-trace span recorders (0 disables).
    fn set_spans(&mut self, capacity: usize);
}

impl SessionExecutor for Executor {
    fn push(&mut self, stream: StreamId, elem: StreamElement) -> Result<(), EngineError> {
        Executor::push(self, stream, elem)
    }
    fn finish(&mut self) -> Result<(), EngineError> {
        Executor::finish(self)
    }
    fn checkpoint(&mut self, epoch: u64, input_pos: u64) -> Result<Checkpoint, EngineError> {
        Ok(Executor::checkpoint(self, epoch, input_pos))
    }
    fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), EngineError> {
        Executor::restore(self, ckpt)
    }
    fn set_audit(&mut self, capacity: usize) {
        Executor::set_audit(self, capacity);
    }
    fn set_spans(&mut self, capacity: usize) {
        Executor::set_spans(self, capacity);
    }
}

impl SessionExecutor for ShardedExecutor {
    fn push(&mut self, stream: StreamId, elem: StreamElement) -> Result<(), EngineError> {
        ShardedExecutor::push(self, stream, elem)
    }
    fn finish(&mut self) -> Result<(), EngineError> {
        ShardedExecutor::finish(self)
    }
    fn checkpoint(&mut self, epoch: u64, input_pos: u64) -> Result<Checkpoint, EngineError> {
        ShardedExecutor::checkpoint(self, epoch, input_pos)
    }
    fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), EngineError> {
        ShardedExecutor::restore(self, ckpt)
    }
    fn set_audit(&mut self, capacity: usize) {
        ShardedExecutor::set_audit(self, capacity);
    }
    fn set_spans(&mut self, capacity: usize) {
        ShardedExecutor::set_spans(self, capacity);
    }
}

/// Supervision parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Input elements between checkpoints (one epoch).
    pub epoch_interval: u64,
    /// Restart budget before the terminal fail-closed state.
    pub max_restarts: u32,
    /// First restart's backoff, in milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Flight-recorder capacity armed on every rebuilt executor (and on
    /// the supervisor's own recorder). `0` disables audit recording.
    pub audit_capacity: usize,
    /// sp-trace span-recorder capacity armed on every rebuilt executor.
    /// `0` disables span recording and enforcement-lag tracking.
    pub span_capacity: usize,
}

/// Default checkpoint cadence: frequent enough that replay stays short,
/// sparse enough that snapshot cost stays well under 10% of throughput.
pub const DEFAULT_EPOCH_INTERVAL: u64 = 256;

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            epoch_interval: DEFAULT_EPOCH_INTERVAL,
            max_restarts: 5,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
            audit_capacity: 0,
            span_capacity: 0,
        }
    }
}

impl SupervisorConfig {
    /// The recorded backoff before restart attempt `n` (1-based):
    /// `base · 2^(n−1)`, capped.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let doublings = attempt.saturating_sub(1).min(32);
        self.backoff_base_ms.saturating_mul(1u64 << doublings).min(self.backoff_cap_ms)
    }
}

/// What the supervisor did across one supervised run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Checkpoints cut and durably saved.
    pub checkpoints_taken: u64,
    /// Checkpoints restored into a rebuilt plan.
    pub checkpoints_restored: u64,
    /// Whole epochs of input re-processed during recoveries.
    pub epochs_replayed: u64,
    /// Input elements refused fail-closed at the terminal state.
    pub recovery_dropped: u64,
    /// Restart attempts made (successful or not).
    pub restart_attempts: u32,
    /// Recorded exponential backoff per restart, in milliseconds.
    pub backoff_ms: Vec<u64>,
    /// Errors observed at each death, in order.
    pub deaths: Vec<String>,
}

impl RecoveryReport {
    /// Folds the recovery counters into engine-wide degradation stats.
    pub fn absorb_into(&self, stats: &mut DegradationStats) {
        stats.checkpoints_taken += self.checkpoints_taken;
        stats.checkpoints_restored += self.checkpoints_restored;
        stats.epochs_replayed += self.epochs_replayed;
        stats.recovery_dropped += self.recovery_dropped;
        stats.restart_attempts += u64::from(self.restart_attempts);
    }
}

/// The result of a supervised run: the final executor (for sinks and
/// per-operator stats) and the recovery report. On a terminal fail-closed
/// exit, `failure` carries [`EngineError::RecoveryExhausted`] and the
/// executor holds the state reached before the final death — its sinks
/// contain only releases that already passed the security shield.
///
/// The executor type defaults to the sequential [`Executor`];
/// [`run_supervised_sharded`] produces a `SupervisedRun<ShardedExecutor>`.
pub struct SupervisedRun<E = Executor> {
    /// The executor after the run (recovered or terminally failed).
    pub executor: E,
    /// Recovery counters and per-death diagnostics.
    pub report: RecoveryReport,
    /// `None` on success; the terminal error otherwise.
    pub failure: Option<EngineError>,
    /// The supervisor's own flight recorder: restore and terminal
    /// fail-closed events. Disabled (and empty) unless
    /// [`SupervisorConfig::audit_capacity`] is non-zero.
    pub audit: FlightRecorder,
}

impl<E> SupervisedRun<E> {
    /// Whether the run processed the whole input.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.failure.is_none()
    }
}

impl SupervisedRun {
    /// Engine-wide degradation stats: the analyzers' fail-closed counters
    /// plus this run's recovery counters.
    #[must_use]
    pub fn degradation(&self) -> DegradationStats {
        let mut stats = self.executor.degradation();
        self.report.absorb_into(&mut stats);
        stats
    }

    /// The full audit trail: the final executor's per-operator sections
    /// plus the supervisor's own restore / fail-closed section.
    #[must_use]
    pub fn audit_trail(&self) -> AuditTrail {
        let mut trail = self.executor.audit_trail();
        if self.audit.enabled() {
            trail.push_section(AuditOp::Supervisor, self.audit.clone());
        }
        trail
    }
}

impl SupervisedRun<ShardedExecutor> {
    /// Engine-wide degradation stats (the sharded executor synchronizes
    /// with its workers first, hence `&mut`).
    #[must_use]
    pub fn degradation(&mut self) -> DegradationStats {
        let mut stats = self.executor.degradation();
        self.report.absorb_into(&mut stats);
        stats
    }

    /// The full audit trail: the canonical (merged) per-operator sections
    /// plus the supervisor's own restore / fail-closed section.
    #[must_use]
    pub fn audit_trail(&mut self) -> AuditTrail {
        let mut trail = self.executor.audit_trail();
        if self.audit.enabled() {
            trail.push_section(AuditOp::Supervisor, self.audit.clone());
        }
        trail
    }
}

/// A deterministic crash oracle: called before each input element with
/// `(epoch, input_pos)`; returning `true` kills the pipeline at that point
/// (the in-memory executor is dropped, exactly what a SIGKILL leaves
/// behind — only the durable checkpoint store survives).
pub type KillOracle<'a> = dyn FnMut(u64, u64) -> bool + 'a;

/// Runs a plan under crash supervision.
///
/// `build` must produce the *same* plan each call (same sources, operator
/// order, sinks, and configuration): checkpoint sections are positional.
/// `input` is the recorded stream the sources consume; replay after a
/// restore re-reads it from the checkpoint's offset.
///
/// # Errors
///
/// Fails only when the checkpoint store rejects a write — durability loss
/// is not survivable. Pipeline deaths (operator errors, injected kills,
/// corrupt checkpoints) are handled by restarting; after `max_restarts`
/// the run returns `Ok` with [`SupervisedRun::failure`] set to
/// [`EngineError::RecoveryExhausted`].
pub fn run_supervised(
    mut build: impl FnMut() -> PlanBuilder,
    input: &[(StreamId, StreamElement)],
    config: &SupervisorConfig,
    store: &mut dyn CheckpointStore,
    kill: &mut KillOracle<'_>,
) -> Result<SupervisedRun, EngineError> {
    supervise(&mut || Ok(build().build()), input, config, store, kill)
}

/// Runs a plan under crash supervision on a key-partitioned
/// [`ShardedExecutor`] with `shards` replicas.
///
/// Identical contract to [`run_supervised`] — same epoch cadence, same
/// recovery invariant, same fail-closed terminal state — except the
/// pipeline under supervision is the sharded one, checkpoints span all
/// shards (canonical, so they interchange with sequential checkpoints),
/// and a checkpoint cut that fails because a shard worker died counts as
/// a pipeline death and triggers recovery. Restores re-shard: the
/// rebuilt executor may even run at a different shard count than the one
/// that cut the checkpoint.
///
/// # Errors
///
/// Fails when the plan cannot run sharded
/// ([`EngineError::ShardUnsupported`]) or when the checkpoint store
/// rejects a write; deaths are handled by restarting, as in
/// [`run_supervised`].
pub fn run_supervised_sharded(
    mut build: impl FnMut() -> PlanBuilder,
    shards: usize,
    input: &[(StreamId, StreamElement)],
    config: &SupervisorConfig,
    store: &mut dyn CheckpointStore,
    kill: &mut KillOracle<'_>,
) -> Result<SupervisedRun<ShardedExecutor>, EngineError> {
    supervise(&mut || ShardedExecutor::new(&mut build, shards), input, config, store, kill)
}

/// The generic supervision loop behind [`run_supervised`] and
/// [`run_supervised_sharded`].
fn supervise<E: SessionExecutor>(
    make: &mut dyn FnMut() -> Result<E, EngineError>,
    input: &[(StreamId, StreamElement)],
    config: &SupervisorConfig,
    store: &mut dyn CheckpointStore,
    kill: &mut KillOracle<'_>,
) -> Result<SupervisedRun<E>, EngineError> {
    let fresh = |make: &mut dyn FnMut() -> Result<E, EngineError>| -> Result<E, EngineError> {
        let mut exec = make()?;
        exec.set_audit(config.audit_capacity);
        exec.set_spans(config.span_capacity);
        Ok(exec)
    };
    let interval = config.epoch_interval.max(1);
    let mut report = RecoveryReport::default();
    let mut audit = FlightRecorder::new(config.audit_capacity);
    let mut exec = fresh(make)?;
    let mut epoch = 0u64;
    let mut pos = 0usize;
    let mut death: Option<EngineError> = None;

    // Epoch 0: the empty cut, so recovery is possible before the first
    // interval completes. A failed cut (a shard worker died at spawn) is
    // a death, not a durability failure.
    match exec.checkpoint(0, 0) {
        Ok(ckpt) => {
            store.save(&ckpt)?;
            report.checkpoints_taken += 1;
        }
        Err(e) => death = Some(e),
    }

    loop {
        // ---- run one life of the pipeline ------------------------------
        while death.is_none() && pos < input.len() {
            if kill(epoch, pos as u64) {
                death = Some(EngineError::OperatorPanic {
                    operator: "supervisor".into(),
                    message: format!("injected crash at epoch {epoch}, element {pos}"),
                });
                break;
            }
            let (stream, elem) = &input[pos];
            if let Err(e) = exec.push(*stream, elem.clone()) {
                death = Some(e);
                break;
            }
            pos += 1;
            if (pos as u64).is_multiple_of(interval) {
                epoch += 1;
                match exec.checkpoint(epoch, pos as u64) {
                    Ok(ckpt) => {
                        store.save(&ckpt)?;
                        report.checkpoints_taken += 1;
                    }
                    Err(e) => death = Some(e),
                }
            }
        }
        if death.is_none() {
            match exec.finish() {
                Ok(()) => {
                    epoch += 1;
                    match exec.checkpoint(epoch, pos as u64) {
                        Ok(ckpt) => {
                            store.save(&ckpt)?;
                            report.checkpoints_taken += 1;
                            return Ok(SupervisedRun {
                                executor: exec,
                                report,
                                failure: None,
                                audit,
                            });
                        }
                        Err(e) => death = Some(e),
                    }
                }
                Err(e) => death = Some(e),
            }
        }

        // ---- the pipeline died: recover --------------------------------
        let _span = span("supervisor.recover");
        // Audited: the loop only reaches here with `death` set.
        let err =
            death.take().unwrap_or(EngineError::ChannelDisconnected { stage: "supervisor".into() });
        report.deaths.push(err.to_string());
        report.restart_attempts += 1;
        if report.restart_attempts > config.max_restarts {
            // Terminal fail-closed state: refuse the rest of the input.
            let resume = store.load_latest().map_or(0, |c| c.input_pos);
            let refused = (input.len() as u64).saturating_sub(resume);
            report.recovery_dropped += refused;
            audit.record(NO_TUPLE, resume, AuditEvent::RecoveryFailClosed { refused });
            let failure =
                EngineError::RecoveryExhausted { attempts: report.restart_attempts - 1, refused };
            return Ok(SupervisedRun { executor: exec, report, failure: Some(failure), audit });
        }
        report.backoff_ms.push(config.backoff_ms(report.restart_attempts));

        let crash_pos = pos as u64;
        exec = fresh(make)?;
        match store.load_latest() {
            Some(ckpt) => match exec.restore(&ckpt) {
                Ok(()) => {
                    report.checkpoints_restored += 1;
                    report.epochs_replayed +=
                        crash_pos.saturating_sub(ckpt.input_pos).div_ceil(interval);
                    audit.record(
                        NO_TUPLE,
                        ckpt.input_pos,
                        AuditEvent::Restored { epoch: ckpt.epoch },
                    );
                    epoch = ckpt.epoch;
                    pos = ckpt.input_pos as usize;
                }
                Err(e) => {
                    // A corrupt checkpoint is itself a death: never start
                    // from partially-restored policy state. Burn a restart
                    // and retry (the store may fall back to an older
                    // frame only if the latest failed its CRC; a frame
                    // that passed CRC but fails decode keeps failing, and
                    // the restart budget bounds the loop).
                    report.deaths.push(e.to_string());
                    exec = fresh(make)?;
                    epoch = 0;
                    pos = 0;
                    report.epochs_replayed += crash_pos.div_ceil(interval);
                }
            },
            None => {
                // No durable checkpoint at all: cold restart from scratch.
                epoch = 0;
                pos = 0;
                report.epochs_replayed += crash_pos.div_ceil(interval);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::checkpoint::MemStore;
    use crate::expr::{CmpOp, Expr};
    use crate::ops::select::Select;
    use crate::ops::shield::SecurityShield;
    use sp_core::{
        RoleCatalog, RoleSet, Schema, SecurityPunctuation, StreamId, Timestamp, Tuple, TupleId,
        Value, ValueType,
    };
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Schema::of("loc", &[("id", ValueType::Int), ("x", ValueType::Int)])
    }

    fn catalog() -> Arc<RoleCatalog> {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(8);
        Arc::new(c)
    }

    fn builder_with_sink() -> (PlanBuilder, crate::plan::SinkRef) {
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let sel = b
            .add(Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))), src);
        let ss = b.add(SecurityShield::new(RoleSet::from([1])), sel);
        let sink = b.sink(ss);
        (b, sink)
    }

    fn builder() -> PlanBuilder {
        builder_with_sink().0
    }

    fn workload(n: u64) -> Vec<(StreamId, StreamElement)> {
        let mut input = Vec::new();
        for i in 0..n {
            if i % 7 == 0 {
                let roles = if i % 14 == 0 { RoleSet::from([1]) } else { RoleSet::from([2]) };
                input.push((
                    StreamId(1),
                    StreamElement::punctuation(SecurityPunctuation::grant_all(roles, Timestamp(i))),
                ));
            }
            input.push((
                StreamId(1),
                StreamElement::tuple(Tuple::new(
                    StreamId(1),
                    TupleId(i),
                    Timestamp(i),
                    vec![Value::Int(i as i64), Value::Int((i % 10) as i64)],
                )),
            ));
        }
        input
    }

    fn released(exec: &Executor) -> Vec<u64> {
        // SinkRefs are positional, so one taken from an identically-built
        // plan addresses the same sink in every builder() executor.
        let (_, sink) = builder_with_sink();
        exec.sink(sink).tuples().map(|t| t.tid.raw()).collect()
    }

    fn baseline(input: &[(StreamId, StreamElement)]) -> Vec<u64> {
        let mut exec = builder().build();
        for (s, e) in input {
            exec.push(*s, e.clone()).unwrap();
        }
        exec.finish().unwrap();
        released(&exec)
    }

    #[test]
    fn uninterrupted_run_checkpoints_and_completes() {
        let input = workload(100);
        let mut store = MemStore::default();
        let cfg = SupervisorConfig { epoch_interval: 16, ..Default::default() };
        let run = run_supervised(builder, &input, &cfg, &mut store, &mut |_, _| false).unwrap();
        assert!(run.completed());
        assert_eq!(released(&run.executor), baseline(&input));
        assert!(run.report.checkpoints_taken > 2);
        assert_eq!(run.report.restart_attempts, 0);
        assert!(store.count() as u64 >= run.report.checkpoints_taken);
    }

    #[test]
    fn kill_once_recovers_exactly() {
        let input = workload(100);
        let base = baseline(&input);
        for kill_at in [1u64, 17, 33, 64, 90, 110] {
            let mut store = MemStore::default();
            let cfg = SupervisorConfig { epoch_interval: 16, ..Default::default() };
            let mut killed = false;
            let mut oracle = move |_e: u64, p: u64| {
                if !killed && p == kill_at {
                    killed = true;
                    return true;
                }
                false
            };
            let run = run_supervised(builder, &input, &cfg, &mut store, &mut oracle).unwrap();
            assert!(run.completed(), "kill at {kill_at}");
            // Deterministic replay: the recovered run releases, from its
            // restore point on, exactly the baseline's suffix — and the
            // final counters match an uninterrupted run.
            let got = released(&run.executor);
            assert!(base.ends_with(&got), "kill at {kill_at}: {got:?} not a suffix of baseline");
            assert_eq!(run.report.restart_attempts, 1);
            assert_eq!(run.report.checkpoints_restored, 1);
            assert_eq!(run.report.backoff_ms.len(), 1);
        }
    }

    #[test]
    fn final_checkpoint_matches_uninterrupted_run() {
        let input = workload(80);
        let cfg = SupervisorConfig { epoch_interval: 8, ..Default::default() };

        let mut clean_store = MemStore::default();
        let clean =
            run_supervised(builder, &input, &cfg, &mut clean_store, &mut |_, _| false).unwrap();

        let mut store = MemStore::default();
        let mut killed = false;
        let mut oracle = move |_e: u64, p: u64| {
            if !killed && p == 42 {
                killed = true;
                return true;
            }
            false
        };
        let run = run_supervised(builder, &input, &cfg, &mut store, &mut oracle).unwrap();
        assert!(run.completed());

        // Policy/operator state is byte-identical once recovered — sinks
        // excepted (their snapshots are counters of what each life
        // delivered, and the recovered life starts over).
        let clean_final = clean.executor.checkpoint(0, 0);
        let run_final = run.executor.checkpoint(0, 0);
        assert_eq!(clean_final.analyzers, run_final.analyzers);
        assert_eq!(clean_final.nodes, run_final.nodes);
    }

    #[test]
    fn persistent_killer_exhausts_restarts_fail_closed() {
        let input = workload(60);
        let mut store = MemStore::default();
        let cfg = SupervisorConfig { epoch_interval: 16, max_restarts: 3, ..Default::default() };
        // Always dies at element 20 — recovery can never get past it.
        let run = run_supervised(builder, &input, &cfg, &mut store, &mut |_, p| p == 20).unwrap();
        assert!(!run.completed());
        assert!(matches!(run.failure, Some(EngineError::RecoveryExhausted { attempts: 3, .. })));
        assert_eq!(run.report.restart_attempts, 4, "budget + the final probe");
        assert!(run.report.recovery_dropped > 0, "rest of input refused");
        // Fail-closed: whatever was released is a prefix-consistent subset
        // of the baseline.
        let base = baseline(&input);
        let got = released(&run.executor);
        assert!(got.iter().all(|t| base.contains(t)));
        // Backoff doubles then caps.
        assert_eq!(
            run.report.backoff_ms,
            vec![cfg.backoff_ms(1), cfg.backoff_ms(2), cfg.backoff_ms(3)]
        );
        let d = run.degradation();
        assert!(d.recovery_dropped > 0);
        assert_eq!(u64::from(run.report.restart_attempts), d.restart_attempts);
    }

    fn shedded_builder_with_sink() -> (PlanBuilder, crate::plan::SinkRef) {
        use crate::overload::{ShedPolicy, Shedder, ShedderConfig};
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let shed = b.add(
            Shedder::new(ShedderConfig {
                capacity: 8,
                drain_per_ms: 0,
                policy: ShedPolicy::RandomP { p: 0.5, seed: 11 },
                ..ShedderConfig::default()
            }),
            src,
        );
        let ss = b.add(SecurityShield::new(RoleSet::from([1])), shed);
        let sink = b.sink(ss);
        (b, sink)
    }

    #[test]
    fn shedder_state_and_counters_survive_crash_recovery() {
        let input = workload(100);
        let cfg = SupervisorConfig { epoch_interval: 16, ..Default::default() };
        let shedded = || shedded_builder_with_sink().0;

        let mut clean_store = MemStore::default();
        let clean =
            run_supervised(shedded, &input, &cfg, &mut clean_store, &mut |_, _| false).unwrap();
        let clean_d = clean.executor.degradation();
        assert!(clean_d.shed_tuples > 0, "workload must actually overload the shedder");
        assert!(clean_d.ladder_escalations > 0);

        let mut store = MemStore::default();
        let mut killed = false;
        let mut oracle = move |_e: u64, p: u64| {
            if !killed && p == 42 {
                killed = true;
                return true;
            }
            false
        };
        let run = run_supervised(shedded, &input, &cfg, &mut store, &mut oracle).unwrap();
        assert!(run.completed());

        // The shedder's virtual queue, rng, ladder, and counters were
        // restored from the checkpoint, so the recovered run made the
        // same decisions and ends with identical overload counters.
        let d = run.executor.degradation();
        assert_eq!(d.shed_tuples, clean_d.shed_tuples);
        assert_eq!(d.ladder_escalations, clean_d.ladder_escalations);
        assert_eq!(d.ladder_recoveries, clean_d.ladder_recoveries);
        assert_eq!(d.overload_peak, clean_d.overload_peak);
        assert_eq!(d.overload_level, clean_d.overload_level);
        // And the run-level report folds recovery counters on top.
        let full = run.degradation();
        assert_eq!(full.checkpoints_restored, 1);
        assert_eq!(full.shed_tuples, clean_d.shed_tuples);
        // Released set matches the uninterrupted shedded run exactly
        // (suffix, since the sink restarts empty at the restore point).
        let (_, sink) = shedded_builder_with_sink();
        let clean_rel: Vec<u64> = clean.executor.sink(sink).tuples().map(|t| t.tid.raw()).collect();
        let (_, sink) = shedded_builder_with_sink();
        let got: Vec<u64> = run.executor.sink(sink).tuples().map(|t| t.tid.raw()).collect();
        assert!(clean_rel.ends_with(&got), "recovered releases diverged");
    }

    fn shield_only_builder_with_sink() -> (PlanBuilder, crate::plan::SinkRef) {
        // Shard-safe shape: the shield (a delaying operator) feeds its
        // sink directly, as the sharded builder requires.
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let ss = b.add(SecurityShield::new(RoleSet::from([1])), src);
        let sink = b.sink(ss);
        (b, sink)
    }

    #[test]
    fn sharded_run_supervised_recovers_like_sequential() {
        let input = workload(100);
        let cfg = SupervisorConfig { epoch_interval: 16, ..Default::default() };
        let shield_only = || shield_only_builder_with_sink().0;

        // Sequential baseline on the same plan.
        let mut exec = shield_only().build();
        for (s, e) in &input {
            exec.push(*s, e.clone()).unwrap();
        }
        exec.finish().unwrap();
        let (_, sink) = shield_only_builder_with_sink();
        let base: Vec<u64> = exec.sink(sink).tuples().map(|t| t.tid.raw()).collect();

        for kill_at in [5u64, 33, 64] {
            let mut store = MemStore::default();
            let mut killed = false;
            let mut oracle = move |_e: u64, p: u64| {
                if !killed && p == kill_at {
                    killed = true;
                    return true;
                }
                false
            };
            let mut run =
                run_supervised_sharded(shield_only, 4, &input, &cfg, &mut store, &mut oracle)
                    .unwrap();
            assert!(run.completed(), "kill at {kill_at}");
            assert_eq!(run.report.restart_attempts, 1);
            assert_eq!(run.report.checkpoints_restored, 1);
            let (_, sink) = shield_only_builder_with_sink();
            let got: Vec<u64> = run.executor.sink(sink).tuples().map(|t| t.tid.raw()).collect();
            assert!(
                base.ends_with(&got),
                "kill at {kill_at}: sharded recovery diverged from sequential baseline"
            );
            let d = run.degradation();
            assert_eq!(d.checkpoints_restored, 1);
        }
    }

    #[test]
    fn sharded_supervision_refuses_unsafe_plans() {
        // The default test builder chains select → shield: the select
        // delays sp propagation mid-plan, so the sharded builder refuses
        // it fail-closed before any input is consumed.
        let input = workload(10);
        let cfg = SupervisorConfig::default();
        let mut store = MemStore::default();
        let got = run_supervised_sharded(builder, 2, &input, &cfg, &mut store, &mut |_, _| false);
        assert!(matches!(got, Err(EngineError::ShardUnsupported { .. })));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg =
            SupervisorConfig { backoff_base_ms: 10, backoff_cap_ms: 65, ..Default::default() };
        assert_eq!(cfg.backoff_ms(1), 10);
        assert_eq!(cfg.backoff_ms(2), 20);
        assert_eq!(cfg.backoff_ms(3), 40);
        assert_eq!(cfg.backoff_ms(4), 65, "capped");
        assert_eq!(cfg.backoff_ms(63), 65, "shift never overflows");
    }
}
