//! Deterministic fault injection and the chaos harness.
//!
//! Streaming access control must degrade safely when the stream itself
//! misbehaves: security punctuations can be lost, duplicated, delayed or
//! reordered relative to the tuples they govern, and frames can arrive
//! corrupted. This module provides the tooling the robustness tests use to
//! exercise those conditions **reproducibly**:
//!
//! * [`FaultPlan`] — a seeded description of which faults to inject at
//!   what rates, with sps and tuples controlled independently (losing an
//!   sp is the security-relevant event; losing a tuple is merely lossy).
//! * [`FaultInjector`] — applies a plan to a recorded input, producing a
//!   perturbed input plus [`FaultStats`] describing exactly what was done.
//!   The same seed always yields the same perturbation.
//! * [`run_chaos`] — the harness: runs a plan-under-test across many
//!   seeded fault scenarios and checks the engine's two degradation
//!   invariants — it must never panic, and it must **fail closed**: the
//!   set of tuples released under faults must be a subset of the tuples
//!   released on the clean input. A lost or late sp may suppress output;
//!   it must never reveal extra output.
//!
//! Randomness is a private splitmix64 generator so the engine crate takes
//! no dependency for it and scenario derivation is stable across runs.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use sp_core::{StreamElement, StreamId};

use crate::ops::sink::Sink;
use crate::plan::{PlanBuilder, SinkRef};

/// Minimal deterministic RNG (splitmix64): one `u64` of state, full
/// 64-bit output, good enough for fault placement. Shared with the
/// overload module (shedding-decision randomness) so the engine crate
/// still takes no RNG dependency.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub(crate) fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && self.next_f64() < p
    }

    /// Uniform in `[1, n]` (n >= 1).
    pub(crate) fn up_to(&mut self, n: usize) -> usize {
        1 + (self.next_u64() as usize) % n.max(1)
    }
}

/// A seeded description of the faults to inject into a recorded stream.
///
/// All `*_prob` fields are per-element probabilities in `[0, 1]`.
/// Punctuations and tuples are perturbed independently — the interesting
/// degradation cases are exactly the asymmetric ones (sp lost, tuples
/// intact).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault placement decisions.
    pub seed: u64,
    /// Probability an sp is silently dropped.
    pub drop_sp: f64,
    /// Probability a tuple is silently dropped.
    pub drop_tuple: f64,
    /// Probability an sp is duplicated (duplicate arrives adjacent).
    pub dup_sp: f64,
    /// Probability a tuple is duplicated (duplicate arrives adjacent).
    pub dup_tuple: f64,
    /// Probability an sp is delayed — displaced later in arrival order.
    pub delay_sp: f64,
    /// Maximum displacement (in elements) of a delayed sp.
    pub delay_slots: usize,
    /// Probability any element is displaced later in arrival order.
    pub reorder: f64,
    /// Maximum displacement (in elements) of a reordered element.
    pub reorder_window: usize,
    /// Per-byte corruption probability for [`FaultInjector::corrupt`]
    /// (wire-level tests).
    pub corrupt_byte: f64,
    /// Probability an arrival **burst** starts at a tuple: the window of
    /// up to `burst_len` following tuples is replayed adjacently (a flood
    /// of duplicates in one arrival instant — what a retrying upstream or
    /// a drained network buffer produces). Overload tests drive shedders
    /// with this.
    pub burst: f64,
    /// Maximum burst window (in elements).
    pub burst_len: usize,
    /// Probability a **stall** starts at an element: a block of up to
    /// `stall_len` elements is held back and delivered en bloc after the
    /// elements that followed it (a paused-then-flushed connection).
    /// Relative order inside the block is preserved.
    pub stall: f64,
    /// Maximum stalled-block length (in elements).
    pub stall_len: usize,
}

impl FaultPlan {
    /// A plan that injects nothing (identity perturbation).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            drop_sp: 0.0,
            drop_tuple: 0.0,
            dup_sp: 0.0,
            dup_tuple: 0.0,
            delay_sp: 0.0,
            delay_slots: 0,
            reorder: 0.0,
            reorder_window: 0,
            corrupt_byte: 0.0,
            burst: 0.0,
            burst_len: 0,
            stall: 0.0,
            stall_len: 0,
        }
    }

    /// Derives a randomized-but-deterministic scenario from a seed: every
    /// fault kind enabled at a seed-dependent rate. Two calls with the
    /// same seed produce the same plan.
    #[must_use]
    pub fn scenario(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC0FF_EE00_5EED_5EED);
        Self {
            seed,
            drop_sp: rng.next_f64() * 0.35,
            drop_tuple: rng.next_f64() * 0.25,
            dup_sp: rng.next_f64() * 0.25,
            dup_tuple: rng.next_f64() * 0.25,
            delay_sp: rng.next_f64() * 0.35,
            delay_slots: rng.up_to(6),
            reorder: rng.next_f64() * 0.3,
            reorder_window: rng.up_to(4),
            corrupt_byte: rng.next_f64() * 0.02,
            burst: rng.next_f64() * 0.05,
            burst_len: rng.up_to(8),
            stall: rng.next_f64() * 0.05,
            stall_len: rng.up_to(6),
        }
    }
}

/// Counts of the faults an injector actually applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Punctuations removed from the stream.
    pub dropped_sps: u64,
    /// Tuples removed from the stream.
    pub dropped_tuples: u64,
    /// Punctuations duplicated.
    pub duplicated_sps: u64,
    /// Tuples duplicated.
    pub duplicated_tuples: u64,
    /// Punctuations displaced later by the delay fault.
    pub delayed_sps: u64,
    /// Elements displaced by the reorder fault.
    pub reordered: u64,
    /// Bytes corrupted by [`FaultInjector::corrupt`].
    pub corrupted_bytes: u64,
    /// Arrival bursts injected.
    pub bursts: u64,
    /// Extra tuple arrivals the bursts produced.
    pub burst_tuples: u64,
    /// Stalled-and-flushed blocks injected.
    pub stalls: u64,
}

impl FaultStats {
    /// Total number of injected faults.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.dropped_sps
            + self.dropped_tuples
            + self.duplicated_sps
            + self.duplicated_tuples
            + self.delayed_sps
            + self.reordered
            + self.corrupted_bytes
            + self.bursts
            + self.stalls
    }

    /// Accumulates another stats block into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.dropped_sps += other.dropped_sps;
        self.dropped_tuples += other.dropped_tuples;
        self.duplicated_sps += other.duplicated_sps;
        self.duplicated_tuples += other.duplicated_tuples;
        self.delayed_sps += other.delayed_sps;
        self.reordered += other.reordered;
        self.corrupted_bytes += other.corrupted_bytes;
        self.bursts += other.bursts;
        self.burst_tuples += other.burst_tuples;
        self.stalls += other.stalls;
    }
}

/// Applies a [`FaultPlan`] to recorded input, deterministically.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    stats: FaultStats,
}

impl FaultInjector {
    /// An injector for the given plan.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self { rng: SplitMix64::new(plan.seed), plan, stats: FaultStats::default() }
    }

    /// What this injector has done so far.
    #[must_use]
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Produces the perturbed copy of `input`.
    ///
    /// Drops and duplicates are applied per element (duplicates arrive
    /// adjacent, as network-level duplicates do); then sps are delayed;
    /// then the generic reorder displacement runs over everything.
    #[must_use]
    pub fn apply(&mut self, input: &[(StreamId, StreamElement)]) -> Vec<(StreamId, StreamElement)> {
        let mut out: Vec<(StreamId, StreamElement)> = Vec::with_capacity(input.len());
        for (sid, elem) in input {
            let is_sp = matches!(elem, StreamElement::Punctuation(_));
            let (p_drop, p_dup) = if is_sp {
                (self.plan.drop_sp, self.plan.dup_sp)
            } else {
                (self.plan.drop_tuple, self.plan.dup_tuple)
            };
            if self.rng.chance(p_drop) {
                if is_sp {
                    self.stats.dropped_sps += 1;
                } else {
                    self.stats.dropped_tuples += 1;
                }
                continue;
            }
            out.push((*sid, elem.clone()));
            if self.rng.chance(p_dup) {
                if is_sp {
                    self.stats.duplicated_sps += 1;
                } else {
                    self.stats.duplicated_tuples += 1;
                }
                out.push((*sid, elem.clone()));
            }
        }
        let delayed = self.displace(&mut out, self.plan.delay_sp, self.plan.delay_slots, true);
        self.stats.delayed_sps += delayed;
        let reordered = self.displace(&mut out, self.plan.reorder, self.plan.reorder_window, false);
        self.stats.reordered += reordered;
        self.inject_bursts(&mut out);
        self.inject_stalls(&mut out);
        out
    }

    /// Injects arrival bursts: with probability `burst` at each tuple, the
    /// tuples of the following window are replayed adjacently after it —
    /// the arrival-rate spike a retrying upstream produces. Only tuples
    /// are replayed (replaying an sp would merely duplicate policy state;
    /// the flood that matters for overload is data).
    fn inject_bursts(&mut self, out: &mut Vec<(StreamId, StreamElement)>) {
        if self.plan.burst <= 0.0 || self.plan.burst_len == 0 {
            return;
        }
        let mut i = 0;
        while i < out.len() {
            let is_tuple = matches!(out[i].1, StreamElement::Tuple(_));
            if is_tuple && self.rng.chance(self.plan.burst) {
                let w = self.rng.up_to(self.plan.burst_len);
                let end = (i + w).min(out.len());
                let copies: Vec<(StreamId, StreamElement)> = out[i..end]
                    .iter()
                    .filter(|(_, e)| matches!(e, StreamElement::Tuple(_)))
                    .cloned()
                    .collect();
                self.stats.bursts += 1;
                self.stats.burst_tuples += copies.len() as u64;
                let inserted = copies.len();
                out.splice(end..end, copies);
                // Skip past the inserted copies so one trigger cannot
                // cascade into an unbounded avalanche.
                i = end + inserted;
            } else {
                i += 1;
            }
        }
    }

    /// Injects stalls: with probability `stall` at each element, a block
    /// of up to `stall_len` elements is held back and delivered after the
    /// elements that followed it (order inside the block preserved) — a
    /// paused connection flushing its buffer late.
    fn inject_stalls(&mut self, out: &mut [(StreamId, StreamElement)]) {
        if self.plan.stall <= 0.0 || self.plan.stall_len == 0 {
            return;
        }
        let mut i = 0;
        while i + 1 < out.len() {
            if self.rng.chance(self.plan.stall) {
                let w = self.rng.up_to(self.plan.stall_len);
                let end = (i + w).min(out.len());
                let shift = w.min(out.len() - end);
                if shift > 0 && end > i {
                    out[i..end + shift].rotate_left(end - i);
                    self.stats.stalls += 1;
                }
                i = end + shift;
            } else {
                i += 1;
            }
        }
    }

    /// Displaces elements later in arrival order by up to `window` slots.
    fn displace(
        &mut self,
        out: &mut Vec<(StreamId, StreamElement)>,
        prob: f64,
        window: usize,
        sp_only: bool,
    ) -> u64 {
        if prob <= 0.0 || window == 0 || out.len() < 2 {
            return 0;
        }
        let mut moved = 0;
        let mut i = 0;
        while i < out.len() {
            let applies = !sp_only || matches!(out[i].1, StreamElement::Punctuation(_));
            if applies && self.rng.chance(prob) {
                let j = (i + self.rng.up_to(window)).min(out.len() - 1);
                if j > i {
                    let e = out.remove(i);
                    out.insert(j, e);
                    moved += 1;
                }
            }
            i += 1;
        }
        moved
    }

    /// Corrupts `bytes` in place: each byte is XORed with a random
    /// non-zero mask with probability `corrupt_byte`. For exercising the
    /// wire layer's CRC and resync paths.
    pub fn corrupt(&mut self, bytes: &mut [u8]) {
        for b in bytes.iter_mut() {
            if self.rng.chance(self.plan.corrupt_byte) {
                let mask = (self.rng.next_u64() as u8) | 1;
                *b ^= mask;
                self.stats.corrupted_bytes += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Socket-layer faults
// ---------------------------------------------------------------------------

/// A seeded description of transport-level faults for a framed byte
/// stream: how a hostile or merely unlucky network *delivers* the bytes a
/// client sent. Where [`FaultPlan`] perturbs the element sequence,
/// `SocketFaultPlan` perturbs the delivery of the encoded frames — torn
/// into arbitrary chunks (partial writes), interleaved with garbage,
/// bit-corrupted, stalled, or cut mid-frame by a disconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SocketFaultPlan {
    /// Seed for all delivery decisions.
    pub seed: u64,
    /// Maximum delivery chunk in bytes; every write is torn into chunks
    /// of `1..=chunk_max` bytes (0 = deliver in one piece).
    pub chunk_max: usize,
    /// Probability a chunk boundary also injects garbage bytes.
    pub garbage: f64,
    /// Maximum garbage run length in bytes.
    pub garbage_max: usize,
    /// Per-byte corruption probability on delivered payload bytes.
    pub corrupt_byte: f64,
    /// Probability a chunk boundary inserts a delivery stall.
    pub stall: f64,
    /// Maximum stall length in (simulated) milliseconds.
    pub stall_ms_max: u64,
    /// Probability, per chunk, that the connection dies mid-delivery:
    /// the remaining bytes of this `deliver` call are dropped on the
    /// floor and the client must reconnect and replay from its
    /// acknowledged position.
    pub disconnect: f64,
}

impl SocketFaultPlan {
    /// A plan that delivers every byte verbatim in one chunk.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            chunk_max: 0,
            garbage: 0.0,
            garbage_max: 0,
            corrupt_byte: 0.0,
            stall: 0.0,
            stall_ms_max: 0,
            disconnect: 0.0,
        }
    }

    /// Derives a randomized-but-deterministic delivery scenario from a
    /// seed: small torn chunks, occasional garbage, rare corruption and
    /// disconnects. Two calls with the same seed produce the same plan.
    #[must_use]
    pub fn scenario(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x50C6_E7FA_017B_17E5);
        Self {
            seed,
            chunk_max: rng.up_to(96),
            garbage: rng.next_f64() * 0.10,
            garbage_max: rng.up_to(24),
            corrupt_byte: rng.next_f64() * 0.002,
            stall: rng.next_f64() * 0.05,
            stall_ms_max: rng.up_to(5) as u64,
            disconnect: rng.next_f64() * 0.01,
        }
    }
}

/// Counters of the socket faults an injector actually applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SocketFaultStats {
    /// Delivery chunks produced (tears).
    pub chunks: u64,
    /// Garbage bytes injected between chunks.
    pub garbage_bytes: u64,
    /// Payload bytes bit-corrupted in flight.
    pub corrupted_bytes: u64,
    /// Stalls inserted.
    pub stalls: u64,
    /// Mid-delivery disconnects.
    pub disconnects: u64,
    /// Payload bytes dropped by disconnects (never delivered).
    pub dropped_bytes: u64,
}

/// One step of a scripted hostile delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketEvent {
    /// Write these bytes to the transport.
    Deliver(Vec<u8>),
    /// Pause delivery for this many milliseconds (a stalled link).
    StallMs(u64),
    /// Drop the connection; any bytes after this event in the original
    /// payload were lost and it is the *client's* job to reconnect and
    /// replay from its acknowledged position.
    Disconnect,
}

/// Turns an outgoing byte payload into a hostile delivery script,
/// deterministically per seed. The injector holds the RNG and counters
/// across calls, so one injector scripts a whole connection (or several,
/// across reconnects).
#[derive(Debug)]
pub struct SocketFaultInjector {
    plan: SocketFaultPlan,
    rng: SplitMix64,
    stats: SocketFaultStats,
}

impl SocketFaultInjector {
    /// An injector for the given plan.
    #[must_use]
    pub fn new(plan: SocketFaultPlan) -> Self {
        Self {
            rng: SplitMix64::new(plan.seed ^ 0x7EA2_B0B5),
            plan,
            stats: SocketFaultStats::default(),
        }
    }

    /// What this injector has done so far.
    #[must_use]
    pub fn stats(&self) -> &SocketFaultStats {
        &self.stats
    }

    /// Scripts the delivery of `bytes`: a sequence of chunk writes with
    /// optional garbage, corruption and stalls, possibly cut short by a
    /// disconnect (in which case the remaining bytes are dropped and the
    /// script ends with [`SocketEvent::Disconnect`]).
    pub fn deliver(&mut self, bytes: &[u8]) -> Vec<SocketEvent> {
        let mut events = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            if self.rng.chance(self.plan.disconnect) {
                self.stats.disconnects += 1;
                self.stats.dropped_bytes += (bytes.len() - pos) as u64;
                events.push(SocketEvent::Disconnect);
                return events;
            }
            if self.rng.chance(self.plan.stall) && self.plan.stall_ms_max > 0 {
                self.stats.stalls += 1;
                events.push(SocketEvent::StallMs(
                    self.rng.up_to(self.plan.stall_ms_max as usize) as u64
                ));
            }
            if self.rng.chance(self.plan.garbage) && self.plan.garbage_max > 0 {
                let n = self.rng.up_to(self.plan.garbage_max);
                let garbage: Vec<u8> = (0..n).map(|_| self.rng.next_u64() as u8).collect();
                self.stats.garbage_bytes += garbage.len() as u64;
                events.push(SocketEvent::Deliver(garbage));
            }
            let chunk = if self.plan.chunk_max == 0 {
                bytes.len() - pos
            } else {
                self.rng.up_to(self.plan.chunk_max).min(bytes.len() - pos)
            };
            let mut payload = bytes[pos..pos + chunk].to_vec();
            for b in payload.iter_mut() {
                if self.rng.chance(self.plan.corrupt_byte) {
                    *b ^= (self.rng.next_u64() as u8) | 1;
                    self.stats.corrupted_bytes += 1;
                }
            }
            self.stats.chunks += 1;
            events.push(SocketEvent::Deliver(payload));
            pos += chunk;
        }
        events
    }
}

// ---------------------------------------------------------------------------
// Replication-link faults
// ---------------------------------------------------------------------------

/// A seeded description of faults on a *replication link*: the
/// checkpoint-shipping channel between a primary and its standby. Where
/// [`SocketFaultPlan`] perturbs byte delivery, `LinkFaultPlan` perturbs
/// whole-frame delivery the way a flaky WAN does — partitions that
/// swallow a span of frames in both directions, lag that holds a frame
/// back past its successors (reordered delivery), and duplicate
/// delivery of frames that were already received.
///
/// The replication protocol must converge under all of these: a
/// partition only grows replication lag (commits resync on reconnect),
/// a lagged or duplicated `CheckpointCommit` must be applied at most
/// once, and an old epoch arriving after a newer one must be refused
/// rather than rolling the standby's policy state backwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultPlan {
    /// Seed for all delivery decisions.
    pub seed: u64,
    /// Probability, per frame, that a partition begins: this frame and
    /// the next `partition_len - 1` frames are dropped entirely.
    pub partition: f64,
    /// Frames swallowed per partition (minimum 1 when a partition fires).
    pub partition_len: usize,
    /// Probability a frame lags: it is held back and delivered after up
    /// to `lag_max` later frames (reordered delivery).
    pub lag: f64,
    /// Maximum frames a lagged frame is held behind.
    pub lag_max: usize,
    /// Probability a delivered frame is delivered twice.
    pub duplicate: f64,
}

impl LinkFaultPlan {
    /// A link that delivers every frame exactly once, in order.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self { seed, partition: 0.0, partition_len: 0, lag: 0.0, lag_max: 0, duplicate: 0.0 }
    }

    /// Derives a randomized-but-deterministic hostile link from a seed:
    /// occasional short partitions, moderate lag, rare duplicates. Two
    /// calls with the same seed produce the same plan.
    #[must_use]
    pub fn scenario(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x11BE_FA17_5EED_C0DE);
        Self {
            seed,
            partition: rng.next_f64() * 0.08,
            partition_len: 1 + rng.up_to(4),
            lag: rng.next_f64() * 0.25,
            lag_max: 1 + rng.up_to(6),
            duplicate: rng.next_f64() * 0.15,
        }
    }
}

/// Counters of the link faults an injector actually applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaultStats {
    /// Frames offered to the link.
    pub offered: u64,
    /// Frame deliveries produced (duplicates counted).
    pub delivered: u64,
    /// Frames swallowed by partitions.
    pub partitioned: u64,
    /// Frames delivered out of order (held back past a successor).
    pub lagged: u64,
    /// Extra deliveries of already-delivered frames.
    pub duplicated: u64,
}

/// Applies a [`LinkFaultPlan`] to a sequence of frames, producing the
/// perturbed delivery order. The injector holds its RNG and counters
/// across calls, so one injector scripts a whole link lifetime (the
/// same seed always produces the same script).
#[derive(Debug)]
pub struct LinkFaultInjector {
    plan: LinkFaultPlan,
    rng: SplitMix64,
    stats: LinkFaultStats,
    /// Frames held back by lag: `(deliver_after_countdown, frame)`.
    held: Vec<(usize, Vec<u8>)>,
    /// Remaining frames to swallow in the current partition.
    partition_left: usize,
}

impl LinkFaultInjector {
    /// An injector for the given plan.
    #[must_use]
    pub fn new(plan: LinkFaultPlan) -> Self {
        Self {
            rng: SplitMix64::new(plan.seed ^ 0x4FA1_1BAC),
            plan,
            stats: LinkFaultStats::default(),
            held: Vec::new(),
            partition_left: 0,
        }
    }

    /// What this injector has done so far.
    #[must_use]
    pub fn stats(&self) -> &LinkFaultStats {
        &self.stats
    }

    fn release_due(&mut self, out: &mut Vec<Vec<u8>>) {
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].0 == 0 {
                let (_, frame) = self.held.remove(i);
                self.stats.delivered += 1;
                out.push(frame);
            } else {
                self.held[i].0 -= 1;
                i += 1;
            }
        }
    }

    /// Offers one frame to the link; returns the frames that come out
    /// the far end *now* (possibly none — partitioned or lagged;
    /// possibly several — releases of earlier lagged frames, or
    /// duplicates).
    pub fn offer(&mut self, frame: &[u8]) -> Vec<Vec<u8>> {
        self.stats.offered += 1;
        let mut out = Vec::new();
        if self.partition_left > 0 {
            // Both directions are dark: the frame is gone, and lagged
            // frames stay held (nothing traverses the link).
            self.partition_left -= 1;
            self.stats.partitioned += 1;
            return out;
        }
        if self.rng.chance(self.plan.partition) && self.plan.partition_len > 0 {
            self.partition_left = self.plan.partition_len - 1;
            self.stats.partitioned += 1;
            return out;
        }
        self.release_due(&mut out);
        if self.rng.chance(self.plan.lag) && self.plan.lag_max > 0 {
            let hold = 1 + self.rng.up_to(self.plan.lag_max);
            self.stats.lagged += 1;
            self.held.push((hold, frame.to_vec()));
        } else {
            self.stats.delivered += 1;
            out.push(frame.to_vec());
            if self.rng.chance(self.plan.duplicate) {
                self.stats.delivered += 1;
                self.stats.duplicated += 1;
                out.push(frame.to_vec());
            }
        }
        out
    }

    /// Flushes every still-held frame (the link going quiet long enough
    /// for all lag to drain). Call at end of script so held frames are
    /// not silently lost.
    pub fn drain(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for (_, frame) in self.held.drain(..) {
            self.stats.delivered += 1;
            out.push(frame);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Ciphertext faults (malicious-server simulation)
// ---------------------------------------------------------------------------

/// A seeded description of *ciphertext* faults: what a malicious or
/// broken server can do to the encoded
/// [`sp_core::crypto::CipherFrame`] sequence it is supposed to forward
/// verbatim. Where [`SocketFaultPlan`] models a hostile network,
/// `CipherFaultPlan` models a hostile **forwarder**: it can decode the
/// framing (it is not secret), mutate fields, and re-encode with a
/// fresh CRC — the envelope checksum is transport hygiene, not a
/// security boundary. The AEAD tags inside the bodies are what the
/// client's fail-closed state machine must lean on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CipherFaultPlan {
    /// Seed for all mutation decisions.
    pub seed: u64,
    /// Probability a DATA frame gets one ciphertext byte flipped
    /// (CRC recomputed, so only the AEAD tag can catch it).
    pub flip_ct: f64,
    /// Probability a DATA frame's sealed payload is truncated.
    pub truncate: f64,
    /// Probability any frame is silently dropped.
    pub drop_frame: f64,
    /// Probability a DIGEST frame specifically is dropped (forcing the
    /// client to decide the segment without its digest).
    pub drop_digest: f64,
    /// Probability a completed segment is replayed — its entire frame
    /// run re-delivered after its terminator.
    pub replay_segment: f64,
    /// Probability the `idx` fields of two adjacent DATA frames are
    /// swapped (a nonce-confusion / reordering attack).
    pub swap_nonce: f64,
    /// Probability a HEADER's key epoch is perturbed (stale or
    /// fabricated key-epoch claim).
    pub stale_epoch: f64,
}

impl CipherFaultPlan {
    /// A plan that forwards every frame verbatim.
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            flip_ct: 0.0,
            truncate: 0.0,
            drop_frame: 0.0,
            drop_digest: 0.0,
            replay_segment: 0.0,
            swap_nonce: 0.0,
            stale_epoch: 0.0,
        }
    }

    /// Derives a randomized-but-deterministic hostile forwarder from a
    /// seed: every attack enabled at a seed-dependent rate. Two calls
    /// with the same seed produce the same plan.
    #[must_use]
    pub fn scenario(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC1F4_E12F_AD57_0CE5);
        Self {
            seed,
            flip_ct: rng.next_f64() * 0.15,
            truncate: rng.next_f64() * 0.10,
            drop_frame: rng.next_f64() * 0.08,
            drop_digest: rng.next_f64() * 0.25,
            replay_segment: rng.next_f64() * 0.20,
            swap_nonce: rng.next_f64() * 0.10,
            stale_epoch: rng.next_f64() * 0.15,
        }
    }
}

/// Counters of the ciphertext faults an injector actually applied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CipherFaultStats {
    /// Frames offered to the hostile forwarder.
    pub offered: u64,
    /// DATA frames with a flipped ciphertext byte.
    pub flipped: u64,
    /// DATA frames with a truncated sealed payload.
    pub truncated: u64,
    /// Frames dropped entirely.
    pub dropped_frames: u64,
    /// DIGEST frames dropped.
    pub dropped_digests: u64,
    /// Segments replayed whole after their terminator.
    pub replayed_segments: u64,
    /// Adjacent DATA index (nonce) swaps.
    pub swapped_nonces: u64,
    /// HEADER key epochs perturbed.
    pub stale_epochs: u64,
}

impl CipherFaultStats {
    /// Total number of injected faults.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.flipped
            + self.truncated
            + self.dropped_frames
            + self.dropped_digests
            + self.replayed_segments
            + self.swapped_nonces
            + self.stale_epochs
    }

    /// Accumulates another stats block into this one.
    pub fn absorb(&mut self, other: &CipherFaultStats) {
        self.offered += other.offered;
        self.flipped += other.flipped;
        self.truncated += other.truncated;
        self.dropped_frames += other.dropped_frames;
        self.dropped_digests += other.dropped_digests;
        self.replayed_segments += other.replayed_segments;
        self.swapped_nonces += other.swapped_nonces;
        self.stale_epochs += other.stale_epochs;
    }
}

/// Applies a [`CipherFaultPlan`] to a sequence of encoded cipher
/// frames, deterministically per seed. Mutations go through
/// decode → perturb → re-encode, so every delivered frame carries a
/// *valid envelope checksum* — exactly what a malicious forwarder
/// produces. Frames that fail to decode (not cipher frames at all) are
/// forwarded untouched.
#[derive(Debug)]
pub struct CipherFaultInjector {
    plan: CipherFaultPlan,
    rng: SplitMix64,
    stats: CipherFaultStats,
}

impl CipherFaultInjector {
    /// An injector for the given plan.
    #[must_use]
    pub fn new(plan: CipherFaultPlan) -> Self {
        Self {
            rng: SplitMix64::new(plan.seed ^ 0x5EA1_ED0F_F3A2),
            plan,
            stats: CipherFaultStats::default(),
        }
    }

    /// What this injector has done so far.
    #[must_use]
    pub fn stats(&self) -> &CipherFaultStats {
        &self.stats
    }

    /// Produces the hostile forwarder's delivery of `frames`.
    #[must_use]
    pub fn apply(&mut self, frames: &[Vec<u8>]) -> Vec<Vec<u8>> {
        use sp_core::crypto::CipherFrame;

        let mut out: Vec<Vec<u8>> = Vec::with_capacity(frames.len());
        // Frames of the segment currently in flight, for replay.
        let mut segment_run: Vec<Vec<u8>> = Vec::new();
        for bytes in frames {
            self.stats.offered += 1;
            let Ok(frame) = CipherFrame::decode_frame(bytes) else {
                out.push(bytes.clone());
                continue;
            };
            if self.rng.chance(self.plan.drop_frame) {
                self.stats.dropped_frames += 1;
                continue;
            }
            let mutated = match frame {
                CipherFrame::Data { stream, seg, idx, mut sealed } => {
                    if self.rng.chance(self.plan.flip_ct) && !sealed.is_empty() {
                        let at = self.rng.up_to(sealed.len()) - 1;
                        sealed[at] ^= (self.rng.next_u64() as u8) | 1;
                        self.stats.flipped += 1;
                    }
                    if self.rng.chance(self.plan.truncate) && !sealed.is_empty() {
                        let keep = self.rng.up_to(sealed.len()) - 1;
                        sealed.truncate(keep);
                        self.stats.truncated += 1;
                    }
                    CipherFrame::Data { stream, seg, idx, sealed }
                }
                CipherFrame::Digest { .. } if self.rng.chance(self.plan.drop_digest) => {
                    self.stats.dropped_digests += 1;
                    continue;
                }
                CipherFrame::Header { stream, seg, key_epoch, sp_ts, capsules }
                    if self.rng.chance(self.plan.stale_epoch) =>
                {
                    // Claim an older (or, when at zero, a fabricated
                    // newer) epoch than the capsules were sealed under.
                    let bogus = if key_epoch > 0 { key_epoch - 1 } else { key_epoch + 1 };
                    self.stats.stale_epochs += 1;
                    CipherFrame::Header { stream, seg, key_epoch: bogus, sp_ts, capsules }
                }
                other => other,
            };
            let is_terminator = matches!(mutated, CipherFrame::Terminator { .. });
            let delivered = mutated.encode_to_vec();
            segment_run.push(delivered.clone());
            out.push(delivered);
            if is_terminator {
                if self.rng.chance(self.plan.replay_segment) {
                    self.stats.replayed_segments += 1;
                    out.extend(segment_run.iter().cloned());
                }
                segment_run.clear();
            }
        }
        self.swap_adjacent_nonces(&mut out);
        out
    }

    /// Swaps the `idx` fields of adjacent DATA-frame pairs with
    /// probability `swap_nonce` per pair — the frames still carry valid
    /// envelopes, but each now claims the other's nonce position.
    fn swap_adjacent_nonces(&mut self, out: &mut [Vec<u8>]) {
        use sp_core::crypto::CipherFrame;

        if self.plan.swap_nonce <= 0.0 {
            return;
        }
        let mut i = 0;
        while i + 1 < out.len() {
            let pair = (CipherFrame::decode_frame(&out[i]), CipherFrame::decode_frame(&out[i + 1]));
            if let (
                Ok(CipherFrame::Data { stream: s1, seg: g1, idx: i1, sealed: b1 }),
                Ok(CipherFrame::Data { stream: s2, seg: g2, idx: i2, sealed: b2 }),
            ) = pair
            {
                if self.rng.chance(self.plan.swap_nonce) {
                    out[i] = CipherFrame::Data { stream: s1, seg: g1, idx: i2, sealed: b1 }
                        .encode_to_vec();
                    out[i + 1] = CipherFrame::Data { stream: s2, seg: g2, idx: i1, sealed: b2 }
                        .encode_to_vec();
                    self.stats.swapped_nonces += 1;
                    i += 2;
                    continue;
                }
            }
            i += 1;
        }
    }
}

/// Outcome of a [`run_chaos`] campaign.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Number of fault scenarios executed.
    pub scenarios: u64,
    /// Scenarios where the executor reported a typed [`crate::EngineError`]
    /// (acceptable: fail-closed degradation, not a failure).
    pub engine_errors: u64,
    /// Scenarios where the engine panicked (always a failure).
    pub panics: u64,
    /// Human-readable invariant violations (panics, leaked tuples).
    pub violations: Vec<String>,
    /// Aggregate faults injected across all scenarios.
    pub faults: FaultStats,
}

impl ChaosReport {
    /// True when every scenario upheld both invariants.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.panics == 0 && self.violations.is_empty()
    }

    /// One-line summary for harness output.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} scenarios, {} faults injected, {} engine errors, {} panics, {} violations",
            self.scenarios,
            self.faults.total(),
            self.engine_errors,
            self.panics,
            self.violations.len()
        )
    }
}

fn released_keys(sink: &Sink) -> HashSet<String> {
    sink.tuples().map(|t| t.to_string()).collect()
}

/// Runs `scenarios` seeded fault scenarios of the plan produced by
/// `build` over `input`, checking the degradation invariants.
///
/// `build` must return a fresh builder (and the sinks to audit) each call
/// — operators hold state, so every scenario needs its own plan instance.
/// Scenario `s` uses [`FaultPlan::scenario`] derived from `base_seed` and
/// `s`; the whole campaign is reproducible from `base_seed`.
///
/// Invariants checked per scenario:
///
/// 1. **No panics** — the engine must survive arbitrary drop / duplicate
///    / delay / reorder perturbations of its input.
/// 2. **Fail closed** — for every sink, the released tuple set under
///    faults must be a subset of the clean run's released set.
pub fn run_chaos<B>(
    input: &[(StreamId, StreamElement)],
    scenarios: u64,
    base_seed: u64,
    mut build: B,
) -> ChaosReport
where
    B: FnMut() -> (PlanBuilder, Vec<SinkRef>),
{
    let mut report = ChaosReport { scenarios, ..ChaosReport::default() };

    // Fault-free baseline.
    let (builder, sink_refs) = build();
    let mut exec = builder.build();
    if let Err(e) = exec.push_all(input.iter().cloned()) {
        report.violations.push(format!("baseline run failed: {e}"));
        return report;
    }
    let baseline: Vec<HashSet<String>> =
        sink_refs.iter().map(|r| released_keys(exec.sink(*r))).collect();

    for s in 0..scenarios {
        let plan = FaultPlan::scenario(base_seed ^ (s.wrapping_mul(0x0123_4567_89AB_CDEF) | s));
        let mut injector = FaultInjector::new(plan);
        let faulty = injector.apply(input);
        report.faults.absorb(injector.stats());

        let (builder, sink_refs) = build();
        let outcome = catch_unwind(AssertUnwindSafe(move || {
            let mut exec = builder.build();
            let err = exec.push_all(faulty).err();
            let sets: Vec<HashSet<String>> =
                sink_refs.iter().map(|r| released_keys(exec.sink(*r))).collect();
            (err, sets)
        }));
        match outcome {
            Err(_) => {
                report.panics += 1;
                report.violations.push(format!("scenario {s}: engine panicked"));
            }
            Ok((err, sets)) => {
                if err.is_some() {
                    report.engine_errors += 1;
                }
                for (i, set) in sets.iter().enumerate() {
                    if !set.is_subset(&baseline[i]) {
                        let mut leaked: Vec<&String> = set.difference(&baseline[i]).collect();
                        leaked.sort();
                        leaked.truncate(3);
                        report.violations.push(format!(
                            "scenario {s} sink {i}: {} tuple(s) released that the \
                             fault-free run withheld, e.g. {leaked:?}",
                            set.difference(&baseline[i]).count(),
                        ));
                    }
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{RoleSet, SecurityPunctuation, Timestamp, Tuple, TupleId, Value};

    fn sp(ts: u64) -> (StreamId, StreamElement) {
        (
            StreamId(1),
            StreamElement::punctuation(SecurityPunctuation::grant_all(
                RoleSet::from([1]),
                Timestamp(ts),
            )),
        )
    }

    fn tup(tid: u64, ts: u64) -> (StreamId, StreamElement) {
        (
            StreamId(1),
            StreamElement::tuple(Tuple::new(
                StreamId(1),
                TupleId(tid),
                Timestamp(ts),
                vec![Value::Int(tid as i64)],
            )),
        )
    }

    fn recorded(n: u64) -> Vec<(StreamId, StreamElement)> {
        let mut input = Vec::new();
        for seg in 0..n {
            let base = seg * 100;
            input.push(sp(base));
            for k in 1..=4 {
                input.push(tup(seg * 10 + k, base + k));
            }
        }
        input
    }

    #[test]
    fn identity_plan_is_identity() {
        let input = recorded(5);
        let mut inj = FaultInjector::new(FaultPlan::none(7));
        let out = inj.apply(&input);
        assert_eq!(out.len(), input.len());
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn same_seed_same_perturbation() {
        let input = recorded(10);
        let plan = FaultPlan::scenario(42);
        let a = FaultInjector::new(plan).apply(&input);
        let mut second = FaultInjector::new(plan);
        let b = second.apply(&input);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0, y.0);
            match (&x.1, &y.1) {
                (StreamElement::Tuple(t), StreamElement::Tuple(u)) => assert_eq!(t, u),
                (StreamElement::Punctuation(p), StreamElement::Punctuation(q)) => {
                    assert_eq!(p.ts, q.ts);
                }
                _ => panic!("same seed diverged"),
            }
        }
        assert!(second.stats().total() > 0, "scenario plans inject faults");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(FaultPlan::scenario(1), FaultPlan::scenario(2));
    }

    #[test]
    fn drop_all_sps_drops_only_sps() {
        let input = recorded(6);
        let sps =
            input.iter().filter(|(_, e)| matches!(e, StreamElement::Punctuation(_))).count() as u64;
        let mut plan = FaultPlan::none(3);
        plan.drop_sp = 1.0;
        let mut inj = FaultInjector::new(plan);
        let out = inj.apply(&input);
        assert_eq!(inj.stats().dropped_sps, sps);
        assert_eq!(inj.stats().dropped_tuples, 0);
        assert!(out.iter().all(|(_, e)| matches!(e, StreamElement::Tuple(_))));
    }

    #[test]
    fn duplicates_arrive_adjacent() {
        let input = recorded(4);
        let mut plan = FaultPlan::none(9);
        plan.dup_tuple = 1.0;
        let mut inj = FaultInjector::new(plan);
        let out = inj.apply(&input);
        let sp_count =
            input.iter().filter(|(_, e)| matches!(e, StreamElement::Punctuation(_))).count();
        let tuples = input.len() - sp_count;
        assert_eq!(out.len(), input.len() + tuples);
        assert_eq!(inj.stats().duplicated_tuples as usize, tuples);
        // Every tuple is immediately followed by its duplicate.
        let mut i = 0;
        while i < out.len() {
            if let StreamElement::Tuple(t) = &out[i].1 {
                match &out[i + 1].1 {
                    StreamElement::Tuple(u) => assert_eq!(t, u),
                    StreamElement::Punctuation(_) => panic!("duplicate not adjacent"),
                }
                i += 2;
            } else {
                i += 1;
            }
        }
    }

    #[test]
    fn reorder_displacement_is_bounded() {
        let input = recorded(8);
        let mut plan = FaultPlan::none(17);
        plan.reorder = 0.5;
        plan.reorder_window = 3;
        let mut inj = FaultInjector::new(plan);
        let out = inj.apply(&input);
        assert_eq!(out.len(), input.len());
        assert!(inj.stats().reordered > 0);
        // Conservation: same multiset of timestamps.
        let ts_of = |e: &StreamElement| match e {
            StreamElement::Tuple(t) => t.ts.0,
            StreamElement::Punctuation(p) => p.ts.0,
        };
        let mut a: Vec<u64> = input.iter().map(|(_, e)| ts_of(e)).collect();
        let mut b: Vec<u64> = out.iter().map(|(_, e)| ts_of(e)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bursts_replay_tuples_only_and_count() {
        let input = recorded(6);
        let mut plan = FaultPlan::none(11);
        plan.burst = 1.0;
        plan.burst_len = 3;
        let mut inj = FaultInjector::new(plan);
        let out = inj.apply(&input);
        assert!(inj.stats().bursts > 0);
        assert_eq!(out.len(), input.len() + inj.stats().burst_tuples as usize);
        // Bursts only replay existing tuples: the set of distinct tuple
        // ids and the sp count are unchanged.
        let ids = |v: &[(StreamId, StreamElement)]| {
            v.iter()
                .filter_map(|(_, e)| match e {
                    StreamElement::Tuple(t) => Some(t.tid.raw()),
                    StreamElement::Punctuation(_) => None,
                })
                .collect::<std::collections::HashSet<u64>>()
        };
        assert_eq!(ids(&input), ids(&out));
        let sps = |v: &[(StreamId, StreamElement)]| {
            v.iter().filter(|(_, e)| matches!(e, StreamElement::Punctuation(_))).count()
        };
        assert_eq!(sps(&input), sps(&out), "bursts never touch sps");
    }

    #[test]
    fn stalls_displace_blocks_conserving_the_multiset() {
        let input = recorded(8);
        let mut plan = FaultPlan::none(13);
        plan.stall = 0.4;
        plan.stall_len = 4;
        let mut inj = FaultInjector::new(plan);
        let out = inj.apply(&input);
        assert_eq!(out.len(), input.len());
        assert!(inj.stats().stalls > 0);
        let ts_of = |e: &StreamElement| match e {
            StreamElement::Tuple(t) => t.ts.0,
            StreamElement::Punctuation(p) => p.ts.0,
        };
        let mut a: Vec<u64> = input.iter().map(|(_, e)| ts_of(e)).collect();
        let mut b: Vec<u64> = out.iter().map(|(_, e)| ts_of(e)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_ne!(
            input.iter().map(|(_, e)| ts_of(e)).collect::<Vec<_>>(),
            out.iter().map(|(_, e)| ts_of(e)).collect::<Vec<_>>(),
            "stalls displaced something"
        );
    }

    #[test]
    fn socket_none_plan_delivers_verbatim() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let mut inj = SocketFaultInjector::new(SocketFaultPlan::none(5));
        let events = inj.deliver(&bytes);
        assert_eq!(events, vec![SocketEvent::Deliver(bytes)]);
        assert_eq!(inj.stats().chunks, 1);
        assert_eq!(inj.stats().disconnects, 0);
    }

    #[test]
    fn socket_scenario_is_deterministic() {
        let bytes: Vec<u8> = (0..512u16).map(|b| b as u8).collect();
        let plan = SocketFaultPlan::scenario(77);
        let a = SocketFaultInjector::new(plan).deliver(&bytes);
        let b = SocketFaultInjector::new(plan).deliver(&bytes);
        assert_eq!(a, b);
    }

    #[test]
    fn socket_tearing_conserves_payload_bytes() {
        let bytes: Vec<u8> = (0..2048u16).map(|b| b as u8).collect();
        let mut plan = SocketFaultPlan::none(13);
        plan.chunk_max = 7;
        plan.stall = 0.1;
        plan.stall_ms_max = 3;
        let mut inj = SocketFaultInjector::new(plan);
        let events = inj.deliver(&bytes);
        let delivered: Vec<u8> = events
            .iter()
            .filter_map(|e| match e {
                SocketEvent::Deliver(c) => Some(c.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert_eq!(delivered, bytes, "tearing must not lose or reorder payload");
        assert!(inj.stats().chunks > 100);
        assert!(inj.stats().stalls > 0);
    }

    #[test]
    fn socket_disconnect_drops_the_tail_and_counts_it() {
        let bytes = vec![0xABu8; 4096];
        let mut plan = SocketFaultPlan::none(21);
        plan.chunk_max = 16;
        plan.disconnect = 0.05;
        let mut inj = SocketFaultInjector::new(plan);
        let events = inj.deliver(&bytes);
        assert_eq!(events.last(), Some(&SocketEvent::Disconnect));
        let delivered: usize = events
            .iter()
            .filter_map(|e| match e {
                SocketEvent::Deliver(c) => Some(c.len()),
                _ => None,
            })
            .sum();
        assert_eq!(delivered as u64 + inj.stats().dropped_bytes, 4096);
        assert_eq!(inj.stats().disconnects, 1);
    }

    #[test]
    fn socket_garbage_rides_between_chunks() {
        let bytes = vec![0x11u8; 256];
        let mut plan = SocketFaultPlan::none(31);
        plan.chunk_max = 8;
        plan.garbage = 0.5;
        plan.garbage_max = 4;
        let mut inj = SocketFaultInjector::new(plan);
        let events = inj.deliver(&bytes);
        let total: usize = events
            .iter()
            .filter_map(|e| match e {
                SocketEvent::Deliver(c) => Some(c.len()),
                _ => None,
            })
            .sum();
        assert!(inj.stats().garbage_bytes > 0);
        assert_eq!(total as u64, 256 + inj.stats().garbage_bytes);
    }

    #[test]
    fn corruption_flips_counted_bytes() {
        let mut plan = FaultPlan::none(23);
        plan.corrupt_byte = 0.5;
        let mut inj = FaultInjector::new(plan);
        let clean: Vec<u8> = (0..200u16).map(|b| b as u8).collect();
        let mut bytes = clean.clone();
        inj.corrupt(&mut bytes);
        let flipped = clean.iter().zip(&bytes).filter(|(a, b)| a != b).count() as u64;
        assert!(flipped > 0);
        assert_eq!(flipped, inj.stats().corrupted_bytes);
    }

    // -- replication-link faults --------------------------------------

    fn link_frames(n: u64) -> Vec<Vec<u8>> {
        (0..n).map(|i| i.to_be_bytes().to_vec()).collect()
    }

    fn run_link(plan: LinkFaultPlan, frames: &[Vec<u8>]) -> (Vec<Vec<u8>>, LinkFaultStats) {
        let mut inj = LinkFaultInjector::new(plan);
        let mut out = Vec::new();
        for f in frames {
            out.extend(inj.offer(f));
        }
        out.extend(inj.drain());
        (out, *inj.stats())
    }

    #[test]
    fn quiet_link_delivers_exactly_once_in_order() {
        let frames = link_frames(64);
        let (out, stats) = run_link(LinkFaultPlan::none(7), &frames);
        assert_eq!(out, frames);
        assert_eq!(stats.offered, 64);
        assert_eq!(stats.delivered, 64);
        assert_eq!(stats.partitioned + stats.lagged + stats.duplicated, 0);
    }

    #[test]
    fn link_script_is_deterministic_per_seed() {
        let frames = link_frames(256);
        let plan = LinkFaultPlan::scenario(42);
        assert_eq!(plan, LinkFaultPlan::scenario(42));
        let (a, sa) = run_link(plan, &frames);
        let (b, sb) = run_link(plan, &frames);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        let (c, _) = run_link(LinkFaultPlan::scenario(43), &frames);
        assert_ne!(a, c, "different seeds must script different links");
    }

    #[test]
    fn hostile_link_accounts_for_every_frame() {
        let frames = link_frames(512);
        let plan = LinkFaultPlan {
            seed: 9,
            partition: 0.05,
            partition_len: 3,
            lag: 0.2,
            lag_max: 4,
            duplicate: 0.1,
        };
        let (out, stats) = run_link(plan, &frames);
        assert_eq!(stats.offered, 512);
        assert!(stats.partitioned > 0, "partitions must fire at 5%/512");
        assert!(stats.lagged > 0);
        assert!(stats.duplicated > 0);
        // Conservation: every offered frame is either delivered (at
        // least once) or swallowed by a partition; drain leaves nothing.
        assert_eq!(stats.delivered, stats.offered - stats.partitioned + stats.duplicated);
        assert_eq!(out.len() as u64, stats.delivered);
        // Nothing is fabricated: every delivery is a frame we offered.
        for f in &out {
            assert!(frames.contains(f));
        }
    }

    // -- ciphertext faults --------------------------------------------

    fn cipher_frames(segments: u64, per_seg: u32) -> Vec<Vec<u8>> {
        use sp_core::crypto::{CipherFrame, KeyCapsule};
        let mut frames = Vec::new();
        for seg in 0..segments {
            frames.push(
                CipherFrame::Header {
                    stream: 1,
                    seg,
                    key_epoch: 2,
                    sp_ts: seg * 100,
                    capsules: vec![KeyCapsule { role: 0, wrapped: vec![seg as u8; 48] }],
                }
                .encode_to_vec(),
            );
            for idx in 0..per_seg {
                frames.push(
                    CipherFrame::Data { stream: 1, seg, idx, sealed: vec![idx as u8 ^ 0x5A; 32] }
                        .encode_to_vec(),
                );
            }
            frames.push(
                CipherFrame::Digest {
                    stream: 1,
                    seg,
                    count: per_seg,
                    sealed_digest: vec![0xD1; 48],
                }
                .encode_to_vec(),
            );
            frames.push(CipherFrame::Terminator { stream: 1, seg }.encode_to_vec());
        }
        frames
    }

    #[test]
    fn cipher_none_plan_is_identity() {
        let frames = cipher_frames(4, 3);
        let mut inj = CipherFaultInjector::new(CipherFaultPlan::none(7));
        let out = inj.apply(&frames);
        assert_eq!(out, frames);
        assert_eq!(inj.stats().total(), 0);
        assert_eq!(inj.stats().offered, frames.len() as u64);
    }

    #[test]
    fn cipher_scenario_is_deterministic_and_injects() {
        let frames = cipher_frames(16, 4);
        let plan = CipherFaultPlan::scenario(42);
        assert_eq!(plan, CipherFaultPlan::scenario(42));
        let mut a = CipherFaultInjector::new(plan);
        let mut b = CipherFaultInjector::new(plan);
        assert_eq!(a.apply(&frames), b.apply(&frames));
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "scenario plans attack something");
        let mut c = CipherFaultInjector::new(CipherFaultPlan::scenario(43));
        assert_ne!(a.apply(&frames), c.apply(&frames));
    }

    #[test]
    fn cipher_mutations_keep_valid_envelopes() {
        use sp_core::crypto::CipherFrame;
        // A malicious forwarder recomputes the CRC: every delivered
        // frame must still decode at the envelope level.
        let frames = cipher_frames(12, 4);
        let plan = CipherFaultPlan {
            seed: 5,
            flip_ct: 0.5,
            truncate: 0.3,
            drop_frame: 0.0,
            drop_digest: 0.0,
            replay_segment: 0.5,
            swap_nonce: 0.5,
            stale_epoch: 0.5,
        };
        let mut inj = CipherFaultInjector::new(plan);
        let out = inj.apply(&frames);
        for f in &out {
            CipherFrame::decode_frame(f).expect("mutated frame still framed correctly");
        }
        assert!(inj.stats().flipped > 0);
        assert!(inj.stats().replayed_segments > 0);
        assert!(inj.stats().swapped_nonces > 0);
        assert!(inj.stats().stale_epochs > 0);
    }

    #[test]
    fn cipher_digest_drops_target_digests_only() {
        use sp_core::crypto::CipherFrame;
        let frames = cipher_frames(10, 3);
        let plan = CipherFaultPlan { drop_digest: 1.0, ..CipherFaultPlan::none(3) };
        let mut inj = CipherFaultInjector::new(plan);
        let out = inj.apply(&frames);
        assert_eq!(inj.stats().dropped_digests, 10);
        assert_eq!(out.len(), frames.len() - 10);
        for f in &out {
            assert!(!matches!(CipherFrame::decode_frame(f), Ok(CipherFrame::Digest { .. })));
        }
    }

    #[test]
    fn lagged_frames_are_reordered_not_lost() {
        let frames = link_frames(128);
        let plan = LinkFaultPlan { lag: 1.0, lag_max: 3, ..LinkFaultPlan::none(5) };
        let (out, stats) = run_link(plan, &frames);
        assert_eq!(stats.delivered, 128, "lag reorders, never drops");
        assert_eq!(stats.lagged, 128);
        let mut sorted = out.clone();
        sorted.sort();
        assert_eq!(sorted, frames);
        assert_ne!(out, frames, "all-lagged delivery must reorder something");
    }
}
