//! Out-of-order arrival handling.
//!
//! The paper assumes timestamp-ordered streams and notes that "the
//! out-of-order sp arrival can be handled similarly to prior works"
//! (§II-B, citing the slack-based techniques of Li et al. and Babcock et
//! al.). This module supplies that substrate: a **K-slack reorder buffer**
//! placed in front of a stream's SP Analyzer. Elements are buffered and
//! released in timestamp order once the watermark — the maximum timestamp
//! seen minus the slack — passes them; elements arriving later than the
//! slack allows are reported as dropped (the usual K-slack contract).
//!
//! Ordering is total: ties on timestamp release punctuations before data
//! tuples, so an sp carrying the same timestamp as its first tuple still
//! precedes it, preserving the "sps precede the tuples they govern"
//! invariant (§III-A).
//!
//! The staleness arithmetic is the shared [`Slack`] type — the overload
//! shedder's oldest-first policy consults the *same* definition, so the
//! two mechanisms cannot drift. Note the placement contract documented on
//! [`crate::slack`]: a shedder sits downstream of this buffer, so a shed
//! tuple never counts toward K-slack eviction — the watermark here
//! advances on arrival, before any shedding decision exists.

use std::collections::BTreeMap;

use sp_core::{StreamElement, Timestamp};

use crate::slack::Slack;

/// A slack-based reorder buffer for one input stream.
#[derive(Debug)]
pub struct ReorderBuffer {
    /// Maximum tolerated disorder.
    slack: Slack,
    /// Buffered elements keyed by (timestamp, punctuation-first, arrival).
    pending: BTreeMap<(Timestamp, u8, u64), StreamElement>,
    arrivals: u64,
    max_seen: Timestamp,
    /// Everything at or below this timestamp has been released.
    released_to: Option<Timestamp>,
    /// Elements dropped for arriving beyond the slack.
    pub dropped: u64,
}

impl ReorderBuffer {
    /// A buffer tolerating up to `slack` timestamp units of disorder.
    #[must_use]
    pub fn new(slack: u64) -> Self {
        Self::with_slack(Slack::new(slack))
    }

    /// A buffer using a shared [`Slack`] tolerance (the same value a
    /// downstream shedder's oldest-first policy consults).
    #[must_use]
    pub fn with_slack(slack: Slack) -> Self {
        Self {
            slack,
            pending: BTreeMap::new(),
            arrivals: 0,
            max_seen: Timestamp::ZERO,
            released_to: None,
            dropped: 0,
        }
    }

    /// The configured disorder tolerance.
    #[must_use]
    pub fn slack(&self) -> Slack {
        self.slack
    }

    /// Number of buffered elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Accepts one element, appending any elements that become releasable
    /// (watermark = max timestamp seen − slack) to `out` in timestamp
    /// order. A too-late element (strictly below the already-released
    /// watermark) is counted in [`ReorderBuffer::dropped`] and discarded —
    /// releasing it would violate the order downstream operators rely on.
    /// Elements *equal* to the released watermark are still admitted: the
    /// output stays non-decreasing.
    pub fn push(&mut self, elem: StreamElement, out: &mut Vec<StreamElement>) {
        let ts = elem.ts();
        if self.released_to.is_some_and(|r| ts < r) {
            self.dropped += 1;
            return;
        }
        self.arrivals += 1;
        let kind = u8::from(elem.is_tuple());
        self.pending.insert((ts, kind, self.arrivals), elem);
        if ts > self.max_seen {
            self.max_seen = ts;
        }
        let watermark = self.slack.watermark(self.max_seen);
        self.release_up_to(watermark, out);
    }

    /// Releases everything still buffered (end of stream).
    pub fn flush(&mut self, out: &mut Vec<StreamElement>) {
        let keys: Vec<_> = self.pending.keys().copied().collect();
        for key in keys {
            if let Some(elem) = self.pending.remove(&key) {
                out.push(elem);
            }
        }
        if self.max_seen > Timestamp::ZERO {
            self.released_to = Some(self.max_seen);
        }
    }

    /// Serializes the buffer's dynamic state (pending elements with their
    /// ordering keys, arrival counter, watermark bookkeeping, drop
    /// counter). The slack is configuration and is not serialized.
    pub fn snapshot(&self, buf: &mut Vec<u8>) {
        use bytes::BufMut;
        buf.put_u32(self.pending.len() as u32);
        for ((ts, kind, arrival), elem) in &self.pending {
            buf.put_u64(ts.0);
            buf.put_u8(*kind);
            buf.put_u64(*arrival);
            crate::checkpoint::encode_stream_element(elem, buf);
        }
        buf.put_u64(self.arrivals);
        buf.put_u64(self.max_seen.0);
        match self.released_to {
            Some(ts) => {
                buf.put_u8(1);
                buf.put_u64(ts.0);
            }
            None => buf.put_u8(0),
        }
        buf.put_u64(self.dropped);
    }

    /// Restores state serialized by [`ReorderBuffer::snapshot`] into a
    /// buffer built with the same slack.
    ///
    /// # Errors
    ///
    /// Fails closed ([`crate::EngineError::CheckpointCorrupt`]) on any
    /// truncation, trailing bytes, or malformed field.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), crate::EngineError> {
        use crate::checkpoint as ckpt;
        use bytes::Buf;
        let mut slice = bytes;
        let buf = &mut slice;
        let mut apply = || -> Result<(), ckpt::CodecError> {
            ckpt::need(buf, 4, "reorder pending length")?;
            let n = buf.get_u32() as usize;
            let mut pending = BTreeMap::new();
            for _ in 0..n {
                ckpt::need(buf, 8 + 1 + 8, "reorder pending key")?;
                let key = (Timestamp(buf.get_u64()), buf.get_u8(), buf.get_u64());
                let elem = ckpt::decode_stream_element(buf)?;
                if pending.insert(key, elem).is_some() {
                    return Err("duplicate reorder pending key".into());
                }
            }
            self.pending = pending;
            ckpt::need(buf, 8 + 8 + 1, "reorder watermark state")?;
            self.arrivals = buf.get_u64();
            self.max_seen = Timestamp(buf.get_u64());
            self.released_to = match buf.get_u8() {
                0 => None,
                1 => {
                    ckpt::need(buf, 8, "reorder released-to ts")?;
                    Some(Timestamp(buf.get_u64()))
                }
                b => return Err(format!("bad released-to flag {b}")),
            };
            ckpt::need(buf, 8, "reorder dropped counter")?;
            self.dropped = buf.get_u64();
            ckpt::done(buf)
        };
        apply().map_err(|e| ckpt::corrupt("reorder", e))
    }

    fn release_up_to(&mut self, watermark: Timestamp, out: &mut Vec<StreamElement>) {
        while self.pending.first_key_value().is_some_and(|(key, _)| key.0 <= watermark) {
            let Some((key, elem)) = self.pending.pop_first() else { break };
            out.push(elem);
            self.released_to = Some(key.0.max(self.released_to.unwrap_or(Timestamp::ZERO)));
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{RoleSet, SecurityPunctuation, StreamId, Tuple, TupleId, Value};

    fn tup(ts: u64) -> StreamElement {
        StreamElement::tuple(Tuple::new(
            StreamId(1),
            TupleId(ts),
            Timestamp(ts),
            vec![Value::Int(ts as i64)],
        ))
    }

    fn sp(ts: u64) -> StreamElement {
        StreamElement::punctuation(SecurityPunctuation::grant_all(
            RoleSet::from([1]),
            Timestamp(ts),
        ))
    }

    fn drain(buffer: &mut ReorderBuffer, input: Vec<StreamElement>) -> Vec<u64> {
        let mut out = Vec::new();
        for e in input {
            buffer.push(e, &mut out);
        }
        buffer.flush(&mut out);
        out.iter().map(|e| e.ts().millis()).collect()
    }

    #[test]
    fn reorders_within_slack() {
        let mut buf = ReorderBuffer::new(5);
        let ts = drain(&mut buf, vec![tup(3), tup(1), tup(2), tup(9), tup(7), tup(11)]);
        assert_eq!(ts, vec![1, 2, 3, 7, 9, 11]);
        assert_eq!(buf.dropped, 0);
    }

    #[test]
    fn drops_beyond_slack() {
        let mut buf = ReorderBuffer::new(2);
        let mut out = Vec::new();
        buf.push(tup(10), &mut out); // watermark 8
        buf.push(tup(20), &mut out); // watermark 18: releases 10
        assert_eq!(out.len(), 1);
        buf.push(tup(5), &mut out); // at/below released watermark → dropped
        assert_eq!(buf.dropped, 1);
        buf.flush(&mut out);
        assert_eq!(out.iter().map(|e| e.ts().millis()).collect::<Vec<_>>(), vec![10, 20]);
    }

    #[test]
    fn punctuation_precedes_equal_timestamp_tuple() {
        let mut buf = ReorderBuffer::new(10);
        let mut out = Vec::new();
        // Tuple arrives BEFORE its governing sp, same timestamp.
        buf.push(tup(5), &mut out);
        buf.push(sp(5), &mut out);
        buf.flush(&mut out);
        assert!(out[0].is_punctuation(), "sp released before its tuple");
        assert!(out[1].is_tuple());
    }

    #[test]
    fn shared_slack_type_round_trips() {
        let buf = ReorderBuffer::with_slack(Slack::new(5));
        assert_eq!(buf.slack(), Slack::new(5));
        assert_eq!(ReorderBuffer::new(5).slack(), buf.slack());
        // The buffer's drop rule and Slack::is_late agree: an element is
        // dropped exactly when it is late relative to released state.
        let mut b = ReorderBuffer::new(2);
        let mut out = Vec::new();
        b.push(tup(10), &mut out);
        b.push(tup(20), &mut out); // releases 10, watermark 18
        assert!(b.slack().is_late(Timestamp(5), Timestamp(20)));
        b.push(tup(5), &mut out);
        assert_eq!(b.dropped, 1);
    }

    #[test]
    fn zero_slack_is_pass_through_in_order() {
        let mut buf = ReorderBuffer::new(0);
        let ts = drain(&mut buf, vec![tup(1), tup(2), tup(3)]);
        assert_eq!(ts, vec![1, 2, 3]);
    }

    #[test]
    fn stable_for_equal_keys() {
        // Two tuples with the same timestamp keep arrival order.
        let a = StreamElement::tuple(Tuple::new(
            StreamId(1),
            TupleId(100),
            Timestamp(5),
            vec![Value::Int(1)],
        ));
        let b = StreamElement::tuple(Tuple::new(
            StreamId(1),
            TupleId(200),
            Timestamp(5),
            vec![Value::Int(2)],
        ));
        let mut buf = ReorderBuffer::new(3);
        let mut out = Vec::new();
        buf.push(a, &mut out);
        buf.push(b, &mut out);
        buf.flush(&mut out);
        let tids: Vec<u64> = out.iter().filter_map(|e| e.as_tuple().map(|t| t.tid.raw())).collect();
        assert_eq!(tids, vec![100, 200]);
    }

    #[test]
    fn proptest_reorder_within_slack_is_lossless_and_sorted() {
        use proptest::prelude::*;
        proptest!(ProptestConfig::with_cases(128), |(
            base in proptest::collection::vec(0u64..200, 1..50),
            slack_extra in 0u64..20,
        )| {
            // Build a sorted stream, then displace each element by at most
            // `d` positions; a slack covering the max timestamp displacement
            // must recover the exact sorted order with no drops.
            let mut ts: Vec<u64> = base.clone();
            ts.sort_unstable();
            // Local shuffle: swap adjacent pairs deterministically.
            let mut shuffled = ts.clone();
            for i in (0..shuffled.len().saturating_sub(1)).step_by(2) {
                shuffled.swap(i, i + 1);
            }
            let max_disorder = ts
                .windows(2)
                .map(|w| w[1] - w[0])
                .max()
                .unwrap_or(0);
            let mut buf = ReorderBuffer::new(max_disorder + slack_extra + 1);
            let mut out = Vec::new();
            for &t in &shuffled {
                buf.push(tup(t), &mut out);
            }
            buf.flush(&mut out);
            let released: Vec<u64> = out.iter().map(|e| e.ts().millis()).collect();
            prop_assert_eq!(released, ts);
            prop_assert_eq!(buf.dropped, 0);
        });
    }

    #[test]
    fn shuffled_stream_recovers_well_formed_order() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        // A well-formed stream, then locally shuffled within slack bounds.
        let mut elems = Vec::new();
        for seg in 0..10u64 {
            elems.push(sp(seg * 10 + 1));
            for i in 2..6 {
                elems.push(tup(seg * 10 + i));
            }
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        // Shuffle within chunks of 4 (disorder < 10 timestamp units).
        for chunk in elems.chunks_mut(4) {
            chunk.shuffle(&mut rng);
        }
        let mut buf = ReorderBuffer::new(20);
        let mut out = Vec::new();
        for e in elems {
            buf.push(e, &mut out);
        }
        buf.flush(&mut out);
        let ts: Vec<u64> = out.iter().map(|e| e.ts().millis()).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "released in timestamp order");
        assert_eq!(buf.dropped, 0);
        assert!(buf.is_empty());
        assert_eq!(buf.len(), 0);
    }
}
