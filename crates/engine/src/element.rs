//! Engine-internal stream elements.
//!
//! At ingestion the SP Analyzer resolves each *sp-batch* (consecutive raw
//! punctuations with one timestamp) into a [`SegmentPolicy`]: the policy
//! function governing the upcoming s-punctuated segment. Inside query plans,
//! streams are sequences of [`Element`]s — shared tuples interleaved with
//! shared segment policies. Keeping policies as separate elements (rather
//! than attaching one to every tuple) is the essence of the punctuation
//! mechanism: one policy element amortizes over every tuple of its segment.

use std::fmt;
use std::sync::Arc;
use std::sync::OnceLock;

use sp_core::{Policy, SharedPolicy, Timestamp, Tuple};
use sp_pattern::Pattern;

/// One entry of a segment policy: a tuple-id scope and the resolved policy
/// for tuples in that scope.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyEntry {
    /// Which tuple ids of the segment this entry governs.
    pub scope: Pattern,
    /// The resolved policy for those tuples.
    pub policy: SharedPolicy,
}

/// The resolved policy of one s-punctuated segment.
///
/// Typically a batch is a single tuple-granularity sp covering the whole
/// segment — the `uniform` fast path, where `policy_for` is a pointer clone.
/// Batches mixing several scoped sps fall back to per-tuple combination.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentPolicy {
    entries: Vec<PolicyEntry>,
    /// Set when a single entry covers every tuple id.
    uniform: Option<SharedPolicy>,
    /// The batch timestamp (all sps of a batch share it).
    pub ts: Timestamp,
}

/// The shared deny-all policy returned for unmatched tuples.
fn deny_all() -> &'static SharedPolicy {
    static DENY: OnceLock<SharedPolicy> = OnceLock::new();
    DENY.get_or_init(|| Arc::new(Policy::deny_all(Timestamp::ZERO)))
}

impl SegmentPolicy {
    /// A segment policy from resolved entries.
    #[must_use]
    pub fn new(entries: Vec<PolicyEntry>, ts: Timestamp) -> Self {
        let uniform = match entries.as_slice() {
            [single] if single.scope.is_match_all() => Some(single.policy.clone()),
            _ => None,
        };
        Self { entries, uniform, ts }
    }

    /// A uniform segment policy governing every tuple of the segment.
    #[must_use]
    pub fn uniform(policy: Policy) -> Self {
        let ts = policy.ts;
        let shared = Arc::new(policy);
        Self {
            entries: vec![PolicyEntry { scope: Pattern::match_all(), policy: shared.clone() }],
            uniform: Some(shared),
            ts,
        }
    }

    /// The deny-everything segment policy (denial-by-default).
    #[must_use]
    pub fn deny(ts: Timestamp) -> Self {
        Self { entries: Vec::new(), uniform: None, ts }
    }

    /// The uniform policy, if the segment has a single all-tuples entry.
    #[must_use]
    pub fn as_uniform(&self) -> Option<&SharedPolicy> {
        self.uniform.as_ref()
    }

    /// The policy entries.
    #[must_use]
    pub fn entries(&self) -> &[PolicyEntry] {
        &self.entries
    }

    /// Resolves the policy governing `tuple`.
    ///
    /// Uniform segments return the shared policy by pointer. Scoped
    /// segments combine (union) every entry matching the tuple id; a tuple
    /// matched by no entry gets the deny-all policy (§III-A).
    #[must_use]
    pub fn policy_for(&self, tuple: &Tuple) -> SharedPolicy {
        if let Some(p) = &self.uniform {
            return p.clone();
        }
        let tid = tuple.tid.raw();
        let mut matched: Option<SharedPolicy> = None;
        let mut combined: Option<Policy> = None;
        for entry in &self.entries {
            if !entry.scope.matches_u64(tid) {
                continue;
            }
            match (&matched, &mut combined) {
                (None, _) => matched = Some(entry.policy.clone()),
                (Some(first), None) => combined = Some(first.union(&entry.policy)),
                (_, Some(c)) => *c = c.union(&entry.policy),
            }
        }
        match (matched, combined) {
            (_, Some(c)) => Arc::new(c),
            (Some(single), None) => single,
            (None, None) => deny_all().clone(),
        }
    }

    /// A copy of this segment policy stamped with a different timestamp
    /// (entries are shared). Operators that *re-announce* a policy on a
    /// merged output stream (e.g. union, when the emitting side switches)
    /// use this to keep output punctuations timestamp-ordered; downstream
    /// operators discard punctuations that appear stale (§V-A override).
    #[must_use]
    pub fn with_ts(&self, ts: Timestamp) -> SegmentPolicy {
        SegmentPolicy { entries: self.entries.clone(), uniform: self.uniform.clone(), ts }
    }

    /// Borrow-based resolution for the hot path: identifies the policy
    /// governing `tuple` without touching reference counts.
    #[must_use]
    pub fn resolve_ref(&self, tuple: &Tuple) -> Resolved<'_> {
        if let Some(p) = &self.uniform {
            return Resolved::One(p);
        }
        let tid = tuple.tid.raw();
        let mut found: Option<&SharedPolicy> = None;
        for entry in &self.entries {
            if entry.scope.matches_u64(tid) {
                if found.is_some() {
                    return Resolved::Many;
                }
                found = Some(&entry.policy);
            }
        }
        match found {
            Some(p) => Resolved::One(p),
            None => Resolved::None,
        }
    }

    /// Transforms every entry's policy (projection remapping etc.),
    /// dropping entries whose policies become deny-all.
    #[must_use]
    pub fn map_policies(&self, f: impl Fn(&Policy) -> Policy) -> SegmentPolicy {
        let entries: Vec<PolicyEntry> = self
            .entries
            .iter()
            .filter_map(|e| {
                let p = f(&e.policy);
                if p.is_deny_all() {
                    None
                } else {
                    Some(PolicyEntry { scope: e.scope.clone(), policy: Arc::new(p) })
                }
            })
            .collect();
        SegmentPolicy::new(entries, self.ts)
    }

    /// True if no entry authorizes anyone.
    #[must_use]
    pub fn is_deny_all(&self) -> bool {
        self.entries.iter().all(|e| e.policy.is_deny_all())
    }

    /// Number of sps this segment policy stands for (cost accounting: each
    /// entry corresponds to one streamed punctuation).
    #[must_use]
    pub fn sp_count(&self) -> usize {
        self.entries.len().max(1)
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<SegmentPolicy>()
            + self
                .entries
                .iter()
                .map(|e| e.scope.source().len() + e.policy.mem_bytes())
                .sum::<usize>()
    }
}

/// Result of [`SegmentPolicy::resolve_ref`].
#[derive(Debug)]
pub enum Resolved<'a> {
    /// No entry governs the tuple: denial-by-default.
    None,
    /// Exactly one policy governs the tuple (borrowed, no refcount churn).
    One(&'a SharedPolicy),
    /// Several entries overlap; use [`SegmentPolicy::policy_for`] to
    /// combine them.
    Many,
}

/// An element flowing between operators.
#[derive(Debug, Clone, PartialEq)]
pub enum Element {
    /// A data tuple.
    Tuple(Arc<Tuple>),
    /// The policy for the upcoming segment.
    Policy(Arc<SegmentPolicy>),
}

impl Element {
    /// Wraps a tuple.
    #[must_use]
    pub fn tuple(t: Tuple) -> Self {
        Element::Tuple(Arc::new(t))
    }

    /// Wraps a segment policy.
    #[must_use]
    pub fn policy(p: SegmentPolicy) -> Self {
        Element::Policy(Arc::new(p))
    }

    /// The element timestamp.
    #[must_use]
    pub fn ts(&self) -> Timestamp {
        match self {
            Element::Tuple(t) => t.ts,
            Element::Policy(p) => p.ts,
        }
    }

    /// The tuple, if any.
    #[must_use]
    pub fn as_tuple(&self) -> Option<&Arc<Tuple>> {
        match self {
            Element::Tuple(t) => Some(t),
            Element::Policy(_) => None,
        }
    }

    /// The policy, if any.
    #[must_use]
    pub fn as_policy(&self) -> Option<&Arc<SegmentPolicy>> {
        match self {
            Element::Policy(p) => Some(p),
            Element::Tuple(_) => None,
        }
    }

    /// True for tuples.
    #[must_use]
    pub fn is_tuple(&self) -> bool {
        matches!(self, Element::Tuple(_))
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Element::Tuple(t) => write!(f, "{t}"),
            Element::Policy(p) => write!(f, "<policy @{} ({} entries)>", p.ts, p.entries().len()),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{RoleId, RoleSet, StreamId, TupleId, Value};

    fn tup(tid: u64) -> Tuple {
        Tuple::new(StreamId(0), TupleId(tid), Timestamp(1), vec![Value::Int(0)])
    }

    fn policy(roles: &[u32], ts: u64) -> Policy {
        Policy::tuple_level(roles.iter().map(|&r| RoleId(r)).collect(), Timestamp(ts))
    }

    #[test]
    fn uniform_fast_path_shares_pointer() {
        let seg = SegmentPolicy::uniform(policy(&[1], 5));
        let a = seg.policy_for(&tup(1));
        let b = seg.policy_for(&tup(2));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(seg.as_uniform().is_some());
        assert_eq!(seg.ts, Timestamp(5));
        assert_eq!(seg.sp_count(), 1);
    }

    #[test]
    fn scoped_segment_denies_unmatched() {
        let seg = SegmentPolicy::new(
            vec![PolicyEntry {
                scope: Pattern::numeric_range(10, 20),
                policy: Arc::new(policy(&[1], 1)),
            }],
            Timestamp(1),
        );
        assert!(seg.as_uniform().is_none());
        let inside = seg.policy_for(&tup(15));
        assert!(inside.allows(&RoleSet::from([1])));
        let outside = seg.policy_for(&tup(25));
        assert!(outside.is_deny_all());
    }

    #[test]
    fn overlapping_scopes_union() {
        let seg = SegmentPolicy::new(
            vec![
                PolicyEntry {
                    scope: Pattern::numeric_range(0, 50),
                    policy: Arc::new(policy(&[1], 1)),
                },
                PolicyEntry {
                    scope: Pattern::numeric_range(40, 90),
                    policy: Arc::new(policy(&[2], 1)),
                },
            ],
            Timestamp(1),
        );
        let both = seg.policy_for(&tup(45));
        assert!(both.allows(&RoleSet::from([1])) && both.allows(&RoleSet::from([2])));
        let only_first = seg.policy_for(&tup(10));
        assert!(only_first.allows(&RoleSet::from([1])));
        assert!(!only_first.allows(&RoleSet::from([2])));
    }

    #[test]
    fn deny_segment() {
        let seg = SegmentPolicy::deny(Timestamp(3));
        assert!(seg.is_deny_all());
        assert!(seg.policy_for(&tup(1)).is_deny_all());
    }

    #[test]
    fn map_policies_drops_deny_all() {
        let seg = SegmentPolicy::uniform(policy(&[1], 1));
        let emptied = seg.map_policies(|p| {
            let mut q = p.clone();
            q.revoke(&RoleSet::from([1]));
            q
        });
        assert!(emptied.is_deny_all());
        assert!(emptied.entries().is_empty());
    }

    #[test]
    fn element_accessors() {
        let e = Element::tuple(tup(1));
        assert!(e.is_tuple());
        assert_eq!(e.ts(), Timestamp(1));
        assert!(e.as_policy().is_none());
        let p = Element::policy(SegmentPolicy::uniform(policy(&[1], 9)));
        assert_eq!(p.ts(), Timestamp(9));
        assert!(p.as_tuple().is_none());
        assert!(p.to_string().contains("policy"));
    }
}
