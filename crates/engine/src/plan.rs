//! Physical query plans and the pipelined executor.
//!
//! A plan is a DAG of operators fed by registered streams through
//! per-stream [`SpAnalyzer`]s (Fig. 1). Plans are built with
//! [`PlanBuilder`]; shared subplans (an operator output feeding several
//! consumers — the multi-query sharing of Fig. 5) are expressed by adding
//! several edges from one node. Execution is push-based and deterministic:
//! [`Executor::push`] runs an arriving raw element through the analyzer and
//! then drains a FIFO work queue of `(target, batch)` items.
//!
//! **Batch execution.** The queue moves [`ElementBatch`]es — contiguous
//! kind-homogeneous runs of elements — rather than single elements. Runs
//! are formed by coalescing: a routed element joins the queue's tail batch
//! when the tail targets the same destination and holds the same element
//! kind, and otherwise starts a new batch. Coalescing only ever merges
//! *adjacent* queue entries, which preserves the tuple-at-a-time engine's
//! per-operator input order exactly (adjacent same-target entries were
//! processed back-to-back anyway, and their outputs are appended to the
//! queue tail in the same order either way) — so released tuples, final
//! policy tables, snapshots, and audit trails are byte-identical to
//! per-element execution. Fan-out to several consumers routes
//! element-major (each element to every target before the next element),
//! which makes coalescing degrade to singleton batches across a split and
//! keeps cross-branch interleaving at downstream binary merges unchanged.
//! [`Executor::push_all`] additionally *defers* drains across inputs on
//! binary-free plans (where per-operator input order alone fixes every
//! observable), letting whole segments accumulate into one run between
//! punctuation cuts; [`MAX_DEFERRED_INPUTS`] bounds queue growth.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use sp_core::{RoleCatalog, Schema, StreamElement, StreamId};

use crate::analyzer::SpAnalyzer;
use crate::batch::ElementBatch;
use crate::element::Element;
use crate::error::EngineError;
use crate::operator::{Emitter, Operator};
use crate::ops::sink::Sink;
use crate::stats::OperatorStats;
use crate::telemetry::{
    merge_recorders, span::span, AuditOp, AuditTrail, Histogram, MetricsRegistry, SpanSheet,
    TelemetryConfig,
};

/// Reference to a plan node (an operator added to a builder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(usize);

/// Reference to a registered source stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceRef(usize);

/// Reference to a sink (one registered query's result collector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SinkRef(usize);

impl SinkRef {
    /// The sink's index within the plan (stable across executors built
    /// from the same builder shape).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Upper bound on raw inputs staged between drains by
/// [`Executor::push_all`] in deferred-batching mode, bounding work-queue
/// growth. One segment of the paper's workloads (an sp-batch plus its
/// governed tuples) comfortably fits, so segment runs still coalesce
/// whole.
pub const MAX_DEFERRED_INPUTS: usize = 256;

/// An edge destination inside the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Target {
    /// Operator node index and input port.
    Node(usize, usize),
    /// Sink index.
    Sink(usize),
}

/// Either a source or a node — anything that can feed another operator.
#[derive(Debug, Clone, Copy)]
pub enum Upstream {
    /// A registered stream source.
    Source(SourceRef),
    /// An operator node.
    Node(NodeRef),
}

impl From<SourceRef> for Upstream {
    fn from(s: SourceRef) -> Self {
        Upstream::Source(s)
    }
}

impl From<NodeRef> for Upstream {
    fn from(n: NodeRef) -> Self {
        Upstream::Node(n)
    }
}

pub(crate) struct Node {
    pub(crate) op: Box<dyn Operator>,
    pub(crate) outputs: Vec<Target>,
    /// Wall time spent inside `process`, measured by the executor.
    pub(crate) elapsed: Duration,
}

pub(crate) struct Source {
    pub(crate) stream: StreamId,
    pub(crate) analyzer: SpAnalyzer,
    pub(crate) outputs: Vec<Target>,
}

/// Builds an executable plan.
pub struct PlanBuilder {
    catalog: Arc<RoleCatalog>,
    pub(crate) nodes: Vec<Node>,
    pub(crate) sources: Vec<Source>,
    pub(crate) sinks: Vec<Sink>,
    telemetry: TelemetryConfig,
}

impl PlanBuilder {
    /// A builder using the given role catalog for punctuation resolution.
    #[must_use]
    pub fn new(catalog: Arc<RoleCatalog>) -> Self {
        Self {
            catalog,
            nodes: Vec::new(),
            sources: Vec::new(),
            sinks: Vec::new(),
            telemetry: TelemetryConfig::disabled(),
        }
    }

    /// Configures telemetry (audit trail + metrics) for the built plan.
    /// Applies to every source and node, including ones added after this
    /// call. Off by default.
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        self.telemetry = config;
    }

    /// Propagates the audit and span capacities to every analyzer and
    /// operator. Runs at finalization so late-added nodes are covered too.
    fn apply_telemetry(&mut self) {
        if self.telemetry.audit_capacity > 0 {
            for source in &mut self.sources {
                source.analyzer.set_audit(self.telemetry.audit_capacity);
            }
            for node in &mut self.nodes {
                node.op.set_audit(self.telemetry.audit_capacity);
            }
        }
        if self.telemetry.span_capacity > 0 {
            for source in &mut self.sources {
                source.analyzer.set_spans(self.telemetry.span_capacity);
            }
            for node in &mut self.nodes {
                node.op.set_spans(self.telemetry.span_capacity);
            }
        }
    }

    /// Registers a source stream.
    pub fn source(&mut self, stream: StreamId, schema: Arc<Schema>) -> SourceRef {
        self.sources.push(Source {
            stream,
            analyzer: SpAnalyzer::new(schema, self.catalog.clone()),
            outputs: Vec::new(),
        });
        SourceRef(self.sources.len() - 1)
    }

    /// Installs a server-side policy on a source (see
    /// [`SpAnalyzer::set_server_policy`]).
    pub fn set_server_policy(&mut self, source: SourceRef, policy: Option<sp_core::Policy>) {
        self.sources[source.0].analyzer.set_server_policy(policy);
    }

    /// Enables incremental-policy mode on a source (see
    /// [`SpAnalyzer::set_incremental`]).
    pub fn set_incremental(&mut self, source: SourceRef, incremental: bool) {
        self.sources[source.0].analyzer.set_incremental(incremental);
    }

    /// Switches a source into hardened fail-closed mode (see
    /// [`SpAnalyzer::harden`]): uncovered tuples are quarantined, late
    /// sp-batches discarded.
    pub fn harden_source(&mut self, source: SourceRef, policy: crate::QuarantinePolicy) {
        self.sources[source.0].analyzer.harden(policy);
    }

    /// Adds a unary operator downstream of `input`.
    pub fn add(&mut self, op: impl Operator + 'static, input: impl Into<Upstream>) -> NodeRef {
        debug_assert_eq!(op.arity(), 1, "use add_binary for binary operators");
        let node = NodeRef(self.nodes.len());
        self.nodes.push(Node { op: Box::new(op), outputs: Vec::new(), elapsed: Duration::ZERO });
        self.connect(input.into(), Target::Node(node.0, 0));
        node
    }

    /// Adds a binary operator with the given left (port 0) and right
    /// (port 1) inputs.
    pub fn add_binary(
        &mut self,
        op: impl Operator + 'static,
        left: impl Into<Upstream>,
        right: impl Into<Upstream>,
    ) -> NodeRef {
        debug_assert_eq!(op.arity(), 2, "operator is not binary");
        let node = NodeRef(self.nodes.len());
        self.nodes.push(Node { op: Box::new(op), outputs: Vec::new(), elapsed: Duration::ZERO });
        self.connect(left.into(), Target::Node(node.0, 0));
        self.connect(right.into(), Target::Node(node.0, 1));
        node
    }

    /// Terminates a branch with a result sink (one per registered query).
    pub fn sink(&mut self, input: impl Into<Upstream>) -> SinkRef {
        self.sinks.push(Sink::new());
        let sink = SinkRef(self.sinks.len() - 1);
        self.connect(input.into(), Target::Sink(sink.0));
        sink
    }

    fn connect(&mut self, from: Upstream, to: Target) {
        match from {
            Upstream::Source(s) => self.sources[s.0].outputs.push(to),
            Upstream::Node(n) => self.nodes[n.0].outputs.push(to),
        }
    }

    /// Decomposes the builder for alternative runtimes (parallel executor).
    pub(crate) fn into_parts(mut self) -> (Vec<Node>, Vec<Source>, Vec<Sink>, TelemetryConfig) {
        self.apply_telemetry();
        (self.nodes, self.sources, self.sinks, self.telemetry)
    }

    /// Finalizes the plan into an executor.
    #[must_use]
    pub fn build(mut self) -> Executor {
        self.apply_telemetry();
        let mut by_stream: HashMap<StreamId, Vec<usize>> = HashMap::new();
        for (i, s) in self.sources.iter().enumerate() {
            by_stream.entry(s.stream).or_default().push(i);
        }
        let latency = vec![Histogram::new(); self.nodes.len()];
        let has_binary = self.nodes.iter().any(|n| n.op.arity() > 1);
        Executor {
            nodes: self.nodes,
            sources: self.sources,
            sinks: self.sinks,
            by_stream,
            queue: VecDeque::with_capacity(64),
            staged: Vec::with_capacity(16),
            emitter: Emitter::with_capacity(64),
            telemetry: self.telemetry,
            latency,
            queue_depth: Histogram::new(),
            batching: true,
            has_binary,
        }
    }
}

/// Routes one emitted element to a target: coalesce into the queue's tail
/// batch when the tail has the same target and element kind, else start a
/// new singleton batch. Merging only ever touches the *tail*, so the
/// per-target element order is exactly the order routed here.
fn route(
    queue: &mut VecDeque<(Target, ElementBatch)>,
    target: Target,
    elem: Element,
    coalesce: bool,
) {
    if coalesce {
        if let Some((t, batch)) = queue.back_mut() {
            if *t == target && batch.accepts(&elem) {
                batch.push(elem);
                return;
            }
        }
    }
    queue.push_back((target, ElementBatch::single(elem)));
}

/// Routes a run of elements to every target, element-major: each element
/// visits all targets before the next element, cloning for all targets
/// but the last (which takes the element by move). Element-major order
/// keeps cross-branch interleaving at downstream merges identical to
/// tuple-at-a-time routing; across a multi-target split, tail coalescing
/// then naturally degrades to singleton batches, while single-consumer
/// chains — the common case — coalesce whole runs.
fn enqueue_fanout(
    queue: &mut VecDeque<(Target, ElementBatch)>,
    targets: &[Target],
    elems: impl Iterator<Item = Element>,
    coalesce: bool,
) {
    let Some((&last, rest)) = targets.split_last() else {
        return;
    };
    for elem in elems {
        for &t in rest {
            route(queue, t, elem.clone(), coalesce);
        }
        route(queue, last, elem, coalesce);
    }
}

/// The pipelined plan executor.
pub struct Executor {
    nodes: Vec<Node>,
    sources: Vec<Source>,
    sinks: Vec<Sink>,
    by_stream: HashMap<StreamId, Vec<usize>>,
    queue: VecDeque<(Target, ElementBatch)>,
    /// Reusable analyzer-output scratch (avoids a fresh allocation per push).
    staged: Vec<Element>,
    /// Reusable operator-output scratch.
    emitter: Emitter,
    telemetry: TelemetryConfig,
    /// Per-node `process` latency in nanoseconds (metrics mode only).
    latency: Vec<Histogram>,
    /// Work-queue depth sampled at each dequeue (metrics mode only).
    queue_depth: Histogram,
    /// Batch coalescing + deferred draining enabled (default). Disabled,
    /// the executor routes singleton batches and drains eagerly — the
    /// tuple-at-a-time reference mode.
    batching: bool,
    /// Whether any node is binary. Binary merges observe the *interleaving*
    /// of their two input sequences, so deferred draining is only safe on
    /// binary-free plans, where each operator's input sequence alone
    /// determines every observable.
    has_binary: bool,
}

impl Executor {
    /// Feeds one raw stream element into every source registered for its
    /// stream and runs the plan to quiescence.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] an operator reports; pending
    /// work queued behind the failing element is discarded (fail-closed:
    /// nothing is released past a failed operator).
    pub fn push(&mut self, stream: StreamId, elem: StreamElement) -> Result<(), EngineError> {
        let _span = span("executor.push");
        self.stage(stream, elem);
        self.drain()
    }

    /// Feeds a whole batch, then drains.
    ///
    /// On binary-free plans with batching enabled, inputs are *staged*
    /// and the plan drained only every [`MAX_DEFERRED_INPUTS`] inputs (and
    /// once at the end), so whole segment runs coalesce into single
    /// batches. This is output-equivalent to draining per input: without a
    /// binary merge, each operator's input sequence — which deferral
    /// preserves exactly — determines every observable. Plans with a
    /// binary node drain per input, where within-push coalescing still
    /// applies.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first [`EngineError`]. In deferred mode
    /// the failure discards all staged work, including outputs of inputs
    /// staged before the failing one — strictly more fail-closed than the
    /// per-input path (never releases more).
    pub fn push_all(
        &mut self,
        items: impl IntoIterator<Item = (StreamId, StreamElement)>,
    ) -> Result<(), EngineError> {
        if !self.batching || self.has_binary {
            for (stream, elem) in items {
                self.push(stream, elem)?;
            }
            return Ok(());
        }
        let _span = span("executor.push_all");
        let mut pending = 0usize;
        for (stream, elem) in items {
            self.stage(stream, elem);
            pending += 1;
            if pending >= MAX_DEFERRED_INPUTS {
                self.drain()?;
                pending = 0;
            }
        }
        self.drain()
    }

    /// Enables or disables batch coalescing and deferred draining (on by
    /// default). Disabled, the executor routes singleton batches through
    /// `process_batch` and drains after every input — the tuple-at-a-time
    /// reference mode the differential equivalence suite and the `fig7 b`
    /// benchmark baseline compare against.
    pub fn set_batching(&mut self, batching: bool) {
        self.batching = batching;
    }

    /// Runs one raw element through the analyzers of every source
    /// registered for its stream and routes the resolved elements into the
    /// work queue (no draining). The raw element is cloned only for
    /// multiply-registered streams: the last source takes it by move.
    fn stage(&mut self, stream: StreamId, elem: StreamElement) {
        let Some(source_ids) = self.by_stream.get(&stream) else {
            return;
        };
        let Some((&last_sid, rest)) = source_ids.split_last() else {
            return;
        };
        let mut staged = std::mem::take(&mut self.staged);
        for &sid in rest {
            let source = &mut self.sources[sid];
            source.analyzer.push(elem.clone(), &mut staged);
            enqueue_fanout(&mut self.queue, &source.outputs, staged.drain(..), self.batching);
        }
        let source = &mut self.sources[last_sid];
        source.analyzer.push(elem, &mut staged);
        enqueue_fanout(&mut self.queue, &source.outputs, staged.drain(..), self.batching);
        self.staged = staged;
    }

    fn drain(&mut self) -> Result<(), EngineError> {
        let mut emitter = std::mem::take(&mut self.emitter);
        while let Some((target, batch)) = self.queue.pop_front() {
            match target {
                Target::Sink(i) => {
                    let result = self.sinks[i].process_batch(0, batch, &mut emitter);
                    debug_assert!(emitter.is_empty(), "sinks do not emit");
                    if let Err(e) = result {
                        self.queue.clear();
                        let _ = emitter.take();
                        self.emitter = emitter;
                        return Err(e);
                    }
                }
                Target::Node(n, port) => {
                    let node = &mut self.nodes[n];
                    let len = batch.len() as u64;
                    let start = std::time::Instant::now();
                    let result = node.op.process_batch(port, batch, &mut emitter);
                    let elapsed = start.elapsed();
                    node.elapsed += elapsed;
                    if self.telemetry.metrics {
                        // One clock pair per batch; the histogram records
                        // the per-element average `len` times so counts
                        // still mean "elements processed".
                        #[allow(clippy::cast_possible_truncation)] // < 585 years
                        self.latency[n].record_n(elapsed.as_nanos() as u64 / len.max(1), len);
                        self.queue_depth.record(self.queue.len() as u64);
                    }
                    if let Err(e) = result {
                        self.queue.clear();
                        let _ = emitter.take();
                        self.emitter = emitter;
                        return Err(e);
                    }
                    let outputs = &self.nodes[n].outputs;
                    enqueue_fanout(&mut self.queue, outputs, emitter.drain(), self.batching);
                }
            }
        }
        self.emitter = emitter;
        Ok(())
    }

    /// The sink's collected results.
    #[must_use]
    pub fn sink(&self, s: SinkRef) -> &Sink {
        &self.sinks[s.0]
    }

    /// Mutable sink access (e.g. to clear between bench phases).
    pub fn sink_mut(&mut self, s: SinkRef) -> &mut Sink {
        &mut self.sinks[s.0]
    }

    /// A node's cost counters.
    #[must_use]
    pub fn stats(&self, n: NodeRef) -> &OperatorStats {
        self.nodes[n.0].op.stats()
    }

    /// Wall time the executor spent inside a node's `process`.
    #[must_use]
    pub fn elapsed(&self, n: NodeRef) -> Duration {
        self.nodes[n.0].elapsed
    }

    /// A node's state footprint in bytes.
    #[must_use]
    pub fn state_mem_bytes(&self, n: NodeRef) -> usize {
        self.nodes[n.0].op.state_mem_bytes()
    }

    /// Total state footprint across all operators.
    #[must_use]
    pub fn total_state_mem_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.op.state_mem_bytes()).sum()
    }

    /// Access to a source's analyzer statistics.
    #[must_use]
    pub fn analyzer(&self, s: SourceRef) -> &SpAnalyzer {
        &self.sources[s.0].analyzer
    }

    /// Flushes any trailing sp-batches held by the analyzers and runs the
    /// plan to quiescence, so end-of-stream policies are not lost.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] an operator reports.
    pub fn finish(&mut self) -> Result<(), EngineError> {
        let _span = span("executor.finish");
        let coalesce = self.batching;
        let mut staged = std::mem::take(&mut self.staged);
        for source in &mut self.sources {
            source.analyzer.flush(&mut staged);
            enqueue_fanout(&mut self.queue, &source.outputs, staged.drain(..), coalesce);
        }
        self.staged = staged;
        self.drain()
    }

    /// Routes one pre-analyzed batch into the plan at source slot `idx`,
    /// bypassing the sp-analyzer, and runs it to completion. Shard
    /// replicas use this: the sharded coordinator runs the analyzers
    /// once, centrally, and ships already-analyzed elements to shards,
    /// so per-shard analyzer state cannot exist (let alone diverge).
    pub(crate) fn inject(&mut self, idx: usize, batch: ElementBatch) -> Result<(), EngineError> {
        let coalesce = self.batching;
        enqueue_fanout(&mut self.queue, &self.sources[idx].outputs, batch.into_iter(), coalesce);
        self.drain()
    }

    /// Number of source slots (shard plumbing).
    pub(crate) fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Number of plan nodes (shard plumbing).
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The operator at node slot `i` (shard plumbing: recorder reads).
    pub(crate) fn node_op(&self, i: usize) -> &dyn Operator {
        self.nodes[i].op.as_ref()
    }

    /// Drains sink `i`'s collected output accumulated since the last
    /// take (shard plumbing: output increments for the exchange merge).
    pub(crate) fn take_sink_elements(&mut self, i: usize) -> Vec<Element> {
        self.sinks[i].take_elements()
    }

    /// Number of sink slots (shard plumbing).
    pub(crate) fn sink_count(&self) -> usize {
        self.sinks.len()
    }

    /// Fail-closed degradation counters summed over every source analyzer
    /// and every degradation-participating operator (load shedders).
    #[must_use]
    pub fn degradation(&self) -> crate::stats::DegradationStats {
        let mut total = crate::stats::DegradationStats::new();
        for source in &self.sources {
            total.absorb(&source.analyzer.degradation());
        }
        for node in &self.nodes {
            if let Some(d) = node.op.degradation() {
                total.absorb(&d);
            }
        }
        total
    }

    /// Arms audit recording on every analyzer and every auditing operator.
    ///
    /// Recorders start empty; the supervisor calls this after each rebuild
    /// or restore so the flight recorder never replays pre-crash history.
    pub fn set_audit(&mut self, capacity: usize) {
        if capacity == 0 {
            return;
        }
        for source in &mut self.sources {
            source.analyzer.set_audit(capacity);
        }
        for node in &mut self.nodes {
            node.op.set_audit(capacity);
        }
    }

    /// Arms sp-trace span recording (and enforcement-lag tracking) on
    /// every analyzer and every span-recording operator. Like audit
    /// recorders, span recorders start empty after a rebuild or restore.
    pub fn set_spans(&mut self, capacity: usize) {
        if capacity == 0 {
            return;
        }
        for source in &mut self.sources {
            source.analyzer.set_spans(capacity);
        }
        for node in &mut self.nodes {
            node.op.set_spans(capacity);
        }
    }

    /// Assembles the plan-wide span sheet in canonical section order:
    /// analyzers (by source index) first, then operators (by node index).
    /// Sections whose recorder is disabled are omitted, so a sequential
    /// run and a pipeline-parallel run of the same plan yield
    /// byte-identical [`SpanSheet::encode_to_vec`] output.
    #[must_use]
    pub fn span_sheet(&self) -> SpanSheet {
        #[allow(clippy::cast_possible_truncation)] // plan slots fit u32
        merge_recorders(
            self.sources
                .iter()
                .enumerate()
                .map(|(i, s)| (AuditOp::Source(i as u32), s.analyzer.spans().cloned()))
                .chain(
                    self.nodes
                        .iter()
                        .enumerate()
                        .map(|(i, n)| (AuditOp::Node(i as u32), n.op.spans().cloned())),
                ),
        )
    }

    /// Assembles the plan-wide audit trail in canonical section order:
    /// analyzers (by source index) first, then operators (by node index).
    ///
    /// Sections whose recorder is disabled are omitted, so a sequential run
    /// and a pipeline-parallel run of the same plan yield byte-identical
    /// [`AuditTrail::encode_to_vec`] output.
    #[must_use]
    pub fn audit_trail(&self) -> AuditTrail {
        #[allow(clippy::cast_possible_truncation)] // plan slots fit u32
        merge_recorders(
            self.sources
                .iter()
                .enumerate()
                .map(|(i, s)| (AuditOp::Source(i as u32), s.analyzer.audit().cloned()))
                .chain(
                    self.nodes
                        .iter()
                        .enumerate()
                        .map(|(i, n)| (AuditOp::Node(i as u32), n.op.audit().cloned())),
                ),
        )
    }

    /// Builds a point-in-time metrics snapshot: per-operator tuple/sp
    /// counters, fail-closed degradation counters, audit-trail pressure,
    /// and — when metrics collection is enabled — per-node process-latency
    /// and queue-depth histograms.
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let labels = format!("op=\"{}\",node=\"{i}\"", node.op.name());
            let s = node.op.stats();
            reg.add_counter(
                "sp_tuples_in_total",
                "Tuples entering an operator",
                &labels,
                s.tuples_in,
            );
            reg.add_counter(
                "sp_tuples_out_total",
                "Tuples emitted by an operator",
                &labels,
                s.tuples_out,
            );
            reg.add_counter(
                "sp_sps_in_total",
                "Security punctuations entering an operator",
                &labels,
                s.sps_in,
            );
            reg.add_counter(
                "sp_sps_out_total",
                "Security punctuations emitted by an operator",
                &labels,
                s.sps_out,
            );
            reg.add_counter(
                "sp_tuples_shielded_total",
                "Tuples suppressed by the Security Shield",
                &labels,
                s.tuples_shielded,
            );
            if self.telemetry.metrics {
                reg.merge_histogram(
                    "sp_operator_latency_ns",
                    "Per-call operator process latency in nanoseconds",
                    &labels,
                    &self.latency[i],
                );
            }
            if let Some(lag) = node.op.lag() {
                // Paper-grounded enforcement-lag windows, in stream time:
                // how far behind the stream clock each sp took effect, and
                // how wide the "security hole" between a revocation and
                // the first suppressed tuple was.
                reg.merge_histogram(
                    "sp_enforce_lag_ms",
                    "Stream-time lag between sp arrival and shield enforcement (0 = immediate enforcement)",
                    &labels,
                    lag.enforce(),
                );
                reg.merge_histogram(
                    "sp_first_release_lag_ms",
                    "Stream-time lag between an sp taking effect and the first tuple it released",
                    &labels,
                    lag.release(),
                );
                reg.merge_histogram(
                    "sp_suppress_lag_ms",
                    "Stream-time lag between a revocation taking effect and the first tuple it suppressed (security-hole width)",
                    &labels,
                    lag.suppress(),
                );
            }
        }
        if self.telemetry.metrics {
            reg.merge_histogram(
                "sp_queue_depth",
                "Executor work-queue depth sampled at each dequeue",
                "",
                &self.queue_depth,
            );
        }
        for (kind, value) in self.degradation().named_counters() {
            reg.add_counter(
                "sp_degradation_total",
                "Fail-closed degradation counters (kind label selects the counter)",
                &format!("kind=\"{kind}\""),
                value,
            );
        }
        let trail = self.audit_trail();
        if trail.sections().next().is_some() {
            reg.add_counter(
                "sp_audit_records",
                "Audit records currently held by flight recorders",
                "",
                trail.len() as u64,
            );
            reg.add_counter(
                "sp_audit_evicted_total",
                "Audit records evicted from bounded flight recorders",
                "",
                trail.evicted(),
            );
        }
        let sheet = self.span_sheet();
        if !sheet.is_empty() || sheet.evicted() > 0 {
            reg.add_counter(
                "sp_span_records",
                "sp-trace spans currently held by span recorders",
                "",
                sheet.len() as u64,
            );
            reg.add_counter(
                "sp_spans_evicted_total",
                "sp-trace spans evicted from bounded span recorders",
                "",
                sheet.evicted(),
            );
        }
        reg
    }

    /// The metrics snapshot rendered in Prometheus text exposition format.
    #[must_use]
    pub fn metrics_prometheus(&self) -> String {
        self.metrics().render_prometheus()
    }

    /// The metrics snapshot rendered as a JSON document.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.metrics().render_json()
    }

    /// Takes a consistent cut of the whole plan at an epoch boundary. Must
    /// be called at quiescence (no queued work): the sequential executor
    /// runs every pushed element to completion, so any point between
    /// `push` calls is a consistent cut.
    #[must_use]
    pub fn checkpoint(&self, epoch: u64, input_pos: u64) -> crate::checkpoint::Checkpoint {
        let _span = span("executor.checkpoint");
        debug_assert!(self.queue.is_empty(), "checkpoint requires quiescence");
        let mut analyzers = Vec::with_capacity(self.sources.len());
        for source in &self.sources {
            let mut buf = Vec::new();
            source.analyzer.snapshot(&mut buf);
            analyzers.push(buf);
        }
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let mut buf = Vec::new();
            node.op.snapshot(&mut buf);
            nodes.push(buf);
        }
        let mut sinks = Vec::with_capacity(self.sinks.len());
        for sink in &self.sinks {
            let mut buf = Vec::new();
            Operator::snapshot(sink, &mut buf);
            sinks.push(buf);
        }
        crate::checkpoint::Checkpoint { epoch, input_pos, analyzers, nodes, sinks }
    }

    /// Restores every analyzer, operator, and sink from a checkpoint taken
    /// on a plan built by the same builder.
    ///
    /// # Errors
    ///
    /// Fails closed ([`EngineError::CheckpointCorrupt`]) when the
    /// checkpoint's shape does not match this plan or any section fails to
    /// decode; the executor must then be discarded — state may be partially
    /// restored.
    pub fn restore(&mut self, ckpt: &crate::checkpoint::Checkpoint) -> Result<(), EngineError> {
        let _span = span("executor.restore");
        if ckpt.analyzers.len() != self.sources.len()
            || ckpt.nodes.len() != self.nodes.len()
            || ckpt.sinks.len() != self.sinks.len()
        {
            return Err(EngineError::corrupt(
                "plan",
                format!(
                    "checkpoint shape {}/{}/{} does not match plan {}/{}/{}",
                    ckpt.analyzers.len(),
                    ckpt.nodes.len(),
                    ckpt.sinks.len(),
                    self.sources.len(),
                    self.nodes.len(),
                    self.sinks.len(),
                ),
            ));
        }
        self.queue.clear();
        for (source, bytes) in self.sources.iter_mut().zip(&ckpt.analyzers) {
            source.analyzer.restore(bytes)?;
        }
        for (node, bytes) in self.nodes.iter_mut().zip(&ckpt.nodes) {
            node.op.restore(bytes)?;
        }
        for (sink, bytes) in self.sinks.iter_mut().zip(&ckpt.sinks) {
            Operator::restore(sink, bytes)?;
        }
        Ok(())
    }

    /// Replaces the security predicate of the operator at `n` (runtime
    /// role reassignment, §IX future work). Returns false if that operator
    /// has no predicate.
    pub fn update_predicate(&mut self, n: NodeRef, roles: &sp_core::RoleSet) -> bool {
        self.nodes[n.0].op.update_predicate(roles)
    }

    /// A human-readable per-operator report: counts, shielded tuples,
    /// elapsed wall time and state footprint — the runtime introspection a
    /// DSMS operator console would show.
    #[must_use]
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<3} {:<10} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10} {:>10}",
            "#",
            "op",
            "tuples in",
            "tuples out",
            "sps in",
            "sps out",
            "shielded",
            "time µs",
            "state B"
        );
        for (i, node) in self.nodes.iter().enumerate() {
            let s = node.op.stats();
            let _ = writeln!(
                out,
                "{:<3} {:<10} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10.0} {:>10}",
                i,
                node.op.name(),
                s.tuples_in,
                s.tuples_out,
                s.sps_in,
                s.sps_out,
                s.tuples_shielded,
                node.elapsed.as_secs_f64() * 1e6,
                node.op.state_mem_bytes(),
            );
        }
        for (i, sink) in self.sinks.iter().enumerate() {
            let s = sink.stats();
            let _ = writeln!(
                out,
                "q{:<2} {:<10} {:>10} {:>10} {:>8} {:>8}",
                i, "sink", s.tuples_in, "-", s.sps_in, "-"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::ops::select::Select;
    use crate::ops::shield::SecurityShield;
    use sp_core::{
        Policy, RoleSet, SecurityPunctuation, Timestamp, Tuple, TupleId, Value, ValueType,
    };

    fn schema() -> Arc<Schema> {
        Schema::of("loc", &[("id", ValueType::Int), ("x", ValueType::Int)])
    }

    fn catalog() -> Arc<RoleCatalog> {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(8);
        Arc::new(c)
    }

    fn tup(tid: u64, ts: u64, x: i64) -> StreamElement {
        StreamElement::tuple(Tuple::new(
            StreamId(1),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64), Value::Int(x)],
        ))
    }

    fn sp(roles: &[u32], ts: u64) -> StreamElement {
        StreamElement::punctuation(SecurityPunctuation::grant_all(
            roles.iter().map(|&r| sp_core::RoleId(r)).collect(),
            Timestamp(ts),
        ))
    }

    #[test]
    fn select_shield_pipeline() {
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let sel = b
            .add(Select::new(Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(5)))), src);
        let ss = b.add(SecurityShield::new(RoleSet::from([1])), sel);
        let sink = b.sink(ss);
        let mut exec = b.build();

        exec.push_all([
            (StreamId(1), sp(&[1], 0)),
            (StreamId(1), tup(1, 1, 10)), // passes both
            (StreamId(1), tup(2, 2, 3)),  // filtered by select
            (StreamId(1), sp(&[2], 3)),
            (StreamId(1), tup(3, 4, 10)), // shielded
        ])
        .unwrap();

        let tuples: Vec<u64> = exec.sink(sink).tuples().map(|t| t.tid.raw()).collect();
        assert_eq!(tuples, vec![1]);
        assert!(exec.elapsed(ss) > Duration::ZERO);
        assert!(exec.stats(ss).tuples_in >= 1);
    }

    #[test]
    fn shared_subplan_feeds_multiple_queries() {
        // One select shared by two queries with different access rights
        // (Fig. 5): SS operators placed per-query after the shared part.
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let shared = b
            .add(Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))), src);
        let ss1 = b.add(SecurityShield::new(RoleSet::from([1])), shared);
        let ss2 = b.add(SecurityShield::new(RoleSet::from([2])), shared);
        let q1 = b.sink(ss1);
        let q2 = b.sink(ss2);
        let mut exec = b.build();

        exec.push_all([
            (StreamId(1), sp(&[1], 0)),
            (StreamId(1), tup(1, 1, 1)),
            (StreamId(1), sp(&[2], 2)),
            (StreamId(1), tup(2, 3, 1)),
            (StreamId(1), sp(&[1, 2], 4)),
            (StreamId(1), tup(3, 5, 1)),
        ])
        .unwrap();

        let q1_ids: Vec<u64> = exec.sink(q1).tuples().map(|t| t.tid.raw()).collect();
        let q2_ids: Vec<u64> = exec.sink(q2).tuples().map(|t| t.tid.raw()).collect();
        assert_eq!(q1_ids, vec![1, 3]);
        assert_eq!(q2_ids, vec![2, 3]);
    }

    #[test]
    fn report_renders_per_operator_rows() {
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let ss = b.add(SecurityShield::new(RoleSet::from([1])), src);
        let _sink = b.sink(ss);
        let mut exec = b.build();
        exec.push_all([(StreamId(1), sp(&[1], 0)), (StreamId(1), tup(1, 1, 2))]).unwrap();
        let report = exec.report();
        assert!(report.contains("ss"), "{report}");
        assert!(report.contains("sink"), "{report}");
        assert!(report.lines().count() >= 3);
    }

    #[test]
    fn unknown_stream_is_ignored() {
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let sink = b.sink(src);
        let mut exec = b.build();
        exec.push(StreamId(99), tup(1, 1, 1)).unwrap();
        assert_eq!(exec.sink(sink).tuple_count(), 0);
        exec.push(StreamId(1), tup(1, 1, 1)).unwrap();
        assert_eq!(exec.sink(sink).tuple_count(), 1);
    }

    #[test]
    fn server_policy_installed_through_builder() {
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        b.set_server_policy(src, Some(Policy::tuple_level(RoleSet::from([1]), Timestamp(0))));
        let ss = b.add(SecurityShield::new(RoleSet::from([2])), src);
        let sink = b.sink(ss);
        let mut exec = b.build();
        exec.push_all([(StreamId(1), sp(&[1, 2], 1)), (StreamId(1), tup(1, 2, 1))]).unwrap();
        // Server policy removed role 2, so query with role 2 sees nothing.
        assert_eq!(exec.sink(sink).tuple_count(), 0);
        assert!(exec.total_state_mem_bytes() > 0);
        assert_eq!(exec.analyzer(src).sps_filtered, 0);
    }

    #[test]
    fn hardened_source_fails_closed_end_to_end() {
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        b.harden_source(src, crate::QuarantinePolicy { ttl_ms: 10, slack_ms: 10, capacity: 8 });
        let ss = b.add(SecurityShield::new(RoleSet::from([1])), src);
        let sink = b.sink(ss);
        let mut exec = b.build();
        exec.push_all([
            (StreamId(1), tup(1, 1, 1)),  // no policy yet: quarantined
            (StreamId(1), sp(&[1], 1)),   // its sp arrives within slack
            (StreamId(1), tup(2, 2, 1)),  // governed
            (StreamId(1), tup(3, 50, 1)), // 39 past the policy: quarantined
            (StreamId(1), tup(4, 90, 1)), // expires tuple 3, quarantined
        ])
        .unwrap();
        let ids: Vec<u64> = exec.sink(sink).tuples().map(|t| t.tid.raw()).collect();
        assert_eq!(ids, vec![1, 2], "only governed tuples released");
        let d = exec.degradation();
        assert_eq!(d.quarantine_released, 1);
        assert_eq!(d.quarantined, 3);
        assert!(d.quarantine_dropped >= 1, "tuple 3 timed out");
        assert!(d.total_dropped() >= 1);
    }

    #[test]
    fn finish_flushes_trailing_batches() {
        let mut b = PlanBuilder::new(catalog());
        let src = b.source(StreamId(1), schema());
        let sink = b.sink(src);
        let mut exec = b.build();
        exec.push(StreamId(1), sp(&[1], 9)).unwrap();
        assert_eq!(exec.sink(sink).stats().sps_in, 0, "batch still open");
        exec.finish().unwrap();
        assert_eq!(exec.sink(sink).stats().sps_in, 1);
    }
}
