//! A grouped predicate index for Security Shield states (§V-A).
//!
//! "To speed up the processing by SS operator, we can use a predicate
//! index on the roles in the SS state, similar to the grouped filter in
//! CACQ and PSoup." When one shield protects **many queries** (the shared
//! plans of Fig. 5), the per-policy question becomes *which queries does
//! this policy authorize?* — answering it per query is `O(queries)` policy
//! intersections; the [`PredicateIndex`] inverts the predicates into a
//! role → query-set map so one pass over the policy's roles produces the
//! full authorized-query set as a bitmap union.

use sp_core::{Policy, RoleId, RoleSet};

/// A set of query indices, as a bitmap (reusing the [`RoleSet`] bitmap
/// machinery: the universe here is query indices, not roles).
pub type QuerySet = RoleSet;

/// An inverted index from roles to the queries whose predicates hold them.
#[derive(Debug, Default)]
pub struct PredicateIndex {
    /// `by_role[role] = set of query indices with that role`.
    by_role: Vec<QuerySet>,
    /// The registered predicates, by query index.
    predicates: Vec<RoleSet>,
}

impl PredicateIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a query's predicate, returning its query index.
    pub fn register(&mut self, predicate: RoleSet) -> usize {
        let query = self.predicates.len();
        for role in predicate.iter() {
            let idx = role.raw() as usize;
            if idx >= self.by_role.len() {
                self.by_role.resize_with(idx + 1, QuerySet::new);
            }
            self.by_role[idx].insert(RoleId(query as u32));
        }
        self.predicates.push(predicate);
        query
    }

    /// Number of registered queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.predicates.len()
    }

    /// True if no query is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// The queries authorized by `policy` — one pass over the policy's
    /// roles, a bitmap union per role.
    #[must_use]
    pub fn matching_queries(&self, policy: &Policy) -> QuerySet {
        let mut out = QuerySet::new();
        for role in policy.tuple_roles().iter() {
            if let Some(queries) = self.by_role.get(role.raw() as usize) {
                out.union_with(queries);
            }
        }
        out
    }

    /// Reference implementation: per-query policy checks (what N separate
    /// shields compute). Used by tests and the ablation bench.
    #[must_use]
    pub fn matching_queries_naive(&self, policy: &Policy) -> QuerySet {
        self.predicates
            .iter()
            .enumerate()
            .filter(|(_, p)| policy.allows(p))
            .map(|(i, _)| RoleId(i as u32))
            .collect()
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        self.by_role.iter().map(RoleSet::mem_bytes).sum::<usize>()
            + self.predicates.iter().map(RoleSet::mem_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::Timestamp;

    fn policy(roles: &[u32]) -> Policy {
        Policy::tuple_level(roles.iter().map(|&r| RoleId(r)).collect(), Timestamp(0))
    }

    #[test]
    fn index_matches_naive() {
        let mut index = PredicateIndex::new();
        index.register([1u32, 2].into());
        index.register([3u32].into());
        index.register([2u32, 3, 4].into());
        index.register([9u32].into());
        assert_eq!(index.len(), 4);

        for roles in [vec![1u32], vec![2], vec![3, 9], vec![5], vec![], vec![1, 2, 3, 4, 9]] {
            let p = policy(&roles);
            assert_eq!(
                index.matching_queries(&p),
                index.matching_queries_naive(&p),
                "roles {roles:?}"
            );
        }
    }

    #[test]
    fn specific_lookups() {
        let mut index = PredicateIndex::new();
        let q0 = index.register([1u32].into());
        let q1 = index.register([2u32].into());
        let q2 = index.register([1u32, 2].into());

        let only_1 = index.matching_queries(&policy(&[1]));
        assert!(only_1.contains(RoleId(q0 as u32)));
        assert!(!only_1.contains(RoleId(q1 as u32)));
        assert!(only_1.contains(RoleId(q2 as u32)));

        assert!(index.matching_queries(&policy(&[])).is_empty());
        assert!(index.matching_queries(&policy(&[7])).is_empty());
    }

    #[test]
    fn property_random_agreement() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        let mut index = PredicateIndex::new();
        for _ in 0..64 {
            let pred: RoleSet =
                (0..rng.gen_range(1..5)).map(|_| RoleId(rng.gen_range(0..40))).collect();
            index.register(pred);
        }
        for _ in 0..200 {
            let roles: Vec<u32> = (0..rng.gen_range(0..6)).map(|_| rng.gen_range(0..40)).collect();
            let p = policy(&roles);
            assert_eq!(index.matching_queries(&p), index.matching_queries_naive(&p));
        }
        assert!(index.mem_bytes() > 0);
        assert!(!index.is_empty());
    }
}
