//! Epoch checkpoints: durable, CRC-framed snapshots of a running plan.
//!
//! The paper's guarantee — a tuple is released only under a live security
//! punctuation that covers it — must survive process death. A DSMS that
//! restarts and "forgets" its policy table or quarantine queue can
//! silently widen access, so recovery is built around one invariant:
//! **restored security state is byte-identical to the state that was
//! checkpointed, or the restore is refused**. Losing tuples on recovery
//! is acceptable (and counted); leaking one is not.
//!
//! A [`Checkpoint`] is the consistent cut taken at an epoch boundary: one
//! canonical snapshot per SP Analyzer, per operator and per sink, plus
//! the input position the sources must replay from. On disk (or in a
//! [`MemStore`]) every checkpoint is one frame in the wire format
//! established by [`sp_core::wire`] — `[magic][u32 len][u32 CRC-32][body]`
//! — so a torn write or a flipped bit fails the checksum and recovery
//! falls back to the previous durable checkpoint instead of decoding
//! garbage into a policy table.
//!
//! The per-component byte encodings live here too (shared by every
//! operator's `snapshot`/`restore`): big-endian integers, length-prefixed
//! strings, canonical ordering for map-shaped state. Two runs in the same
//! logical state always serialize identically, which is what lets the
//! chaos tests assert *zero policy-state divergence* across crashes and
//! across the sequential/parallel runtimes.

use std::sync::Arc;

use bytes::{Buf, BufMut};

use sp_core::wire::crc32;
use sp_core::{
    decode_tuple, encode_tuple, Policy, SecurityPunctuation, SharedPolicy, StreamElement,
    Timestamp, Tuple,
};
use sp_pattern::Pattern;

use crate::element::{Element, PolicyEntry, SegmentPolicy};
use crate::error::EngineError;

/// Frame boundary / version marker for checkpoint frames. Distinct from
/// [`sp_core::wire::MAGIC`] so a checkpoint store and a wire capture can
/// never be confused for one another.
pub const CKPT_MAGIC: u8 = 0xC7;

/// A decode failure while reading snapshot bytes.
pub type CodecError = String;

/// Fails with a "truncated" error unless `n` more bytes are available.
pub fn need(buf: &impl Buf, n: usize, what: &str) -> Result<(), CodecError> {
    if buf.remaining() < n {
        Err(format!("truncated {what}"))
    } else {
        Ok(())
    }
}

/// Writes a `u16`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut impl BufMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

/// Reads a `u16`-length-prefixed UTF-8 string.
///
/// # Errors
///
/// Fails on truncation or invalid UTF-8.
pub fn get_str(buf: &mut impl Buf) -> Result<String, CodecError> {
    need(buf, 2, "string length")?;
    let len = buf.get_u16() as usize;
    need(buf, len, "string body")?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| "invalid UTF-8 string".into())
}

/// Writes a `u32`-length-prefixed byte section.
pub fn put_section(buf: &mut Vec<u8>, bytes: &[u8]) {
    buf.put_u32(bytes.len() as u32);
    buf.extend_from_slice(bytes);
}

/// Reads a `u32`-length-prefixed byte section.
///
/// # Errors
///
/// Fails on truncation.
pub fn get_section(buf: &mut impl Buf) -> Result<Vec<u8>, CodecError> {
    need(buf, 4, "section length")?;
    let len = buf.get_u32() as usize;
    need(buf, len, "section body")?;
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    Ok(bytes)
}

/// Encodes a resolved shared policy.
pub fn encode_policy(p: &Policy, buf: &mut impl BufMut) {
    p.encode(buf);
}

/// Decodes a resolved policy into a fresh `Arc`.
///
/// # Errors
///
/// Fails on truncation or malformed bytes.
pub fn decode_shared_policy(buf: &mut impl Buf) -> Result<SharedPolicy, CodecError> {
    Policy::decode(buf).map(Arc::new)
}

/// Encodes a segment policy: `[u64 ts][u16 entry count][(scope, policy)…]`.
///
/// Scopes are serialized as their pattern source text and re-compiled on
/// decode; the `uniform` fast-path pointer is derived state and is
/// reconstructed by [`SegmentPolicy::new`].
pub fn encode_segment_policy(p: &SegmentPolicy, buf: &mut impl BufMut) {
    buf.put_u64(p.ts.millis());
    buf.put_u16(p.entries().len() as u16);
    for entry in p.entries() {
        put_str(buf, entry.scope.source());
        encode_policy(&entry.policy, buf);
    }
}

/// Decodes a segment policy written by [`encode_segment_policy`].
///
/// # Errors
///
/// Fails on truncation, malformed policies, or an uncompilable scope.
pub fn decode_segment_policy(buf: &mut impl Buf) -> Result<SegmentPolicy, CodecError> {
    need(buf, 8 + 2, "segment policy header")?;
    let ts = Timestamp(buf.get_u64());
    let n = buf.get_u16() as usize;
    let mut entries = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let source = get_str(buf)?;
        let scope =
            Pattern::compile(&source).map_err(|e| format!("bad scope pattern {source:?}: {e}"))?;
        let policy = decode_shared_policy(buf)?;
        entries.push(PolicyEntry { scope, policy });
    }
    Ok(SegmentPolicy::new(entries, ts))
}

/// Encodes an optional segment policy behind a presence byte.
pub fn encode_opt_segment(p: Option<&Arc<SegmentPolicy>>, buf: &mut impl BufMut) {
    match p {
        None => buf.put_u8(0),
        Some(seg) => {
            buf.put_u8(1);
            encode_segment_policy(seg, buf);
        }
    }
}

/// Decodes an optional segment policy written by [`encode_opt_segment`].
///
/// # Errors
///
/// Fails on truncation or a malformed presence byte.
pub fn decode_opt_segment(buf: &mut impl Buf) -> Result<Option<Arc<SegmentPolicy>>, CodecError> {
    need(buf, 1, "segment presence byte")?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(Arc::new(decode_segment_policy(buf)?))),
        other => Err(format!("bad segment presence byte {other}")),
    }
}

/// Encodes an optional resolved policy behind a presence byte.
pub fn encode_opt_policy(p: Option<&Policy>, buf: &mut impl BufMut) {
    match p {
        None => buf.put_u8(0),
        Some(policy) => {
            buf.put_u8(1);
            encode_policy(policy, buf);
        }
    }
}

/// Decodes an optional policy written by [`encode_opt_policy`].
///
/// # Errors
///
/// Fails on truncation or a malformed presence byte.
pub fn decode_opt_policy(buf: &mut impl Buf) -> Result<Option<Policy>, CodecError> {
    need(buf, 1, "policy presence byte")?;
    match buf.get_u8() {
        0 => Ok(None),
        1 => Ok(Some(Policy::decode(buf)?)),
        other => Err(format!("bad policy presence byte {other}")),
    }
}

/// Encodes an engine element (tuple or segment policy) behind a tag byte.
pub fn encode_element(e: &Element, buf: &mut impl BufMut) {
    match e {
        Element::Tuple(t) => {
            buf.put_u8(0);
            encode_tuple(t, buf);
        }
        Element::Policy(p) => {
            buf.put_u8(1);
            encode_segment_policy(p, buf);
        }
    }
}

/// Decodes an element written by [`encode_element`].
///
/// # Errors
///
/// Fails on truncation or an unknown tag.
pub fn decode_element(buf: &mut impl Buf) -> Result<Element, CodecError> {
    need(buf, 1, "element tag")?;
    match buf.get_u8() {
        0 => Ok(Element::Tuple(Arc::new(decode_tuple(buf).map_err(|e| e.to_string())?))),
        1 => Ok(Element::Policy(Arc::new(decode_segment_policy(buf)?))),
        other => Err(format!("unknown element tag {other}")),
    }
}

/// Encodes a raw stream element (tuple or security punctuation).
pub fn encode_stream_element(e: &StreamElement, buf: &mut impl BufMut) {
    match e {
        StreamElement::Tuple(t) => {
            buf.put_u8(0);
            encode_tuple(t, buf);
        }
        StreamElement::Punctuation(sp) => {
            buf.put_u8(1);
            sp.encode(buf);
        }
    }
}

/// Decodes a stream element written by [`encode_stream_element`].
///
/// # Errors
///
/// Fails on truncation or an unknown tag.
pub fn decode_stream_element(buf: &mut impl Buf) -> Result<StreamElement, CodecError> {
    need(buf, 1, "stream element tag")?;
    match buf.get_u8() {
        0 => Ok(StreamElement::tuple(decode_tuple(buf).map_err(|e| e.to_string())?)),
        1 => Ok(StreamElement::punctuation(SecurityPunctuation::decode(buf)?)),
        other => Err(format!("unknown stream element tag {other}")),
    }
}

/// Encodes a `(tuple, resolved policy)` pair — the unit of windowed
/// operator state (join sides, group-by buffers, duplicate elimination).
pub fn encode_tuple_policy(t: &Arc<Tuple>, p: &SharedPolicy, buf: &mut impl BufMut) {
    encode_tuple(t, buf);
    encode_policy(p, buf);
}

/// Decodes a pair written by [`encode_tuple_policy`].
///
/// # Errors
///
/// Fails on truncation or malformed bytes.
pub fn decode_tuple_policy(buf: &mut impl Buf) -> Result<(Arc<Tuple>, SharedPolicy), CodecError> {
    let t = decode_tuple(buf).map_err(|e| e.to_string())?;
    let p = decode_shared_policy(buf)?;
    Ok((Arc::new(t), p))
}

/// Asserts a snapshot was consumed exactly.
///
/// # Errors
///
/// Fails when bytes remain — a snapshot with trailing garbage is corrupt.
pub fn done(buf: &impl Buf) -> Result<(), CodecError> {
    if buf.remaining() == 0 {
        Ok(())
    } else {
        Err(format!("{} trailing byte(s) in snapshot", buf.remaining()))
    }
}

/// Converts a codec failure into the fail-closed engine error for `stage`.
#[must_use]
pub fn corrupt(stage: &str, e: CodecError) -> EngineError {
    EngineError::corrupt(stage, e)
}

/// Merges the state suffixes of a delayed-sp-propagation operator's shard
/// replicas into the canonical (sequential-equivalent) suffix.
///
/// The suffix layout is `replicated_segments` optional segment policies
/// whose value is a pure function of the broadcast policy sequence (and
/// must therefore be byte-identical on every shard), followed by one
/// *pending* optional segment policy — the policy awaiting its first
/// surviving tuple. The pending flush moment is tuple-dependent, so
/// replicas legitimately disagree on it: a shard flushes when *its*
/// partition produces a survivor. The sequential run flushes as soon as
/// *any* tuple survives, so the canonical pending state is `None` exactly
/// when at least one replica has flushed.
///
/// # Errors
///
/// Fails closed with [`EngineError::ShardDivergence`] when the replicated
/// segments differ, or when replicas hold different (non-`None`) pending
/// policies — both mean the broadcast plane is broken.
pub(crate) fn merge_delayed_suffix(
    stage: &str,
    parts: &[&[u8]],
    replicated_segments: usize,
) -> Result<Vec<u8>, EngineError> {
    let Some(first) = parts.first() else {
        return Ok(Vec::new());
    };
    // (byte offset where the pending segment starts, pending is Some)
    let mut decoded = Vec::with_capacity(parts.len());
    for part in parts {
        let mut slice = *part;
        for _ in 0..replicated_segments {
            decode_opt_segment(&mut slice).map_err(|e| corrupt(stage, e))?;
        }
        let split = part.len() - slice.len();
        let pending = decode_opt_segment(&mut slice).map_err(|e| corrupt(stage, e))?;
        done(&slice).map_err(|e| corrupt(stage, e))?;
        decoded.push((split, pending.is_some()));
    }
    let first_split = decoded[0].0;
    for (part, (split, _)) in parts.iter().zip(&decoded) {
        if part[..*split] != first[..first_split] {
            return Err(EngineError::ShardDivergence {
                stage: stage.into(),
                reason: "replicated policy state differs across shard replicas".into(),
            });
        }
    }
    if decoded.iter().any(|(_, some)| !some) {
        // At least one shard saw a survivor: the sequential run has
        // flushed, so the canonical pending state is empty.
        let mut out = first[..first_split].to_vec();
        encode_opt_segment(None, &mut out);
        return Ok(out);
    }
    if parts[1..].iter().any(|p| p != first) {
        return Err(EngineError::ShardDivergence {
            stage: stage.into(),
            reason: "shard replicas hold different pending policies".into(),
        });
    }
    Ok(first.to_vec())
}

/// A consistent cut of a running plan at one epoch boundary.
///
/// `input_pos` is the number of recorded input elements the sources had
/// consumed when the cut was taken; recovery replays the input from this
/// offset. The snapshot sections are positional: they must be restored
/// into a plan built by the *same* builder (same sources, same operator
/// order, same sinks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Epoch number (monotone per run).
    pub epoch: u64,
    /// Recorded-input elements consumed at the cut.
    pub input_pos: u64,
    /// One canonical snapshot per source analyzer, in source order.
    pub analyzers: Vec<Vec<u8>>,
    /// One canonical snapshot per operator node, in node order.
    pub nodes: Vec<Vec<u8>>,
    /// One canonical snapshot per sink, in sink order.
    pub sinks: Vec<Vec<u8>>,
}

impl Checkpoint {
    /// Serializes the checkpoint as one CRC-framed record:
    /// `[CKPT_MAGIC][u32 body length][u32 CRC-32][body]`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        let mut body = Vec::with_capacity(64);
        body.put_u64(self.epoch);
        body.put_u64(self.input_pos);
        for group in [&self.analyzers, &self.nodes, &self.sinks] {
            body.put_u16(group.len() as u16);
            for section in group {
                put_section(&mut body, section);
            }
        }
        buf.put_u8(CKPT_MAGIC);
        buf.put_u32(body.len() as u32);
        buf.put_u32(crc32(&body));
        buf.extend_from_slice(&body);
    }

    /// Serializes into a fresh byte vector.
    #[must_use]
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Deserializes one framed checkpoint, verifying its checksum.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, truncation, checksum mismatch, or a malformed
    /// body — a torn or corrupted checkpoint is refused whole, never
    /// partially applied.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, CodecError> {
        need(buf, 1 + 4 + 4, "checkpoint frame header")?;
        if buf.get_u8() != CKPT_MAGIC {
            return Err("bad checkpoint magic byte".into());
        }
        let len = buf.get_u32() as usize;
        let crc = buf.get_u32();
        need(buf, len, "checkpoint frame body")?;
        let mut body = vec![0u8; len];
        buf.copy_to_slice(&mut body);
        if crc32(&body) != crc {
            return Err("checkpoint checksum mismatch".into());
        }
        Self::decode_body(&body)
    }

    fn decode_body(mut body: &[u8]) -> Result<Self, CodecError> {
        let buf = &mut body;
        need(buf, 8 + 8, "checkpoint header")?;
        let epoch = buf.get_u64();
        let input_pos = buf.get_u64();
        let mut groups: [Vec<Vec<u8>>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for group in &mut groups {
            need(buf, 2, "checkpoint group count")?;
            let n = buf.get_u16() as usize;
            for _ in 0..n {
                group.push(get_section(buf)?);
            }
        }
        if buf.remaining() != 0 {
            return Err("trailing bytes in checkpoint body".into());
        }
        let [analyzers, nodes, sinks] = groups;
        Ok(Self { epoch, input_pos, analyzers, nodes, sinks })
    }
}

/// Durable storage for a sequence of checkpoints.
///
/// Stores are append-only logs of CRC frames. Loading scans the log and
/// returns the **latest frame that decodes cleanly**: a torn tail (the
/// classic crash-during-write) silently falls back to the previous
/// durable checkpoint — fail closed, never decode garbage.
pub trait CheckpointStore {
    /// Appends one checkpoint.
    ///
    /// # Errors
    ///
    /// Fails when the underlying medium rejects the write.
    fn save(&mut self, ckpt: &Checkpoint) -> Result<(), EngineError>;

    /// The latest cleanly-decodable checkpoint, if any.
    fn load_latest(&self) -> Option<Checkpoint>;

    /// Number of cleanly-decodable checkpoints currently stored.
    fn count(&self) -> usize;
}

/// Scans an append-only frame log for valid checkpoints.
fn scan_frames(bytes: &[u8]) -> Vec<Checkpoint> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        if bytes[pos] != CKPT_MAGIC {
            pos += 1;
            continue;
        }
        let mut slice = &bytes[pos..];
        let before = slice.len();
        match Checkpoint::decode(&mut slice) {
            Ok(ckpt) => {
                out.push(ckpt);
                pos += before - slice.len();
            }
            Err(_) => pos += 1,
        }
    }
    out
}

/// An in-memory checkpoint store (tests, chaos harness). The backing
/// bytes are exposed so tests can simulate torn writes and bit rot.
#[derive(Debug, Default)]
pub struct MemStore {
    /// The raw append-only frame log.
    pub bytes: Vec<u8>,
}

impl MemStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointStore for MemStore {
    fn save(&mut self, ckpt: &Checkpoint) -> Result<(), EngineError> {
        ckpt.encode(&mut self.bytes);
        Ok(())
    }

    fn load_latest(&self) -> Option<Checkpoint> {
        scan_frames(&self.bytes).pop()
    }

    fn count(&self) -> usize {
        scan_frames(&self.bytes).len()
    }
}

/// A file-backed checkpoint store: the same append-only frame log as
/// [`MemStore`], persisted with an fsync per checkpoint so a durable
/// checkpoint survives process death.
///
/// With retention enabled ([`FileStore::with_retention`]) the log is
/// compacted down to the newest `keep_last` checkpoints whenever it
/// grows past that bound. Compaction is crash-atomic: the survivors are
/// rewritten into a temp file, fsynced, renamed over the log, and the
/// parent directory is fsynced — at every instant either the old log or
/// the new log is fully present, so a crash mid-compaction can never
/// lose the latest durable checkpoint. A stale temp file left by such a
/// crash is ignored on load and overwritten by the next compaction.
#[derive(Debug)]
pub struct FileStore {
    path: std::path::PathBuf,
    /// `Some(k)`: compact the log down to the newest `k` checkpoints
    /// after each save that pushes the count past `k`.
    keep_last: Option<usize>,
}

impl FileStore {
    /// Opens (or creates) the log at `path` with unbounded retention.
    #[must_use]
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        Self { path: path.into(), keep_last: None }
    }

    /// Opens (or creates) the log at `path`, keeping only the newest
    /// `keep_last` checkpoints (minimum 1) on disk.
    #[must_use]
    pub fn with_retention(path: impl Into<std::path::PathBuf>, keep_last: usize) -> Self {
        Self { path: path.into(), keep_last: Some(keep_last.max(1)) }
    }

    /// The log path.
    #[must_use]
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// The compaction scratch path: `<log>.compact` beside the log.
    fn tmp_path(&self) -> std::path::PathBuf {
        let mut name = self.path.as_os_str().to_os_string();
        name.push(".compact");
        std::path::PathBuf::from(name)
    }

    /// Rewrites the log to its newest `keep` checkpoints via temp file +
    /// rename + directory fsync. The old log stays durable until the
    /// rename lands, so a crash anywhere in here loses nothing.
    fn compact(&self, keep: usize) -> Result<(), EngineError> {
        use std::io::Write as _;
        let io = |e: std::io::Error| EngineError::corrupt("checkpoint-compact", e.to_string());
        let bytes = std::fs::read(&self.path).map_err(io)?;
        let frames = scan_frames(&bytes);
        if frames.len() <= keep {
            return Ok(());
        }
        let mut survivors = Vec::new();
        for ckpt in &frames[frames.len() - keep..] {
            ckpt.encode(&mut survivors);
        }
        let tmp = self.tmp_path();
        {
            // `create(true).truncate(true)` clobbers any stale temp file
            // a previous crash left behind.
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&tmp)
                .map_err(io)?;
            file.write_all(&survivors).map_err(io)?;
            file.sync_data().map_err(io)?;
        }
        std::fs::rename(&tmp, &self.path).map_err(io)?;
        // The rename is only durable once the directory entry is: fsync
        // the parent so a crash cannot resurrect the pre-compaction log
        // with the new inode lost.
        if let Some(dir) = self.path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::File::open(dir).and_then(|d| d.sync_all()).map_err(io)?;
        }
        Ok(())
    }
}

impl CheckpointStore for FileStore {
    fn save(&mut self, ckpt: &Checkpoint) -> Result<(), EngineError> {
        use std::io::Write as _;
        let frame = ckpt.encode_to_vec();
        let io = |e: std::io::Error| EngineError::corrupt("checkpoint-store", e.to_string());
        let mut file =
            std::fs::OpenOptions::new().create(true).append(true).open(&self.path).map_err(io)?;
        file.write_all(&frame).map_err(io)?;
        file.sync_data().map_err(io)?;
        drop(file);
        if let Some(keep) = self.keep_last {
            self.compact(keep)?;
        }
        Ok(())
    }

    fn load_latest(&self) -> Option<Checkpoint> {
        let bytes = std::fs::read(&self.path).ok()?;
        scan_frames(&bytes).pop()
    }

    fn count(&self) -> usize {
        std::fs::read(&self.path).map(|b| scan_frames(&b).len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{RoleSet, StreamId, TupleId, Value};

    fn seg(roles: &[u32], ts: u64) -> SegmentPolicy {
        SegmentPolicy::uniform(Policy::tuple_level(
            roles.iter().copied().map(sp_core::RoleId).collect(),
            Timestamp(ts),
        ))
    }

    fn tup(tid: u64) -> Tuple {
        Tuple::new(
            StreamId(3),
            TupleId(tid),
            Timestamp(tid),
            vec![Value::Int(tid as i64), Value::text("x")],
        )
    }

    #[test]
    fn segment_policy_round_trips_scoped_and_uniform() {
        let uniform = seg(&[1, 5], 7);
        let mut buf = Vec::new();
        encode_segment_policy(&uniform, &mut buf);
        let back = decode_segment_policy(&mut buf.as_slice()).unwrap();
        assert_eq!(back, uniform);
        assert!(back.as_uniform().is_some(), "uniform fast path re-derived");

        let scoped = SegmentPolicy::new(
            vec![
                PolicyEntry {
                    scope: Pattern::numeric_range(10, 20),
                    policy: Arc::new(Policy::tuple_level(RoleSet::from([2]), Timestamp(1))),
                },
                PolicyEntry {
                    scope: Pattern::match_all(),
                    policy: Arc::new(
                        Policy::tuple_level(RoleSet::from([4]), Timestamp(1))
                            .with_attr_grant(1, RoleSet::from([9])),
                    ),
                },
            ],
            Timestamp(1),
        );
        let mut buf = Vec::new();
        encode_segment_policy(&scoped, &mut buf);
        let back = decode_segment_policy(&mut buf.as_slice()).unwrap();
        assert_eq!(back, scoped);
        let deny = SegmentPolicy::deny(Timestamp(9));
        let mut buf = Vec::new();
        encode_segment_policy(&deny, &mut buf);
        let back = decode_segment_policy(&mut buf.as_slice()).unwrap();
        assert_eq!(back.entries().len(), 0);
        assert_eq!(back.ts, Timestamp(9));
    }

    #[test]
    fn elements_round_trip() {
        for e in [Element::tuple(tup(4)), Element::policy(seg(&[3], 2))] {
            let mut buf = Vec::new();
            encode_element(&e, &mut buf);
            assert_eq!(decode_element(&mut buf.as_slice()).unwrap(), e);
        }
        let sp = StreamElement::punctuation(SecurityPunctuation::grant_all(
            RoleSet::from([1, 2]),
            Timestamp(5),
        ));
        let mut buf = Vec::new();
        encode_stream_element(&sp, &mut buf);
        let back = decode_stream_element(&mut buf.as_slice()).unwrap();
        match (&sp, &back) {
            (StreamElement::Punctuation(a), StreamElement::Punctuation(b)) => {
                assert_eq!(a.ts, b.ts);
            }
            _ => panic!("tag mismatch"),
        }
    }

    fn sample_checkpoint(epoch: u64) -> Checkpoint {
        Checkpoint {
            epoch,
            input_pos: epoch * 100,
            analyzers: vec![vec![1, 2, 3]],
            nodes: vec![vec![4, 5], vec![], vec![6]],
            sinks: vec![vec![7; 9]],
        }
    }

    #[test]
    fn checkpoint_frame_round_trips() {
        let ckpt = sample_checkpoint(3);
        let bytes = ckpt.encode_to_vec();
        assert_eq!(Checkpoint::decode(&mut bytes.as_slice()).unwrap(), ckpt);
    }

    #[test]
    fn corrupt_checkpoint_is_refused() {
        let clean = sample_checkpoint(1).encode_to_vec();
        for i in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[i] ^= 0x40;
            assert_ne!(
                Checkpoint::decode(&mut bytes.as_slice()).ok(),
                Some(sample_checkpoint(1)),
                "flip at byte {i} must not decode to the original"
            );
        }
    }

    #[test]
    fn store_falls_back_past_torn_tail() {
        let mut store = MemStore::new();
        store.save(&sample_checkpoint(1)).unwrap();
        store.save(&sample_checkpoint(2)).unwrap();
        assert_eq!(store.count(), 2);
        assert_eq!(store.load_latest().unwrap().epoch, 2);
        // A torn write: half of checkpoint 3 makes it to the log.
        let frame = sample_checkpoint(3).encode_to_vec();
        store.bytes.extend_from_slice(&frame[..frame.len() / 2]);
        assert_eq!(store.load_latest().unwrap().epoch, 2, "torn tail falls back");
        // Bit rot in the latest full frame falls back to the one before.
        let mut store2 = MemStore::new();
        store2.save(&sample_checkpoint(1)).unwrap();
        let start = store2.bytes.len();
        store2.save(&sample_checkpoint(2)).unwrap();
        store2.bytes[start + 12] ^= 0xFF;
        assert_eq!(store2.load_latest().unwrap().epoch, 1, "rotten frame skipped");
    }

    #[test]
    fn file_store_survives_reopen() {
        let path = std::env::temp_dir().join(format!("sp-ckpt-test-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileStore::new(&path);
            store.save(&sample_checkpoint(1)).unwrap();
            store.save(&sample_checkpoint(2)).unwrap();
        }
        let store = FileStore::new(&path);
        assert_eq!(store.count(), 2);
        assert_eq!(store.load_latest().unwrap(), sample_checkpoint(2));
        let _ = std::fs::remove_file(&path);
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sp-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn retention_compacts_to_keep_last_k() {
        let dir = scratch("retain");
        let path = dir.join("ckpt.log");
        let mut store = FileStore::with_retention(&path, 3);
        for epoch in 1..=10 {
            store.save(&sample_checkpoint(epoch)).unwrap();
            assert_eq!(store.load_latest().unwrap().epoch, epoch);
            assert!(store.count() <= 3, "log must never hold more than K checkpoints");
        }
        assert_eq!(store.count(), 3);
        let bytes = std::fs::read(&path).unwrap();
        let kept: Vec<u64> = scan_frames(&bytes).iter().map(|c| c.epoch).collect();
        assert_eq!(kept, vec![8, 9, 10], "the newest K survive, in order");
        assert!(!store.tmp_path().exists(), "compaction cleans up its temp file");
        // The compacted log is a plain frame log: a fresh handle reads it.
        assert_eq!(FileStore::new(&path).load_latest().unwrap(), sample_checkpoint(10));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_during_compaction_never_loses_durable_checkpoint() {
        let dir = scratch("crash");
        let path = dir.join("ckpt.log");
        let mut store = FileStore::with_retention(&path, 2);
        for epoch in 1..=5 {
            store.save(&sample_checkpoint(epoch)).unwrap();
        }
        assert_eq!(store.load_latest().unwrap().epoch, 5);

        // Crash window A: the temp file exists but the rename never
        // happened. Simulate with a partial (torn) survivor rewrite.
        let survivors = sample_checkpoint(5).encode_to_vec();
        std::fs::write(store.tmp_path(), &survivors[..survivors.len() / 2]).unwrap();
        let reopened = FileStore::with_retention(&path, 2);
        assert_eq!(
            reopened.load_latest().unwrap().epoch,
            5,
            "old log untouched while temp exists: nothing lost"
        );

        // Recovery then keeps running: the next save clobbers the stale
        // temp file and compacts normally.
        let mut store = reopened;
        store.save(&sample_checkpoint(6)).unwrap();
        assert_eq!(store.load_latest().unwrap().epoch, 6);
        assert_eq!(store.count(), 2);
        assert!(!store.tmp_path().exists());

        // Crash window B: the rename landed (log == survivors only).
        // The latest checkpoint must still be the one that was durable.
        let reopened = FileStore::with_retention(&path, 2);
        assert_eq!(reopened.load_latest().unwrap().epoch, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
