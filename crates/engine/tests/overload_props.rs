//! Property tests for the overload subsystem: load shedding may only ever
//! *narrow* what a query releases, never widen it, and policy state must
//! be completely insensitive to which data tuples overload management
//! discards.
//!
//! Three families of properties over randomized workloads, shed policies,
//! and watermark configurations:
//!
//! 1. **released-set subset** — the tuples released by an overloaded
//!    (shedding) pipeline are a subset of the tuples the unloaded pipeline
//!    releases, and the policy sequence crossing the shedder is byte-for-
//!    byte the sequence that entered it (sps are lossless control traffic);
//! 2. **policy-table independence** — the analyzer's end-of-run policy
//!    table is byte-identical no matter which data tuples were refused
//!    upstream (the invariant admission control relies on);
//! 3. **admission soundness** — the token-bucket admission controller
//!    never refuses a punctuation, and every refusal carries a positive
//!    retry hint.
//!
//! Plus a deterministic *negative control*: a deliberately broken shedder
//! that drops sps under load produces a released-set violation, proving
//! this harness actually catches policy loss.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use proptest::prelude::*;
use sp_core::{
    RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, Timestamp,
    Tuple, TupleId, Value, ValueType,
};
use sp_engine::{
    AdmissionConfig, AdmissionController, Element, Emitter, Operator, SecurityShield, ShedPolicy,
    Shedder, ShedderConfig, Slack, SpAnalyzer, WatermarkConfig,
};

fn schema() -> Arc<Schema> {
    Schema::of("s", &[("k", ValueType::Int), ("v", ValueType::Int)])
}

fn catalog() -> Arc<RoleCatalog> {
    let mut c = RoleCatalog::new();
    c.register_synthetic_roles(8);
    Arc::new(c)
}

/// One raw workload item: an sp-batch grant or a tuple. `gap` stretches
/// the inter-arrival time so drain-based recovery gets exercised.
#[derive(Debug, Clone)]
enum Item {
    Sp(Vec<u32>),
    Tup { k: i64, gap: u64 },
}

fn arb_items() -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(0u32..6, 0..3).prop_map(Item::Sp),
            (0i64..6, 0u64..4).prop_map(|(k, gap)| Item::Tup { k, gap }),
            (0i64..6, 0u64..4).prop_map(|(k, gap)| Item::Tup { k, gap }),
            (0i64..6, 0u64..4).prop_map(|(k, gap)| Item::Tup { k, gap }),
        ],
        8..80,
    )
}

fn arb_shed_policy() -> impl Strategy<Value = ShedPolicy> {
    prop_oneof![
        (0u32..=100, any::<u64>())
            .prop_map(|(pct, seed)| ShedPolicy::RandomP { p: f64::from(pct) / 100.0, seed }),
        (0u64..50).prop_map(|ms| ShedPolicy::OldestFirst { slack: Slack::new(ms) }),
        Just(ShedPolicy::FairPerStream),
    ]
}

fn arb_shedder_cfg() -> impl Strategy<Value = ShedderConfig> {
    (4u64..64, 0u64..3, 20u64..60, arb_shed_policy()).prop_map(
        |(capacity, drain, shed_high, policy)| ShedderConfig {
            capacity,
            drain_per_ms: drain,
            // Keep the rungs ordered whatever shed_high was drawn.
            watermarks: WatermarkConfig {
                shed_high,
                shed_low: shed_high / 2,
                critical_high: shed_high + 20,
                critical_low: shed_high,
                fail_high: shed_high + 35,
                fail_low: shed_high + 10,
            },
            policy,
        },
    )
}

fn raw_stream(items: &[Item]) -> Vec<StreamElement> {
    let mut clock = 0u64;
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            clock += 1;
            match item {
                Item::Sp(roles) => {
                    let rs: RoleSet = roles.iter().map(|&r| RoleId(r)).collect();
                    StreamElement::punctuation(SecurityPunctuation::grant_all(rs, Timestamp(clock)))
                }
                Item::Tup { k, gap } => {
                    clock += gap;
                    StreamElement::tuple(Tuple::new(
                        StreamId(1),
                        TupleId(i as u64),
                        Timestamp(clock),
                        vec![Value::Int(*k), Value::Int(i as i64)],
                    ))
                }
            }
        })
        .collect()
}

/// What one analyzer → (shedder?) → shield pipeline run produced.
struct RunOutcome {
    /// Tuple ids the shield released, in order.
    released: Vec<u64>,
    /// Canonical bytes of the analyzer's end-of-run policy table.
    policy_table: Vec<u8>,
    /// Debug renderings of every policy element that left the shedder
    /// (equals the entering sequence iff the shedder lost none).
    policies_out: Vec<String>,
    /// Same, for the policies that *entered* the shedder.
    policies_in: Vec<String>,
}

/// Runs the pipeline, optionally with a shedder between the analyzer and
/// the shield. `broken` turns on the deliberate sp-shedding defect.
fn run_pipeline(items: &[Item], shed: Option<ShedderConfig>, broken: bool) -> RunOutcome {
    let mut analyzer = SpAnalyzer::new(schema(), catalog());
    let mut shedder = shed.map(|cfg| {
        let mut s = Shedder::new(cfg);
        if broken {
            s.break_sp_shedding();
        }
        s
    });
    let mut shield = SecurityShield::new(RoleSet::from([1, 3]));
    let mut emitter = Emitter::new();
    let mut out = RunOutcome {
        released: Vec::new(),
        policy_table: Vec::new(),
        policies_out: Vec::new(),
        policies_in: Vec::new(),
    };

    let mut staged = Vec::new();
    for raw in raw_stream(items) {
        staged.clear();
        analyzer.push(raw, &mut staged);
        for el in staged.drain(..) {
            if let Element::Policy(p) = &el {
                out.policies_in.push(format!("{p:?}"));
            }
            let survivors: Vec<Element> = match &mut shedder {
                Some(s) => {
                    s.process(0, el, &mut emitter).unwrap();
                    emitter.take().to_vec()
                }
                None => vec![el],
            };
            for el in survivors {
                if let Element::Policy(p) = &el {
                    out.policies_out.push(format!("{p:?}"));
                }
                shield.process(0, el, &mut emitter).unwrap();
                for released in emitter.take().to_vec() {
                    if let Element::Tuple(t) = released {
                        out.released.push(t.tid.raw());
                    }
                }
            }
        }
    }
    // Batches resolve lazily (the next element triggers resolution), so
    // force the pending batch through before reading the table — the
    // invariant is over the *end-of-run* policy state.
    staged.clear();
    analyzer.flush(&mut staged);
    out.policy_table = analyzer.policy_table_bytes();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Shedding narrows the released set and loses no policy: every tuple
    /// an overloaded run releases, the unloaded run releases too, and the
    /// policy sequence crosses the shedder untouched.
    #[test]
    fn shedded_release_is_a_subset_and_policies_are_lossless(
        items in arb_items(),
        cfg in arb_shedder_cfg(),
    ) {
        let baseline = run_pipeline(&items, None, false);
        let shedded = run_pipeline(&items, Some(cfg), false);

        let base: std::collections::BTreeSet<u64> = baseline.released.iter().copied().collect();
        for tid in &shedded.released {
            prop_assert!(
                base.contains(tid),
                "overloaded run released tuple {tid} the unloaded run withheld"
            );
        }
        prop_assert_eq!(
            &shedded.policies_out, &shedded.policies_in,
            "shedder altered the policy sequence"
        );
        prop_assert_eq!(
            &shedded.policy_table, &baseline.policy_table,
            "policy table diverged under shedding"
        );
    }

    /// The analyzer's policy table is a function of the sps alone:
    /// refusing any subset of data tuples upstream (what admission
    /// control does) leaves it byte-identical.
    #[test]
    fn policy_table_ignores_refused_tuples(
        items in arb_items(),
        mask in any::<u64>(),
    ) {
        let full: Vec<StreamElement> = raw_stream(&items);
        let thinned: Vec<StreamElement> = full
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                matches!(e, StreamElement::Punctuation(_)) || mask & (1 << (i % 64)) != 0
            })
            .map(|(_, e)| e.clone())
            .collect();

        let mut staged = Vec::new();
        let mut a = SpAnalyzer::new(schema(), catalog());
        for e in full {
            a.push(e, &mut staged);
            staged.clear();
        }
        a.flush(&mut staged);
        staged.clear();
        let mut b = SpAnalyzer::new(schema(), catalog());
        for e in thinned {
            b.push(e, &mut staged);
            staged.clear();
        }
        b.flush(&mut staged);
        staged.clear();
        prop_assert_eq!(
            a.policy_table_bytes(),
            b.policy_table_bytes(),
            "policy table depends on which tuples were admitted"
        );
    }

    /// Admission control is sound: sps always pass, refusals always carry
    /// a positive retry hint, and the counters account for every element.
    #[test]
    fn admission_never_refuses_sps_and_hints_are_positive(
        items in arb_items(),
        tokens_per_sec in 1u64..2_000,
        burst in 1u64..32,
        deadline in 0u64..100,
    ) {
        let mut ac = AdmissionController::new(AdmissionConfig {
            tokens_per_sec,
            burst,
            enqueue_deadline_ms: deadline,
        });
        let (mut tuples, mut sps) = (0u64, 0u64);
        for e in raw_stream(&items) {
            let is_tuple = matches!(e, StreamElement::Tuple(_));
            let res = ac.admit(StreamId(1), is_tuple, e.ts());
            if is_tuple {
                tuples += 1;
                if let Err(err) = res {
                    match err {
                        sp_engine::EngineError::Overloaded { retry_after_ms } => {
                            prop_assert!(retry_after_ms > 0, "refusal without a retry hint");
                        }
                        other => prop_assert!(false, "unexpected error {other:?}"),
                    }
                }
            } else {
                sps += 1;
                prop_assert!(res.is_ok(), "admission refused a punctuation");
            }
        }
        prop_assert_eq!(ac.admitted() + ac.rejected(), tuples);
        prop_assert_eq!(ac.sps_bypassed(), sps);
        prop_assert_eq!(ac.degradation().admission_rejected, ac.rejected());
    }
}

/// Negative control: a shedder that (deliberately, via the test-only
/// defect switch) sheds sps while under load lets a revoked grant live on
/// downstream — and this harness's subset check catches the leak. If this
/// test ever fails, the leak-detection above has gone blind.
#[test]
fn broken_sp_shedding_shedder_is_caught_by_the_subset_check() {
    // Build the scenario directly: grant, load the queue into the
    // Shedding band, revoke, then more tuples.
    let mut items = vec![Item::Sp(vec![1])];
    for _ in 0..7 {
        items.push(Item::Tup { k: 1, gap: 0 });
    }
    items.push(Item::Sp(vec![])); // revoke: empty role set denies all
    for _ in 0..4 {
        items.push(Item::Tup { k: 2, gap: 0 });
    }

    // Capacity 10, no drain: 7 admitted tuples = 70% occupancy, inside
    // the Shedding band (60..80) — high enough that the broken shedder
    // drops the revoke sp, low enough that RandomP(p=0) keeps admitting
    // the post-revoke tuples the leak needs.
    let cfg = ShedderConfig {
        capacity: 10,
        drain_per_ms: 0,
        watermarks: WatermarkConfig::default(),
        policy: ShedPolicy::RandomP { p: 0.0, seed: 1 },
    };

    let baseline = run_pipeline(&items, None, false);
    let correct = run_pipeline(&items, Some(cfg.clone()), false);
    let broken = run_pipeline(&items, Some(cfg), true);

    let base: std::collections::BTreeSet<u64> = baseline.released.iter().copied().collect();

    // The correct shedder stays a subset and loses no policy.
    assert!(correct.released.iter().all(|t| base.contains(t)));
    assert_eq!(correct.policies_out, correct.policies_in);

    // The broken one leaks: it releases post-revoke tuples the unloaded
    // run withheld, and the policy sequence shows the loss.
    assert_ne!(broken.policies_out, broken.policies_in, "defect did not drop the sp");
    let leaked: Vec<u64> = broken.released.iter().copied().filter(|t| !base.contains(t)).collect();
    assert!(
        !leaked.is_empty(),
        "sp-shedding shedder produced no subset violation — the harness is blind"
    );
}
