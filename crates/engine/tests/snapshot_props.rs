//! Property tests for the checkpoint subsystem: snapshot → restore must be
//! an exact state round-trip for every operator, the SP Analyzer (with a
//! non-empty quarantine) and the reorder buffer.
//!
//! Two properties per component, over randomized sp/tuple workloads and a
//! random split point:
//!
//! 1. **byte round-trip** — restoring a snapshot into a freshly built
//!    instance and snapshotting again yields byte-identical bytes (the
//!    canonical serialization makes state equality observable as byte
//!    equality);
//! 2. **behavioral continuation** — the restored instance processes the
//!    rest of the workload exactly like the original: same emissions, same
//!    final snapshot. This is the property recovery actually relies on.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use proptest::prelude::*;
use sp_core::{
    RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, Timestamp,
    Tuple, TupleId, Value, ValueType,
};
use sp_engine::{
    AggFunc, CmpOp, DupElim, Element, Emitter, Expr, GroupBy, JoinVariant, Operator, Project,
    QuarantinePolicy, ReorderBuffer, SAIntersect, SAJoin, SecurityShield, Select, Sink, SpAnalyzer,
    Union,
};

fn schema() -> Arc<Schema> {
    Schema::of("s", &[("k", ValueType::Int), ("v", ValueType::Int)])
}

fn catalog() -> Arc<RoleCatalog> {
    let mut c = RoleCatalog::new();
    c.register_synthetic_roles(8);
    Arc::new(c)
}

/// One raw workload item: an sp-batch grant or a tuple.
#[derive(Debug, Clone)]
enum Item {
    Sp(Vec<u32>),
    Tup(i64, i64),
}

fn arb_items() -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(0u32..6, 0..3).prop_map(Item::Sp),
            (0i64..6, 0i64..50).prop_map(|(k, v)| Item::Tup(k, v)),
        ],
        4..40,
    )
}

fn raw_stream(items: &[Item]) -> Vec<StreamElement> {
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let ts = Timestamp(i as u64 + 1);
            match item {
                Item::Sp(roles) => {
                    let rs: RoleSet = roles.iter().map(|&r| RoleId(r)).collect();
                    StreamElement::punctuation(SecurityPunctuation::grant_all(rs, ts))
                }
                Item::Tup(k, v) => StreamElement::tuple(Tuple::new(
                    StreamId(1),
                    TupleId(i as u64),
                    ts,
                    vec![Value::Int(*k), Value::Int(*v)],
                )),
            }
        })
        .collect()
}

/// Converts raw stream elements to engine elements through an analyzer
/// (resolved segment policies interleaved with tuples), the form every
/// operator consumes.
fn engine_elements(items: &[Item]) -> Vec<Element> {
    let mut analyzer = SpAnalyzer::new(schema(), catalog());
    let mut out = Vec::new();
    let mut staged = Vec::new();
    for raw in raw_stream(items) {
        staged.clear();
        analyzer.push(raw, &mut staged);
        out.append(&mut staged);
    }
    out
}

fn snapshot_of(op: &dyn Operator) -> Vec<u8> {
    let mut buf = Vec::new();
    op.snapshot(&mut buf);
    buf
}

/// Feeds elements (binary operators: alternating ports) and returns the
/// emissions as debug strings.
fn feed(op: &mut dyn Operator, elems: &[Element], arity: usize) -> Vec<String> {
    let mut emitter = Emitter::new();
    let mut out = Vec::new();
    for (i, e) in elems.iter().enumerate() {
        let port = if arity > 1 { i % 2 } else { 0 };
        op.process(port, e.clone(), &mut emitter).unwrap();
        out.extend(emitter.take().iter().map(|e| format!("{e:?}")));
    }
    out
}

/// The two snapshot properties for one operator, checked at `split`.
fn check_operator(mut fresh: impl FnMut() -> Box<dyn Operator>, items: &[Item], split: usize) {
    let elems = engine_elements(items);
    let split = split % (elems.len() + 1);
    let arity = fresh().arity();

    let mut original = fresh();
    feed(original.as_mut(), &elems[..split], arity);
    let snap = snapshot_of(original.as_ref());

    // Property 1: byte round-trip through a fresh instance.
    let mut restored = fresh();
    restored.restore(&snap).unwrap();
    prop_assert_eq!(
        &snapshot_of(restored.as_ref()),
        &snap,
        "restore({}) did not reproduce the snapshot",
        original.name()
    );

    // Property 2: behavioral continuation.
    let out_original = feed(original.as_mut(), &elems[split..], arity);
    let out_restored = feed(restored.as_mut(), &elems[split..], arity);
    prop_assert_eq!(out_original, out_restored, "{} diverged after restore", original.name());
    prop_assert_eq!(
        snapshot_of(original.as_ref()),
        snapshot_of(restored.as_ref()),
        "{} final state diverged after restore",
        original.name()
    );
}

fn select_op() -> Box<dyn Operator> {
    Box::new(Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(10)))))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn select_roundtrip(items in arb_items(), split in 0usize..64) {
        check_operator(select_op, &items, split);
    }

    #[test]
    fn project_roundtrip(items in arb_items(), split in 0usize..64) {
        check_operator(|| Box::new(Project::new(vec![0])), &items, split);
    }

    #[test]
    fn shield_roundtrip(items in arb_items(), split in 0usize..64) {
        check_operator(|| Box::new(SecurityShield::new(RoleSet::from([1, 3]))), &items, split);
    }

    #[test]
    fn dupelim_roundtrip(items in arb_items(), split in 0usize..64) {
        check_operator(|| Box::new(DupElim::new(vec![0], 10)), &items, split);
    }

    #[test]
    fn groupby_roundtrip(items in arb_items(), split in 0usize..64) {
        for agg in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            check_operator(|| Box::new(GroupBy::new(Some(0), agg, 1, 10)), &items, split);
        }
    }

    #[test]
    fn sink_roundtrip(items in arb_items(), split in 0usize..64) {
        // Sink snapshots are counters-only by design (delivered elements
        // are past the crash boundary), so only the byte round-trip and
        // counter continuation hold — delivered elements are cleared.
        let elems = engine_elements(&items);
        let split = split % (elems.len() + 1);
        let mut original = Sink::new();
        feed(&mut original, &elems[..split], 1);
        let snap = snapshot_of(&original);
        let mut restored = Sink::new();
        Operator::restore(&mut restored, &snap).unwrap();
        prop_assert_eq!(&snapshot_of(&restored), &snap);
        prop_assert_eq!(restored.tuple_count(), 0, "restored sink must not resurrect output");
        feed(&mut original, &elems[split..], 1);
        feed(&mut restored, &elems[split..], 1);
        prop_assert_eq!(snapshot_of(&original), snapshot_of(&restored));
    }

    #[test]
    fn union_roundtrip(items in arb_items(), split in 0usize..64) {
        check_operator(|| Box::new(Union::new()), &items, split);
    }

    #[test]
    fn saintersect_roundtrip(items in arb_items(), split in 0usize..64) {
        check_operator(|| Box::new(SAIntersect::new(10)), &items, split);
    }

    #[test]
    fn sajoin_roundtrip(items in arb_items(), split in 0usize..64) {
        for variant in [JoinVariant::Index, JoinVariant::NestedLoopPF, JoinVariant::NestedLoopFP] {
            check_operator(|| Box::new(SAJoin::new(variant, 10, 0, 0, 2)), &items, split);
        }
    }

    #[test]
    fn analyzer_roundtrip(items in arb_items(), split in 0usize..64, jump in 0u64..4000) {
        // `jump` pushes some tuples past the policy TTL so hardened runs
        // quarantine them — the snapshot must carry the quarantine queue.
        let qp = QuarantinePolicy { ttl_ms: 100, slack_ms: 2_000, capacity: 64 };
        let mut raw = raw_stream(&items);
        for (i, e) in raw.iter_mut().enumerate() {
            if i % 3 == 0 {
                if let StreamElement::Tuple(t) = e {
                    *e = StreamElement::tuple(Tuple::new(
                        t.sid,
                        t.tid,
                        Timestamp(t.ts.0 + jump),
                        t.values().to_vec(),
                    ));
                }
            }
        }
        let split = split % (raw.len() + 1);

        let mut original = SpAnalyzer::new(schema(), catalog());
        original.harden(qp);
        let mut staged = Vec::new();
        for e in &raw[..split] {
            original.push(e.clone(), &mut staged);
        }
        let mut snap = Vec::new();
        original.snapshot(&mut snap);

        let mut restored = SpAnalyzer::new(schema(), catalog());
        restored.harden(qp);
        restored.restore(&snap).unwrap();
        let mut snap2 = Vec::new();
        restored.snapshot(&mut snap2);
        prop_assert_eq!(&snap2, &snap, "analyzer restore did not reproduce the snapshot");

        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        for e in &raw[split..] {
            original.push(e.clone(), &mut out_a);
            restored.push(e.clone(), &mut out_b);
        }
        prop_assert_eq!(
            out_a.iter().map(|e| format!("{e:?}")).collect::<Vec<_>>(),
            out_b.iter().map(|e| format!("{e:?}")).collect::<Vec<_>>()
        );
        let (mut fa, mut fb) = (Vec::new(), Vec::new());
        original.snapshot(&mut fa);
        restored.snapshot(&mut fb);
        prop_assert_eq!(fa, fb, "analyzer state diverged after restore");
    }

    #[test]
    fn reorder_roundtrip(items in arb_items(), split in 0usize..64, scramble in 0u64..7) {
        let mut raw = raw_stream(&items);
        // Scramble timestamps so the buffer holds pending elements.
        for (i, e) in raw.iter_mut().enumerate() {
            if let StreamElement::Tuple(t) = e {
                let ts = Timestamp(t.ts.0.saturating_sub((i as u64 * scramble) % 5));
                *e = StreamElement::tuple(Tuple::new(t.sid, t.tid, ts, t.values().to_vec()));
            }
        }
        let split = split % (raw.len() + 1);

        let mut original = ReorderBuffer::new(4);
        let mut out = Vec::new();
        for e in &raw[..split] {
            original.push(e.clone(), &mut out);
        }
        let mut snap = Vec::new();
        original.snapshot(&mut snap);

        let mut restored = ReorderBuffer::new(4);
        restored.restore(&snap).unwrap();
        let mut snap2 = Vec::new();
        restored.snapshot(&mut snap2);
        prop_assert_eq!(&snap2, &snap, "reorder restore did not reproduce the snapshot");

        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for e in &raw[split..] {
            original.push(e.clone(), &mut out_a);
            restored.push(e.clone(), &mut out_b);
        }
        original.flush(&mut out_a);
        restored.flush(&mut out_b);
        prop_assert_eq!(
            out_a.iter().map(|e| format!("{e:?}")).collect::<Vec<_>>(),
            out_b.iter().map(|e| format!("{e:?}")).collect::<Vec<_>>()
        );
    }
}

/// Deterministic witness that the quarantine round-trip is exercised: a
/// hardened analyzer with tuples waiting for their sp-batch must carry
/// them across snapshot/restore and settle them identically.
#[test]
fn analyzer_restores_non_empty_quarantine() {
    let qp = QuarantinePolicy { ttl_ms: 10, slack_ms: 10_000, capacity: 64 };
    let mut a = SpAnalyzer::new(schema(), catalog());
    a.harden(qp);
    let mut staged = Vec::new();
    a.push(
        StreamElement::punctuation(SecurityPunctuation::grant_all(
            RoleSet::from([1]),
            Timestamp(0),
        )),
        &mut staged,
    );
    // Far beyond ttl: quarantined, not covered.
    for tid in 1..=3u64 {
        a.push(
            StreamElement::tuple(Tuple::new(
                StreamId(1),
                TupleId(tid),
                Timestamp(5_000 + tid),
                vec![Value::Int(tid as i64), Value::Int(0)],
            )),
            &mut staged,
        );
    }
    assert_eq!(a.degradation().quarantined, 3, "setup must quarantine");

    let mut snap = Vec::new();
    a.snapshot(&mut snap);
    let mut b = SpAnalyzer::new(schema(), catalog());
    b.harden(qp);
    b.restore(&snap).unwrap();

    // A fresh sp covering the quarantined region settles both the same way.
    let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
    let sp = SecurityPunctuation::grant_all(RoleSet::from([2]), Timestamp(5_000));
    a.push(StreamElement::punctuation(sp.clone()), &mut out_a);
    b.push(StreamElement::punctuation(sp), &mut out_b);
    // Batches resolve lazily; force resolution so settlement runs now.
    a.flush(&mut out_a);
    b.flush(&mut out_b);
    assert_eq!(
        out_a.iter().map(|e| format!("{e:?}")).collect::<Vec<_>>(),
        out_b.iter().map(|e| format!("{e:?}")).collect::<Vec<_>>()
    );
    assert_eq!(a.degradation().quarantine_released, b.degradation().quarantine_released);
    assert!(
        a.degradation().quarantine_released + a.degradation().quarantine_dropped > 0,
        "settlement must consume the quarantine"
    );
}
