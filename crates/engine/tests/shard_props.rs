//! Property tests for key-partitioned shard scale-out.
//!
//! Three properties over randomized sp/tuple workloads:
//!
//! 1. **partitioner determinism** — the shard of a tuple is a pure
//!    function of `(stream id, tuple id, shard count)`: stable across
//!    calls and instances, always in range, and independent of the
//!    tuple's payload (so retries and replicas route identically);
//! 2. **sequential ≡ sharded** — for any workload and any shard count,
//!    the sharded executor's released elements (tuples *and* flushed
//!    policies, per sink), audit trail, span sheet, and shard-spanning
//!    checkpoint are byte-identical to the sequential executor's. Checked
//!    for both a shield plan and a select plan (the two delayed-sp
//!    operators, exercising the exchange's flush dedup);
//! 3. **re-shard on restore** — a checkpoint cut at N shards, restored
//!    at M shards at a random split point, continues to the same final
//!    analyzer/node state as an uninterrupted sequential run.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use proptest::prelude::*;
use sp_core::{
    RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, Timestamp,
    Tuple, TupleId, Value, ValueType,
};
use sp_engine::{
    CmpOp, Element, Expr, Partitioner, PlanBuilder, SecurityShield, Select, ShardedExecutor,
    SinkRef, TelemetryConfig,
};

fn schema() -> Arc<Schema> {
    Schema::of("s", &[("id", ValueType::Int), ("v", ValueType::Int)])
}

fn catalog() -> Arc<RoleCatalog> {
    let mut c = RoleCatalog::new();
    c.register_synthetic_roles(8);
    Arc::new(c)
}

/// One raw workload item on one of two streams.
#[derive(Debug, Clone)]
enum Item {
    Sp(u32, Vec<u32>),
    Tup(u32, u64, i64),
}

fn arb_items() -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec(
        prop_oneof![
            (1u32..=2, prop::collection::vec(0u32..5, 0..3)).prop_map(|(s, r)| Item::Sp(s, r)),
            (1u32..=2, 0u64..6, 0i64..10).prop_map(|(s, id, v)| Item::Tup(s, id, v)),
        ],
        4..48,
    )
}

fn raw_input(items: &[Item]) -> Vec<(StreamId, StreamElement)> {
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let ts = Timestamp(i as u64 + 1);
            match item {
                Item::Sp(s, roles) => {
                    let rs: RoleSet = roles.iter().map(|&r| RoleId(r)).collect();
                    (
                        StreamId(*s),
                        StreamElement::punctuation(SecurityPunctuation::grant_all(rs, ts)),
                    )
                }
                Item::Tup(s, id, v) => (
                    StreamId(*s),
                    StreamElement::tuple(Tuple::new(
                        StreamId(*s),
                        TupleId(*id),
                        ts,
                        vec![Value::Int(*id as i64), Value::Int(*v)],
                    )),
                ),
            }
        })
        .collect()
}

type BuildFn = fn() -> (PlanBuilder, Vec<SinkRef>);

fn telemetry_on(b: &mut PlanBuilder) {
    b.enable_telemetry(TelemetryConfig {
        audit_capacity: 4096,
        span_capacity: 4096,
        metrics: false,
    });
}

/// Two-stream shield plan (ψ feeds its sink directly, as sharding
/// requires of delaying operators).
fn shield_builder() -> (PlanBuilder, Vec<SinkRef>) {
    let mut b = PlanBuilder::new(catalog());
    let mut sinks = Vec::new();
    for sid in [1u32, 2] {
        let src = b.source(StreamId(sid), schema());
        let ss = b.add(SecurityShield::new(RoleSet::from([1])), src);
        sinks.push(b.sink(ss));
    }
    (b, sinks)
}

/// Two-stream select plan: exercises Select's delayed sp propagation
/// (per-shard pending flush + exchange dedup) without a shield behind it.
fn select_builder() -> (PlanBuilder, Vec<SinkRef>) {
    let mut b = PlanBuilder::new(catalog());
    let mut sinks = Vec::new();
    for sid in [1u32, 2] {
        let src = b.source(StreamId(sid), schema());
        let sel = b
            .add(Select::new(Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(4)))), src);
        sinks.push(b.sink(sel));
    }
    (b, sinks)
}

#[allow(clippy::type_complexity)]
fn sequential_reference(
    build: BuildFn,
    input: &[(StreamId, StreamElement)],
) -> (Vec<Vec<Element>>, Vec<u8>, Vec<u8>, sp_engine::Checkpoint) {
    let (mut b, sinks) = build();
    telemetry_on(&mut b);
    let mut exec = b.build();
    exec.push_all(input.iter().cloned()).unwrap();
    exec.finish().unwrap();
    let outs = sinks.iter().map(|&s| exec.sink(s).elements().to_vec()).collect::<Vec<_>>();
    let trail = exec.audit_trail().encode_to_vec();
    let sheet = exec.span_sheet().encode_to_vec();
    let ckpt = exec.checkpoint(7, input.len() as u64);
    (outs, trail, sheet, ckpt)
}

#[allow(clippy::type_complexity)]
fn sharded_run(
    build: BuildFn,
    input: &[(StreamId, StreamElement)],
    shards: usize,
) -> (Vec<Vec<Element>>, Vec<u8>, Vec<u8>, sp_engine::Checkpoint) {
    let mut exec = ShardedExecutor::new(
        move || {
            let (mut b, _) = build();
            telemetry_on(&mut b);
            b
        },
        shards,
    )
    .unwrap();
    let (_, sinks) = build();
    exec.push_all(input.iter().cloned()).unwrap();
    exec.finish().unwrap();
    let ckpt = exec.checkpoint(7, input.len() as u64).unwrap();
    let outs = sinks.iter().map(|&s| exec.sink(s).elements().to_vec()).collect::<Vec<_>>();
    let trail = exec.audit_trail().encode_to_vec();
    let sheet = exec.span_sheet().encode_to_vec();
    (outs, trail, sheet, ckpt)
}

fn check_sharded_equivalence(build: BuildFn, items: &[Item], shards: usize) {
    let input = raw_input(items);
    let (want_outs, want_trail, want_sheet, want_ckpt) = sequential_reference(build, &input);
    let (outs, trail, sheet, ckpt) = sharded_run(build, &input, shards);
    prop_assert_eq!(&outs, &want_outs, "released elements diverged at {} shards", shards);
    prop_assert_eq!(&trail, &want_trail, "audit trail diverged at {} shards", shards);
    prop_assert_eq!(&sheet, &want_sheet, "span sheet diverged at {} shards", shards);
    prop_assert_eq!(&ckpt, &want_ckpt, "checkpoint diverged at {} shards", shards);
}

proptest! {
    // Each case spins up real shard threads; keep the count modest so the
    // suite stays fast on small CI boxes.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partitioner_is_pure_stable_and_in_range(
        sid in 0u32..8,
        tid in 0u64..10_000,
        payload in 0i64..100,
        shards in 1usize..=16,
    ) {
        let p = Partitioner::new(shards);
        let a = Tuple::new(StreamId(sid), TupleId(tid), Timestamp(0), vec![Value::Int(payload)]);
        // Same key, different payload and timestamp.
        let b = Tuple::new(
            StreamId(sid),
            TupleId(tid),
            Timestamp(99),
            vec![Value::Int(payload + 1), Value::Int(7)],
        );
        let shard = p.shard_of(&a);
        prop_assert!(shard < shards, "shard {} out of range {}", shard, shards);
        prop_assert_eq!(shard, p.shard_of(&a), "unstable across calls");
        prop_assert_eq!(shard, Partitioner::new(shards).shard_of(&a), "unstable across instances");
        prop_assert_eq!(shard, p.shard_of(&b), "shard must depend only on the key");
    }

    #[test]
    fn shield_plan_sharded_matches_sequential(items in arb_items(), shards in 1usize..=8) {
        check_sharded_equivalence(shield_builder, &items, shards);
    }

    #[test]
    fn select_plan_sharded_matches_sequential(items in arb_items(), shards in 1usize..=8) {
        check_sharded_equivalence(select_builder, &items, shards);
    }

    #[test]
    fn reshard_on_restore_converges(
        items in arb_items(),
        cut_frac in 0usize..100,
        n in 1usize..=4,
        m in 1usize..=4,
    ) {
        let input = raw_input(&items);
        let cut_at = input.len() * cut_frac / 100;
        let (cut, rest) = input.split_at(cut_at);

        let (_, _, _, want_ckpt) = sequential_reference(shield_builder, &input);

        let build = || {
            let (mut b, _) = shield_builder();
            telemetry_on(&mut b);
            b
        };
        let mut at_n = ShardedExecutor::new(build, n).unwrap();
        at_n.push_all(cut.iter().cloned()).unwrap();
        let mid = at_n.checkpoint(1, cut.len() as u64).unwrap();
        drop(at_n);

        let mut at_m = ShardedExecutor::new(build, m).unwrap();
        at_m.restore(&mid).unwrap();
        at_m.push_all(rest.iter().cloned()).unwrap();
        at_m.finish().unwrap();
        let end = at_m.checkpoint(7, input.len() as u64).unwrap();

        // Sinks restart their element lists on restore by design; the
        // analyzer and operator state must converge exactly.
        prop_assert_eq!(&end.analyzers, &want_ckpt.analyzers, "analyzers diverged {}→{}", n, m);
        prop_assert_eq!(&end.nodes, &want_ckpt.nodes, "nodes diverged {}→{}", n, m);
    }
}
