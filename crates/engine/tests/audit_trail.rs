//! Audit-trail invariants under hostile conditions.
//!
//! The flight recorder is a *security* artifact: if the audit trail and
//! the pipeline's observable behaviour can disagree, the trail is worse
//! than useless. These tests pin the correspondence under shedding,
//! quarantine, and missing policies:
//!
//! 1. **release completeness** — every tuple a sink receives has exactly
//!    one `Released` audit record, in delivery order, citing an sp-batch
//!    that was actually pushed;
//! 2. **degradation correspondence** — quarantine and ladder audit events
//!    agree with the engine's fail-closed degradation counters;
//! 3. **determinism** — a sequential run and a pipeline-parallel
//!    checkpointed run of the same plan produce byte-identical audit
//!    trails.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashSet;
use std::sync::Arc;

use sp_core::{
    RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, Timestamp,
    Tuple, TupleId, Value, ValueType,
};
use sp_engine::{
    run_parallel, run_parallel_checkpointed, AuditEvent, AuditOp, CheckpointStore, CmpOp, Expr,
    MemStore, NodeRef, PlanBuilder, QuarantinePolicy, SecurityShield, Select, ShedPolicy, Shedder,
    ShedderConfig, SinkRef, TelemetryConfig,
};

const SEGMENT_MS: u64 = 1_000;
const TUPLES_PER_SEGMENT: u64 = 20;
const SEGMENTS: u64 = 16;
/// Large enough that nothing scrolls off mid-test.
const AUDIT_CAP: usize = 1 << 16;

fn schema() -> Arc<Schema> {
    Schema::of("loc", &[("id", ValueType::Int), ("v", ValueType::Int)])
}

fn catalog() -> Arc<RoleCatalog> {
    let mut c = RoleCatalog::new();
    c.register_synthetic_roles(8);
    Arc::new(c)
}

fn tuple(tid: u64, ts: u64) -> StreamElement {
    StreamElement::tuple(Tuple::new(
        StreamId(1),
        TupleId(tid),
        Timestamp(ts),
        vec![Value::Int(tid as i64), Value::Int((tid % 7) as i64)],
    ))
}

/// Segmented workload; segments listed in `dropped_sps` lose their sp
/// (simulating a lost policy), leaving their tuples ungoverned.
fn workload(dropped_sps: &[u64]) -> Vec<(StreamId, StreamElement)> {
    let mut out = Vec::new();
    for k in 0..SEGMENTS {
        let base = (k + 1) * SEGMENT_MS;
        if !dropped_sps.contains(&k) {
            let mut roles = RoleSet::from([1]);
            roles.insert(RoleId((k % 3) as u32));
            out.push((
                StreamId(1),
                StreamElement::punctuation(SecurityPunctuation::grant_all(roles, Timestamp(base))),
            ));
        }
        for i in 1..=TUPLES_PER_SEGMENT {
            out.push((StreamId(1), tuple(k * 100 + i, base + i * 10)));
        }
    }
    out
}

/// Hardened source -> shedder -> select -> shield -> sink, with the
/// audit trail armed. Capacity/drain pressure the ladder hard enough to
/// escalate under the workload.
fn audited_builder(shed_capacity: u64) -> (PlanBuilder, SinkRef, NodeRef) {
    let mut b = PlanBuilder::new(catalog());
    let src = b.source(StreamId(1), schema());
    b.harden_source(src, QuarantinePolicy { ttl_ms: 500, slack_ms: 400, capacity: 64 });
    let shed = b.add(
        Shedder::new(ShedderConfig {
            capacity: shed_capacity,
            drain_per_ms: 0,
            policy: ShedPolicy::RandomP { p: 0.5, seed: 7 },
            ..ShedderConfig::default()
        }),
        src,
    );
    let sel =
        b.add(Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))), shed);
    let ss = b.add(SecurityShield::new(RoleSet::from([1])), sel);
    let sink = b.sink(ss);
    b.enable_telemetry(TelemetryConfig {
        audit_capacity: AUDIT_CAP,
        span_capacity: 0,
        metrics: false,
    });
    (b, sink, ss)
}

/// All records for one section of the trail.
fn section(trail: &sp_engine::AuditTrail, op: AuditOp) -> Vec<sp_engine::AuditRecord> {
    trail
        .sections()
        .filter(|(o, _)| *o == op)
        .flat_map(|(_, r)| r.records().copied().collect::<Vec<_>>())
        .collect()
}

#[test]
fn every_release_has_exactly_one_matching_audit_record() {
    let input = workload(&[3, 11]);
    let sp_stamps: HashSet<u64> = input
        .iter()
        .filter_map(|(_, e)| match e {
            StreamElement::Punctuation(sp) => Some(sp.ts.0),
            StreamElement::Tuple(_) => None,
        })
        .collect();

    let (b, sink, shield) = audited_builder(8);
    let mut exec = b.build();
    exec.push_all(input).unwrap();
    exec.finish().unwrap();

    let released: Vec<u64> = exec.sink(sink).tuples().map(|t| t.tid.raw()).collect();
    assert!(!released.is_empty(), "workload must release something");

    // The shield is node 2 (shedder 0, select 1).
    let trail = exec.audit_trail();
    let shield_records = section(&trail, AuditOp::Node(2));
    let audited: Vec<u64> = shield_records
        .iter()
        .filter_map(|r| match r.event {
            AuditEvent::Released { sp_ts, .. } => {
                assert!(
                    sp_stamps.contains(&sp_ts),
                    "release of tuple {} cites sp @{sp_ts}, which was never pushed",
                    r.tid
                );
                Some(r.tid)
            }
            _ => None,
        })
        .collect();
    // Exactly one Released record per delivered tuple, in delivery order.
    assert_eq!(audited, released);

    // And the shield audited a decision for every tuple it saw: released
    // plus suppressed equals the operator's tuple count.
    let suppressed =
        shield_records.iter().filter(|r| matches!(r.event, AuditEvent::Suppressed { .. })).count();
    let shield_stats = exec.stats(shield);
    assert_eq!((released.len() + suppressed) as u64, shield_stats.tuples_in);
}

#[test]
fn quarantine_and_ladder_events_match_degradation_counters() {
    let input = workload(&[2, 7, 13]);
    let (b, _sink, _) = audited_builder(6);
    let mut exec = b.build();
    exec.push_all(input).unwrap();
    exec.finish().unwrap();

    let d = exec.degradation();
    assert!(d.quarantined > 0, "dropped sps must quarantine tuples");
    assert!(d.shed_tuples > 0, "tight shedder must shed");
    assert!(d.ladder_escalations > 0, "overload must escalate the ladder");

    let trail = exec.audit_trail();
    let analyzer_records = section(&trail, AuditOp::Source(0));
    let quarantined = analyzer_records
        .iter()
        .filter(|r| matches!(r.event, AuditEvent::Quarantined { .. }))
        .count() as u64;
    let q_released = analyzer_records
        .iter()
        .filter(|r| matches!(r.event, AuditEvent::QuarantineReleased))
        .count() as u64;
    let q_dropped = analyzer_records
        .iter()
        .filter(|r| matches!(r.event, AuditEvent::QuarantineDropped { .. }))
        .count() as u64;
    assert_eq!(quarantined, d.quarantined);
    assert_eq!(q_released, d.quarantine_released);
    assert_eq!(q_dropped, d.quarantine_dropped);

    // Every ladder move left a record; every shed tuple did too.
    let shedder_records = section(&trail, AuditOp::Node(0));
    let transitions = shedder_records
        .iter()
        .filter(|r| matches!(r.event, AuditEvent::LadderTransition { .. }))
        .count() as u64;
    assert_eq!(transitions, d.ladder_escalations + d.ladder_recoveries);
    let shed = shedder_records.iter().filter(|r| matches!(r.event, AuditEvent::Shed { .. })).count()
        as u64;
    assert_eq!(shed, d.shed_tuples);

    // A FailClosed peak must be visible in the trail as a transition
    // *into* rung 3 — the record an incident review would look for.
    if d.overload_peak == 3 {
        assert!(
            shedder_records
                .iter()
                .any(|r| matches!(r.event, AuditEvent::LadderTransition { to, .. } if to == 3)),
            "ladder peaked at FailClosed but no transition to rung 3 was audited"
        );
    }
}

#[test]
fn sequential_and_parallel_audit_trails_encode_identically() {
    let input = workload(&[5]);

    // Sequential reference. No `finish()`: the parallel runner feeds and
    // closes without flushing trailing analyzer batches, and the audit
    // comparison needs both sides to see the same element sequence.
    let (b, _, _) = audited_builder(8);
    let mut exec = b.build();
    exec.push_all(input.clone()).unwrap();
    let sequential = exec.audit_trail().encode_to_vec();
    assert!(!sequential.is_empty());

    // Plain parallel run.
    let (b, _, _) = audited_builder(8);
    let results = run_parallel(b, input.clone()).unwrap();
    assert_eq!(
        results.audit_trail().encode_to_vec(),
        sequential,
        "parallel audit trail diverged from sequential"
    );

    // Parallel run with epoch checkpointing interleaved: barriers must
    // not perturb the audit stream.
    let (b, _, _) = audited_builder(8);
    let mut store = MemStore::default();
    let results = run_parallel_checkpointed(b, input, 64, &mut store).unwrap();
    assert!(store.count() > 0);
    assert_eq!(
        results.audit_trail().encode_to_vec(),
        sequential,
        "checkpointed parallel audit trail diverged from sequential"
    );
}

/// Same shape as [`audited_builder`] but with the span recorders armed
/// and a shield requiring role 0 — which the workload grants only in
/// every third segment — so the trace carries both release *and*
/// suppress spans for the three execution modes to agree on.
fn span_builder(shed_capacity: u64) -> PlanBuilder {
    let mut b = PlanBuilder::new(catalog());
    let src = b.source(StreamId(1), schema());
    b.harden_source(src, QuarantinePolicy { ttl_ms: 500, slack_ms: 400, capacity: 64 });
    let shed = b.add(
        Shedder::new(ShedderConfig {
            capacity: shed_capacity,
            drain_per_ms: 0,
            policy: ShedPolicy::RandomP { p: 0.5, seed: 7 },
            ..ShedderConfig::default()
        }),
        src,
    );
    let sel =
        b.add(Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))), shed);
    let ss = b.add(SecurityShield::new(RoleSet::from([0])), sel);
    let _sink = b.sink(ss);
    b.enable_telemetry(TelemetryConfig {
        audit_capacity: AUDIT_CAP,
        span_capacity: AUDIT_CAP,
        metrics: false,
    });
    b
}

#[test]
fn sequential_and_parallel_span_sheets_encode_identically() {
    let input = workload(&[5]);

    // Sequential reference (no `finish()`, for the same reason as the
    // audit-trail equality test above). A roomy shedder keeps the whole
    // workload flowing so every segment reaches the shield.
    const SHED: u64 = 1 << 16;
    let mut exec = span_builder(SHED).build();
    exec.push_all(input.clone()).unwrap();
    let sheet = exec.span_sheet();
    let sequential = sheet.encode_to_vec();
    assert!(!sheet.is_empty(), "armed span recorders must capture the run");
    assert_eq!(sheet.evicted(), 0, "capacity must hold the whole run for this comparison");

    // The sheet must cover the full enforcement path: analyzer decision,
    // shield enforcement, and both verdicts.
    use sp_core::trace::site;
    let sites: HashSet<u8> = sheet.records().map(|(_, r)| r.site).collect();
    for s in [site::ANALYZE, site::SHIELD_ENFORCE, site::RELEASE, site::SUPPRESS] {
        assert!(sites.contains(&s), "missing {} spans", site::name(s));
    }
    // Every non-root span points at a parent derived from the same trace:
    // the tree is causally connected, not a flat list.
    for (_, r) in sheet.records() {
        if r.parent != 0 && r.site != site::WIRE_FRAME {
            assert_ne!(r.parent, r.span_id, "span cannot parent itself");
        }
    }

    // Plain parallel run: per-operator threads must record the same
    // spans in the same canonical order.
    let results = run_parallel(span_builder(SHED), input.clone()).unwrap();
    assert_eq!(
        results.span_sheet().encode_to_vec(),
        sequential,
        "parallel span sheet diverged from sequential"
    );

    // Parallel run with epoch checkpoints interleaved: barriers must not
    // perturb the trace either.
    let mut store = MemStore::default();
    let results = run_parallel_checkpointed(span_builder(SHED), input, 64, &mut store).unwrap();
    assert!(store.count() > 0);
    assert_eq!(
        results.span_sheet().encode_to_vec(),
        sequential,
        "checkpointed parallel span sheet diverged from sequential"
    );
}

#[test]
fn audit_ring_bounds_memory_and_counts_evictions() {
    let input = workload(&[]);
    let mut b = PlanBuilder::new(catalog());
    let src = b.source(StreamId(1), schema());
    let ss_ref = b.add(SecurityShield::new(RoleSet::from([1])), src);
    let _sink = b.sink(ss_ref);
    // Tiny ring: most decisions must scroll off, but the recorder keeps
    // exactly the most recent `capacity` and counts the rest.
    b.enable_telemetry(TelemetryConfig { audit_capacity: 16, span_capacity: 0, metrics: false });
    let mut exec = b.build();
    exec.push_all(input).unwrap();
    let trail = exec.audit_trail();
    let shield = section(&trail, AuditOp::Node(0));
    assert_eq!(shield.len(), 16);
    assert!(trail.evicted() > 0);
    let shield_stats = exec.stats(ss_ref);
    assert_eq!(16 + trail.evicted(), shield_stats.tuples_in);
}

#[test]
fn restore_clears_the_audit_trail_for_replay() {
    let input = workload(&[]);
    let (b, _, _) = audited_builder(64);
    let mut exec = b.build();
    exec.push_all(input.iter().take(40).cloned()).unwrap();
    let ckpt = exec.checkpoint(1, 40);
    exec.push_all(input.iter().skip(40).take(40).cloned()).unwrap();
    assert!(!exec.audit_trail().is_empty());

    // Restore rewinds operator state; the audit trail must start empty so
    // replayed decisions are recorded once, not twice.
    exec.restore(&ckpt).unwrap();
    assert_eq!(exec.audit_trail().len(), 0, "restore must clear flight recorders");
    exec.push_all(input.iter().skip(40).take(40).cloned()).unwrap();
    let replayed = exec.audit_trail().encode_to_vec();

    // A cold executor restored from the same cut and fed the same replay
    // produces a byte-identical trail: audit replay is deterministic.
    let (b, _, _) = audited_builder(64);
    let mut cold = b.build();
    cold.restore(&ckpt).unwrap();
    cold.push_all(input.iter().skip(40).take(40).cloned()).unwrap();
    assert_eq!(cold.audit_trail().encode_to_vec(), replayed);
}
