//! The disabled sp-trace path must be zero-cost: with the runtime span
//! toggle off, feeding records into an *armed* recorder performs no heap
//! allocation and retains nothing.
//!
//! Lives in its own integration binary so the counting global allocator
//! and the process-wide toggle cannot interfere with any other test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sp_engine::telemetry::span;
use sp_engine::{SpanRecord, SpanRecorder};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn disabled_span_recording_does_not_allocate() {
    let mut rec = SpanRecorder::new(64);
    assert!(rec.capacity() > 0, "the recorder is armed; only the toggle is off");

    span::set_enabled(false);
    assert!(!rec.enabled());
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        rec.record(SpanRecord::at(i, 0, 0, i, i));
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    span::set_enabled(true);

    assert_eq!(after, before, "disabled span path allocated");
    assert!(rec.is_empty(), "disabled span path retained records");
    assert_eq!(rec.evicted(), 0);

    // Sanity: the same recorder records once the toggle is back on.
    rec.record(SpanRecord::at(1, 0, 0, 1, 1));
    assert_eq!(rec.len(), 1);
}
