//! Property tests for the telemetry layer's mergeable state.
//!
//! Parallel runs merge per-worker statistics in whatever order workers
//! finish, so every merge operation the telemetry layer exposes must be
//! **associative and order-insensitive**: histograms, operator counters,
//! degradation stats, and the metrics registry itself. The flight
//! recorder's encoding must be a pure function of the recorded sequence.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use sp_engine::{
    AuditEvent, CostKind, DegradationStats, FlightRecorder, Histogram, MetricsRegistry,
    OperatorStats,
};

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// A `DegradationStats` with every counter driven from one seed array.
fn degradation_of(vals: &[u64]) -> DegradationStats {
    let mut d = DegradationStats::new();
    let mut names = d.named_counters().map(|(n, _)| n).into_iter();
    // Assign by declaration order, matching `named_counters`.
    d.sps_filtered = vals[0];
    d.sps_merged = vals[1];
    d.stale_sp_batches = vals[2];
    d.quarantined = vals[3];
    d.quarantine_released = vals[4];
    d.quarantine_dropped = vals[5];
    d.reorder_dropped = vals[6];
    d.corrupted_frames = vals[7];
    d.checkpoints_taken = vals[8];
    d.checkpoints_restored = vals[9];
    d.epochs_replayed = vals[10];
    d.recovery_dropped = vals[11];
    d.restart_attempts = vals[12];
    d.shed_tuples = vals[13];
    d.shed_critical = vals[14];
    d.admission_rejected = vals[15];
    d.ladder_escalations = vals[16];
    d.ladder_recoveries = vals[17];
    d.overload_peak = vals[18];
    d.overload_level = vals[19];
    assert_eq!(names.next(), Some("sps_filtered"), "named_counters order drifted");
    d
}

fn stats_of(vals: &[u64], nanos: u64) -> OperatorStats {
    let mut s = OperatorStats::new();
    s.tuples_in = vals[0];
    s.tuples_out = vals[1];
    s.sps_in = vals[2];
    s.sps_out = vals[3];
    s.tuples_shielded = vals[4];
    s.charge(CostKind::Tuple, std::time::Duration::from_nanos(nanos));
    s
}

/// `OperatorStats` has no `PartialEq` (time buckets are measurements);
/// compare the checkpointable counters plus the charged time.
fn stats_key(s: &OperatorStats) -> (Vec<u8>, std::time::Duration) {
    let mut buf = Vec::new();
    s.encode_counters(&mut buf);
    (buf, s.total_time())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn histogram_merge_is_commutative(
        a in prop::collection::vec(0u64..u64::MAX, 0..64),
        b in prop::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_merge_is_associative(
        a in prop::collection::vec(0u64..1 << 40, 0..32),
        b in prop::collection::vec(0u64..1 << 40, 0..32),
        c in prop::collection::vec(0u64..1 << 40, 0..32),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn histogram_merge_equals_single_pass(
        a in prop::collection::vec(0u64..1 << 40, 0..48),
        b in prop::collection::vec(0u64..1 << 40, 0..48),
    ) {
        // Splitting a stream across workers and merging loses nothing.
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let mut whole: Vec<u64> = a.clone();
        whole.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&whole));
    }

    #[test]
    fn histogram_percentile_is_an_upper_bound(
        values in prop::collection::vec(0u64..1 << 30, 1..64),
        p in 1.0f64..100.0,
    ) {
        // Log-bucketing rounds up to a bucket boundary: the reported
        // percentile never under-states the true order statistic.
        let h = hist_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
        let exact = sorted[rank.min(sorted.len()) - 1];
        prop_assert!(h.percentile(p) >= exact);
    }

    #[test]
    fn degradation_absorb_is_commutative(
        a in prop::collection::vec(0u64..1 << 40, 20..21),
        b in prop::collection::vec(0u64..1 << 40, 20..21),
    ) {
        let (da, db) = (degradation_of(&a), degradation_of(&b));
        let mut ab = da;
        ab.absorb(&db);
        let mut ba = db;
        ba.absorb(&da);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn degradation_absorb_is_associative(
        a in prop::collection::vec(0u64..1 << 40, 20..21),
        b in prop::collection::vec(0u64..1 << 40, 20..21),
        c in prop::collection::vec(0u64..1 << 40, 20..21),
    ) {
        let (da, db, dc) = (degradation_of(&a), degradation_of(&b), degradation_of(&c));
        let mut left = da;
        left.absorb(&db);
        left.absorb(&dc);
        let mut tail = db;
        tail.absorb(&dc);
        let mut right = da;
        right.absorb(&tail);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn operator_stats_merge_is_commutative(
        a in prop::collection::vec(0u64..1 << 40, 5..6),
        na in 0u64..1_000_000,
        b in prop::collection::vec(0u64..1 << 40, 5..6),
        nb in 0u64..1_000_000,
    ) {
        let (sa, sb) = (stats_of(&a, na), stats_of(&b, nb));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(stats_key(&ab), stats_key(&ba));
    }

    #[test]
    fn flight_recorder_encoding_is_deterministic(
        events in prop::collection::vec((0u64..100, 0u64..1000, 0u32..8, 0u64..1000), 0..40),
        capacity in 1usize..16,
    ) {
        // Two recorders fed the same sequence — including ring evictions —
        // encode identically; the encoding depends only on the sequence.
        let mut r1 = FlightRecorder::new(capacity);
        let mut r2 = FlightRecorder::new(capacity);
        for &(tid, ts, role, sp_ts) in &events {
            r1.record(tid, ts, AuditEvent::Released { role, sp_ts });
            r2.record(tid, ts, AuditEvent::Released { role, sp_ts });
        }
        let mut b1 = Vec::new();
        let mut b2 = Vec::new();
        r1.encode(&mut b1);
        r2.encode(&mut b2);
        prop_assert_eq!(b1, b2);
        prop_assert!(r1.len() <= capacity);
        prop_assert_eq!(r1.len() as u64 + r1.evicted(), events.len() as u64);
    }

    #[test]
    fn registry_merge_is_order_insensitive(
        counts in prop::collection::vec((0usize..4, 0u64..1000), 0..24),
        lats in prop::collection::vec((0usize..4, 0u64..1 << 30), 0..24),
    ) {
        // Build per-"worker" registries, merge them in two different
        // orders, and demand an identical exposition either way.
        let ops = ["ss", "select", "shed", "sajoin"];
        let mut workers: Vec<MetricsRegistry> = (0..4).map(|_| MetricsRegistry::new()).collect();
        for (i, &(op, v)) in counts.iter().enumerate() {
            workers[i % 4].add_counter(
                "sp_tuples_in_total",
                "Tuples entering an operator",
                &format!("op=\"{}\"", ops[op]),
                v,
            );
        }
        for (i, &(op, v)) in lats.iter().enumerate() {
            let mut h = Histogram::new();
            h.record(v);
            workers[i % 4].merge_histogram(
                "sp_operator_latency_ns",
                "Per-call operator process latency",
                &format!("op=\"{}\"", ops[op]),
                &h,
            );
        }
        let mut forward = MetricsRegistry::new();
        for w in &workers {
            forward.merge(w);
        }
        let mut backward = MetricsRegistry::new();
        for w in workers.iter().rev() {
            backward.merge(w);
        }
        prop_assert_eq!(forward.render_prometheus(), backward.render_prometheus());
        prop_assert_eq!(forward.render_json(), backward.render_json());
    }
}
