//! Differential properties for batch execution: for every operator and
//! for whole plans, the batched dataflow must be **observationally
//! identical** to tuple-at-a-time execution.
//!
//! Three layers of evidence, over randomized sp/tuple workloads:
//!
//! 1. **operator differential** — feeding a random element stream through
//!    `process` one element at a time versus through `process_batch` at
//!    random cut points (including deliberately *mixed-kind* batches that
//!    the routers never produce) yields the same emissions, the same
//!    snapshot bytes (which embed the logical counters), and the same
//!    audit-trail bytes;
//! 2. **executor differential** — a multi-operator plan run with batching
//!    enabled (`push_all`) matches the same plan run element-at-a-time
//!    with batching disabled: same sink contents, same operator
//!    checkpoints, same audit trail;
//! 3. **ingestion-path differential** — `push_all` (deferred drains) and
//!    per-element `push` (eager drains) agree on the same batched plan.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use proptest::prelude::*;
use sp_core::{
    RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, Timestamp,
    Tuple, TupleId, Value, ValueType,
};
use sp_engine::{
    AggFunc, CmpOp, DupElim, Element, ElementBatch, Emitter, Expr, GroupBy, JoinVariant, Operator,
    PlanBuilder, Project, SAIntersect, SAJoin, SecurityShield, Select, ShedPolicy, Shedder,
    ShedderConfig, Sink, SinkRef, TelemetryConfig, Union,
};

const AUDIT_CAP: usize = 1 << 12;

fn schema() -> Arc<Schema> {
    Schema::of("s", &[("k", ValueType::Int), ("v", ValueType::Int)])
}

fn catalog() -> Arc<RoleCatalog> {
    let mut c = RoleCatalog::new();
    c.register_synthetic_roles(8);
    Arc::new(c)
}

/// One raw workload item: an sp-batch grant or a tuple.
#[derive(Debug, Clone)]
enum Item {
    Sp(Vec<u32>),
    Tup(i64, i64),
}

fn arb_items() -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(0u32..6, 0..3).prop_map(Item::Sp),
            (0i64..6, 0i64..50).prop_map(|(k, v)| Item::Tup(k, v)),
        ],
        4..48,
    )
}

/// Random batch-cut lengths (cycled over the element stream). Lengths of
/// 1 reproduce tuple-at-a-time; longer cuts can straddle kind boundaries,
/// producing the mixed batches the equivalence contract also covers.
fn arb_cuts() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..6, 1..8)
}

fn raw_stream(items: &[Item]) -> Vec<StreamElement> {
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let ts = Timestamp(i as u64 + 1);
            match item {
                Item::Sp(roles) => {
                    let rs: RoleSet = roles.iter().map(|&r| RoleId(r)).collect();
                    StreamElement::punctuation(SecurityPunctuation::grant_all(rs, ts))
                }
                Item::Tup(k, v) => StreamElement::tuple(Tuple::new(
                    StreamId(1),
                    TupleId(i as u64),
                    ts,
                    vec![Value::Int(*k), Value::Int(*v)],
                )),
            }
        })
        .collect()
}

/// Converts raw stream elements to engine elements through an analyzer,
/// the form every operator consumes.
fn engine_elements(items: &[Item]) -> Vec<Element> {
    let mut analyzer = sp_engine::SpAnalyzer::new(schema(), catalog());
    let mut out = Vec::new();
    let mut staged = Vec::new();
    for raw in raw_stream(items) {
        staged.clear();
        analyzer.push(raw, &mut staged);
        out.append(&mut staged);
    }
    out
}

fn snapshot_of(op: &dyn Operator) -> Vec<u8> {
    let mut buf = Vec::new();
    op.snapshot(&mut buf);
    buf
}

fn audit_of(op: &dyn Operator) -> Vec<u8> {
    let mut buf = Vec::new();
    if let Some(rec) = op.audit() {
        rec.encode(&mut buf);
    }
    buf
}

/// Port assignment: unary operators take everything on port 0; binary
/// operators take blocks of three per side so batch runs actually form.
fn port_of(i: usize, arity: usize) -> usize {
    if arity > 1 {
        (i / 3) % 2
    } else {
        0
    }
}

/// Reference semantics: strict tuple-at-a-time `process`.
fn feed_elements(op: &mut dyn Operator, elems: &[Element]) -> Vec<String> {
    let arity = op.arity();
    let mut emitter = Emitter::new();
    let mut out = Vec::new();
    for (i, e) in elems.iter().enumerate() {
        op.process(port_of(i, arity), e.clone(), &mut emitter).unwrap();
        out.extend(emitter.take().iter().map(|e| format!("{e:?}")));
    }
    out
}

/// Candidate semantics: `process_batch` at the given cut lengths. A batch
/// breaks early when the port flips (batches never span ports), but NOT
/// at kind boundaries — mixed batches are deliberately exercised.
fn feed_batches(op: &mut dyn Operator, elems: &[Element], cuts: &[usize]) -> Vec<String> {
    let arity = op.arity();
    let mut emitter = Emitter::new();
    let mut out = Vec::new();
    let mut cut_ix = 0usize;
    let mut i = 0usize;
    while i < elems.len() {
        let port = port_of(i, arity);
        let want = cuts[cut_ix % cuts.len()].max(1);
        cut_ix += 1;
        let mut batch = ElementBatch::single(elems[i].clone());
        i += 1;
        while batch.len() < want && i < elems.len() && port_of(i, arity) == port {
            batch.push(elems[i].clone());
            i += 1;
        }
        op.process_batch(port, batch, &mut emitter).unwrap();
        out.extend(emitter.take().iter().map(|e| format!("{e:?}")));
    }
    out
}

/// The operator differential: element-at-a-time vs batched at random cuts
/// must produce the same emissions, snapshot bytes, and audit bytes.
fn check_operator(mut fresh: impl FnMut() -> Box<dyn Operator>, items: &[Item], cuts: &[usize]) {
    let elems = engine_elements(items);

    let mut reference = fresh();
    reference.set_audit(AUDIT_CAP);
    let out_ref = feed_elements(reference.as_mut(), &elems);

    let mut batched = fresh();
    batched.set_audit(AUDIT_CAP);
    let out_batched = feed_batches(batched.as_mut(), &elems, cuts);

    prop_assert_eq!(out_ref, out_batched, "{}: emissions diverged", reference.name());
    prop_assert_eq!(
        snapshot_of(reference.as_ref()),
        snapshot_of(batched.as_ref()),
        "{}: snapshot bytes diverged",
        reference.name()
    );
    prop_assert_eq!(
        audit_of(reference.as_ref()),
        audit_of(batched.as_ref()),
        "{}: audit records diverged",
        reference.name()
    );
}

fn shedder_cfg() -> ShedderConfig {
    ShedderConfig {
        capacity: 8,
        drain_per_ms: 2,
        policy: ShedPolicy::RandomP { p: 0.5, seed: 11 },
        ..ShedderConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn select_batch_equiv(items in arb_items(), cuts in arb_cuts()) {
        check_operator(
            || Box::new(Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(10))))),
            &items,
            &cuts,
        );
    }

    #[test]
    fn project_batch_equiv(items in arb_items(), cuts in arb_cuts()) {
        check_operator(|| Box::new(Project::new(vec![0])), &items, &cuts);
    }

    #[test]
    fn shield_batch_equiv(items in arb_items(), cuts in arb_cuts()) {
        // Both a role the workload frequently grants (bulk release path)
        // and one it rarely grants (bulk suppress path).
        for roles in [RoleSet::from([1, 3]), RoleSet::from([7])] {
            check_operator(|| Box::new(SecurityShield::new(roles.clone())), &items, &cuts);
        }
    }

    #[test]
    fn sink_batch_equiv(items in arb_items(), cuts in arb_cuts()) {
        let elems = engine_elements(&items);
        let mut reference = Sink::new();
        feed_elements(&mut reference, &elems);
        let mut batched = Sink::new();
        feed_batches(&mut batched, &elems, &cuts);
        prop_assert_eq!(reference.elements(), batched.elements());
        prop_assert_eq!(snapshot_of(&reference), snapshot_of(&batched));
    }

    #[test]
    fn shedder_batch_equiv(items in arb_items(), cuts in arb_cuts()) {
        check_operator(|| Box::new(Shedder::new(shedder_cfg())), &items, &cuts);
    }

    #[test]
    fn dupelim_batch_equiv(items in arb_items(), cuts in arb_cuts()) {
        check_operator(|| Box::new(DupElim::new(vec![0], 10)), &items, &cuts);
    }

    #[test]
    fn groupby_batch_equiv(items in arb_items(), cuts in arb_cuts()) {
        for agg in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            check_operator(|| Box::new(GroupBy::new(Some(0), agg, 1, 10)), &items, &cuts);
        }
    }

    #[test]
    fn union_batch_equiv(items in arb_items(), cuts in arb_cuts()) {
        check_operator(|| Box::new(Union::new()), &items, &cuts);
    }

    #[test]
    fn saintersect_batch_equiv(items in arb_items(), cuts in arb_cuts()) {
        check_operator(|| Box::new(SAIntersect::new(10)), &items, &cuts);
    }

    #[test]
    fn sajoin_batch_equiv(items in arb_items(), cuts in arb_cuts()) {
        for variant in [JoinVariant::Index, JoinVariant::NestedLoopPF, JoinVariant::NestedLoopFP] {
            check_operator(|| Box::new(SAJoin::new(variant, 10, 0, 0, 2)), &items, &cuts);
        }
    }

    /// Executor differential: the same plan, same raw input, run batched
    /// (`push_all`) and tuple-at-a-time (`set_batching(false)` + `push`),
    /// must release identical sink contents, identical operator
    /// checkpoints, and an identical audit trail.
    #[test]
    fn executor_batch_equiv(items in arb_items()) {
        let raw = raw_stream(&items);
        let input: Vec<(StreamId, StreamElement)> =
            raw.iter().map(|e| (StreamId(1), e.clone())).collect();

        let (b, sinks) = equiv_plan();
        let mut batched = b.build();
        batched.push_all(input.iter().cloned()).unwrap();
        batched.finish().unwrap();

        let (b, _) = equiv_plan();
        let mut tuple_mode = b.build();
        tuple_mode.set_batching(false);
        for (sid, e) in &input {
            tuple_mode.push(*sid, e.clone()).unwrap();
        }
        tuple_mode.finish().unwrap();

        for s in &sinks {
            prop_assert_eq!(
                batched.sink(*s).elements(),
                tuple_mode.sink(*s).elements(),
                "sink contents diverged between batched and tuple mode"
            );
        }
        let ck_b = batched.checkpoint(0, 0);
        let ck_t = tuple_mode.checkpoint(0, 0);
        prop_assert_eq!(ck_b.analyzers, ck_t.analyzers, "analyzer state diverged");
        prop_assert_eq!(ck_b.nodes, ck_t.nodes, "operator state diverged");
        prop_assert_eq!(
            batched.audit_trail().encode_to_vec(),
            tuple_mode.audit_trail().encode_to_vec(),
            "audit trails diverged"
        );
    }

    /// Ingestion differential: on the batched executor, `push_all`
    /// (deferred drains) and per-element `push` (eager drains) agree.
    #[test]
    fn push_all_matches_eager_push(items in arb_items()) {
        let raw = raw_stream(&items);
        let input: Vec<(StreamId, StreamElement)> =
            raw.iter().map(|e| (StreamId(1), e.clone())).collect();

        let (b, sinks) = equiv_plan();
        let mut deferred = b.build();
        deferred.push_all(input.iter().cloned()).unwrap();
        deferred.finish().unwrap();

        let (b, _) = equiv_plan();
        let mut eager = b.build();
        for (sid, e) in &input {
            eager.push(*sid, e.clone()).unwrap();
        }
        eager.finish().unwrap();

        for s in &sinks {
            prop_assert_eq!(deferred.sink(*s).elements(), eager.sink(*s).elements());
        }
        let ck_d = deferred.checkpoint(0, 0);
        let ck_e = eager.checkpoint(0, 0);
        prop_assert_eq!(ck_d.analyzers, ck_e.analyzers);
        prop_assert_eq!(ck_d.nodes, ck_e.nodes);
    }
}

/// The plan both executor properties run: source → shedder → select →
/// two shields (fan-out) → two sinks, with the audit trail armed. Covers
/// fan-out routing, the shedder's virtual-queue accounting, the shield's
/// bulk release/suppress paths, and delayed sp propagation.
fn equiv_plan() -> (PlanBuilder, Vec<SinkRef>) {
    let mut b = PlanBuilder::new(catalog());
    let src = b.source(StreamId(1), schema());
    let shed = b.add(Shedder::new(shedder_cfg()), src);
    let sel =
        b.add(Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))), shed);
    let q0 = b.add(SecurityShield::new(RoleSet::from([1])), sel);
    let q1 = b.add(SecurityShield::new(RoleSet::from([4])), sel);
    let s0 = b.sink(q0);
    let s1 = b.sink(q1);
    b.enable_telemetry(TelemetryConfig {
        audit_capacity: AUDIT_CAP,
        span_capacity: 0,
        metrics: false,
    });
    (b, vec![s0, s1])
}

/// Deterministic witness for the mixed-kind contract: a single batch
/// holding policy/tuple/policy/tuple must behave exactly like the same
/// four elements processed one at a time.
#[test]
fn mixed_kind_batch_matches_per_element() {
    let elems = engine_elements(&[
        Item::Sp(vec![1]),
        Item::Tup(1, 20),
        Item::Sp(vec![2]),
        Item::Tup(2, 30),
    ]);
    assert!(elems.len() >= 4, "analyzer must resolve the workload");

    type OpFactory = Box<dyn Fn() -> Box<dyn Operator>>;
    let ops: Vec<(&str, OpFactory)> = vec![
        ("shield", Box::new(|| Box::new(SecurityShield::new(RoleSet::from([1]))))),
        (
            "select",
            Box::new(|| {
                Box::new(Select::new(Expr::cmp(
                    CmpOp::Ge,
                    Expr::Attr(1),
                    Expr::Const(Value::Int(0)),
                )))
            }),
        ),
        ("project", Box::new(|| Box::new(Project::new(vec![0])))),
        ("shedder", Box::new(|| Box::new(Shedder::new(shedder_cfg())))),
    ];
    for (name, fresh) in ops {
        let mut reference = fresh();
        reference.set_audit(AUDIT_CAP);
        let out_ref = feed_elements(reference.as_mut(), &elems);

        let mut batched = fresh();
        batched.set_audit(AUDIT_CAP);
        let mut emitter = Emitter::new();
        let mut iter = elems.iter().cloned();
        let mut batch = ElementBatch::single(iter.next().unwrap());
        for e in iter {
            batch.push(e); // deliberately ignores kind boundaries
        }
        assert!(batch.is_control(), "the witness batch must be mixed");
        batched.process_batch(0, batch, &mut emitter).unwrap();
        let out_batched: Vec<String> = emitter.take().iter().map(|e| format!("{e:?}")).collect();

        assert_eq!(out_ref, out_batched, "{name}: mixed-kind emissions diverged");
        assert_eq!(
            snapshot_of(reference.as_ref()),
            snapshot_of(batched.as_ref()),
            "{name}: mixed-kind snapshot diverged"
        );
        assert_eq!(
            audit_of(reference.as_ref()),
            audit_of(batched.as_ref()),
            "{name}: mixed-kind audit diverged"
        );
    }
}
