//! The **security-punctuation** mechanism (§I-C, the paper's approach),
//! wrapped behind the common [`EnforcementMechanism`] interface so the
//! Fig. 7 harness can drive all three mechanisms over identical input.
//!
//! Internally this is the real engine path: the SP Analyzer resolves
//! punctuation batches into shared segment policies and a Security Shield
//! enforces the query's roles, caching the per-segment verdict so tuples
//! sharing an sp are processed in O(1).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sp_core::{RoleCatalog, RoleSet, Schema, StreamElement, Tuple};
use sp_engine::{Element, Emitter, Operator, SecurityShield, SegmentPolicy, SpAnalyzer};

use crate::mechanism::{EnforcementMechanism, MechStats};

/// The punctuation-based mechanism.
pub struct SpMechanism {
    analyzer: SpAnalyzer,
    shield: SecurityShield,
    /// Capacity of the in-flight buffer (tuples concurrently inside the
    /// system). Each slot records which *shared* segment policy governs it;
    /// distinct policies are counted once in the memory metric — the
    /// punctuation model's sharing advantage.
    in_flight: usize,
    /// Run-length encoded in-flight buffer: `(segment policy, tuples under
    /// it)`. Consecutive tuples share a segment, so the hot path is an
    /// integer increment — the sharing that makes the sp model cheap.
    window: VecDeque<(Option<Arc<SegmentPolicy>>, u32)>,
    window_total: usize,
    current: Option<Arc<SegmentPolicy>>,
    current_fresh: bool,
    staged: Vec<Element>,
    emitter: Emitter,
    stats: MechStats,
}

impl SpMechanism {
    /// A mechanism instance enforcing for a query with `query_roles`,
    /// buffering up to `in_flight` tuples.
    #[must_use]
    pub fn new(
        catalog: Arc<RoleCatalog>,
        schema: Arc<Schema>,
        query_roles: RoleSet,
        in_flight: usize,
    ) -> Self {
        Self {
            analyzer: SpAnalyzer::new(schema, catalog),
            // The mechanism has its own stopwatch; the shield's internal
            // per-element timing would double-count clock reads.
            shield: SecurityShield::new(query_roles).without_timing(),
            in_flight: in_flight.max(1),
            window: VecDeque::new(),
            window_total: 0,
            current: None,
            current_fresh: false,
            staged: Vec::new(),
            emitter: Emitter::new(),
            stats: MechStats::default(),
        }
    }

    /// Current retained tuple count.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window_total
    }
}

impl EnforcementMechanism for SpMechanism {
    fn name(&self) -> &'static str {
        "security-punctuations"
    }

    fn process(&mut self, elem: StreamElement, out: &mut Vec<Arc<Tuple>>) {
        let start = Instant::now();
        self.staged.clear();
        self.analyzer.push(elem, &mut self.staged);
        for e in self.staged.drain(..) {
            // In-flight bookkeeping (memory metric only).
            match &e {
                Element::Policy(seg) => {
                    self.current = Some(seg.clone());
                    self.current_fresh = true;
                }
                Element::Tuple(_) => {
                    match self.window.back_mut() {
                        Some(back) if !self.current_fresh => back.1 += 1,
                        _ => {
                            self.window.push_back((self.current.clone(), 1));
                            self.current_fresh = false;
                        }
                    }
                    self.window_total += 1;
                    while self.window_total > self.in_flight {
                        let Some(front) = self.window.front_mut() else { break };
                        front.1 -= 1;
                        self.window_total -= 1;
                        if front.1 == 0 {
                            self.window.pop_front();
                        }
                    }
                }
            }
            // Enforcement. A shield error means the element cannot be
            // safely released — drop it and whatever the shield staged
            // (fail closed).
            if self.shield.process(0, e, &mut self.emitter).is_err() {
                let _ = self.emitter.take();
                continue;
            }
            for released in self.emitter.drain() {
                if let Element::Tuple(t) = released {
                    self.stats.released += 1;
                    out.push(t);
                }
            }
        }
        self.stats.elapsed += start.elapsed();
    }

    fn policy_mem_bytes(&self) -> usize {
        // Policies are shared between the tuples of a segment: each
        // in-flight segment policy is counted once (bitmap encoding — the
        // sp model's compact form), plus the shield's own state.
        self.window.iter().filter_map(|(p, _)| p.as_ref().map(|p| p.mem_bytes())).sum::<usize>()
            + self.shield.state_mem_bytes()
    }

    fn elapsed(&self) -> Duration {
        self.stats.elapsed
    }

    fn released(&self) -> u64 {
        self.stats.released
    }

    fn denied(&self) -> u64 {
        self.shield.stats().tuples_shielded
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::mechanism::run_mechanism;
    use sp_core::{RoleId, SecurityPunctuation, StreamId, Timestamp, TupleId, Value, ValueType};

    fn setup(roles: &[u32]) -> SpMechanism {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(16);
        SpMechanism::new(
            Arc::new(c),
            Schema::of("loc", &[("id", ValueType::Int)]),
            roles.iter().map(|&r| RoleId(r)).collect(),
            10_000,
        )
    }

    fn tup(tid: u64, ts: u64) -> StreamElement {
        StreamElement::tuple(Tuple::new(
            StreamId(0),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64)],
        ))
    }

    fn sp(roles: &[u32], ts: u64) -> StreamElement {
        StreamElement::punctuation(SecurityPunctuation::grant_all(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        ))
    }

    #[test]
    fn enforces_like_a_shield() {
        let mut m = setup(&[1]);
        let out =
            run_mechanism(&mut m, vec![sp(&[1], 0), tup(1, 1), sp(&[2], 2), tup(2, 3), tup(3, 4)]);
        let ids: Vec<u64> = out.iter().map(|t| t.tid.raw()).collect();
        assert_eq!(ids, vec![1]);
        assert_eq!(m.released(), 1);
        assert_eq!(m.denied(), 2);
    }

    #[test]
    fn shared_policies_counted_once() {
        let mut m = setup(&[1]);
        let mut input = vec![sp(&(0..64).collect::<Vec<u32>>(), 0)];
        for i in 0..100 {
            input.push(tup(i, i + 1));
        }
        let _ = run_mechanism(&mut m, input);
        assert_eq!(m.window_len(), 100);
        // One shared policy + 100 pointers: far below 100 copies.
        let bytes = m.policy_mem_bytes();
        let one_policy = 64 / 8 + std::mem::size_of::<sp_core::Policy>();
        assert!(bytes < 100 * one_policy, "sharing must beat per-tuple copies ({bytes} bytes)");
        assert_eq!(m.name(), "security-punctuations");
        assert!(m.elapsed() > Duration::ZERO);
    }
}
