//! # sp-baselines — alternative access-control enforcement mechanisms
//!
//! The paper motivates security punctuations by comparison with two
//! alternatives (§I-C), both implemented here behind one interface:
//!
//! * [`StoreAndProbe`] — policies in a central persistent table, probed per
//!   tuple;
//! * [`TupleEmbedded`] — every tuple carries its own policy copy;
//! * [`SpMechanism`] — the punctuation-based approach (the real engine
//!   path), wrapped for the comparison harness.
//!
//! All three enforce identical semantics — the cross-mechanism equivalence
//! tests assert byte-identical released tuple sequences — and differ only
//! in processing and memory profile, which is what Fig. 7 measures.

#![warn(missing_docs)]

pub mod mechanism;
pub mod sp_mech;
pub mod store_probe;
pub mod tuple_embedded;

pub use mechanism::{run_mechanism, EnforcementMechanism, MechStats};
pub use sp_mech::SpMechanism;
pub use store_probe::StoreAndProbe;
pub use tuple_embedded::{EmbeddedTuple, TupleEmbedded};
