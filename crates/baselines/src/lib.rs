//! # sp-baselines — alternative access-control enforcement mechanisms
//!
//! The paper motivates security punctuations by comparison with two
//! alternatives (§I-C), all implemented here behind one interface:
//!
//! * [`StoreAndProbe`] — policies in a central persistent table, probed per
//!   tuple;
//! * [`TupleEmbedded`] — every tuple carries its own policy copy;
//! * [`SpMechanism`] — the punctuation-based approach (the real engine
//!   path), wrapped for the comparison harness;
//! * [`CryptoEnforced`] — outsourced enforcement on an *untrusted* server:
//!   tuples cross the server as AEAD ciphertext, the policy table becomes
//!   a key schedule (one key capsule per granted role), and release is a
//!   cryptographic fact — a role-held key opening the capsule — rather
//!   than a server decision.
//!
//! All four enforce identical semantics — the cross-mechanism equivalence
//! tests assert byte-identical released tuple sequences on clean streams —
//! and differ only in trust assumptions, processing, and memory profile,
//! which is what Fig. 7 (and the crypto bench) measures.

#![warn(missing_docs)]

pub mod crypto_enforced;
pub mod mechanism;
pub mod sp_mech;
pub mod store_probe;
pub mod tuple_embedded;

pub use crypto_enforced::{
    CryptoClient, CryptoEnforced, CryptoProvider, KeyAuthority, UntrustedRelay,
};
pub use mechanism::{run_mechanism, EnforcementMechanism, MechStats, PolicyState};
pub use sp_mech::SpMechanism;
pub use store_probe::StoreAndProbe;
pub use tuple_embedded::{EmbeddedTuple, TupleEmbedded};
