//! The common interface of the access-control enforcement mechanisms
//! compared in §I-C / §VII-B of the paper (plus the post-2008
//! crypto-enforced fourth).
//!
//! A mechanism receives the *same* raw punctuated stream and enforces the
//! same policies for a query with a fixed role set; what differs is *where
//! policies live* (central table, per-tuple copies, in-stream
//! punctuations, or key capsules on ciphertext) and therefore the
//! processing and memory profile. The security-equivalence test suite
//! asserts that all four release exactly the same tuples.

use std::sync::Arc;
use std::time::Duration;

use sp_core::{StreamElement, Tuple};

/// One access-control enforcement mechanism under test.
pub trait EnforcementMechanism {
    /// Mechanism name ("store-and-probe", "tuple-embedded",
    /// "security-punctuations").
    fn name(&self) -> &'static str;

    /// Processes one raw element; tuples the query is authorized to read
    /// are appended to `out`.
    fn process(&mut self, elem: StreamElement, out: &mut Vec<Arc<Tuple>>);

    /// Approximate bytes of *policy-related* state currently held (the
    /// Fig. 7c metric): policy tables, embedded copies, or shared
    /// punctuations, plus per-tuple bookkeeping.
    fn policy_mem_bytes(&self) -> usize;

    /// Cumulative processing time spent inside `process`.
    fn elapsed(&self) -> Duration;

    /// Tuples released so far.
    fn released(&self) -> u64;

    /// Tuples denied so far.
    fn denied(&self) -> u64;

    /// Flushes any segment still open at end of stream; released tuples
    /// are appended to `out`. The three plaintext mechanisms decide per
    /// element and have nothing to flush (the default no-op); the
    /// crypto-enforced mechanism must close its final ciphertext segment
    /// here or the tuples buffered for digest verification would be
    /// silently lost.
    fn finish(&mut self, out: &mut Vec<Arc<Tuple>>) {
        let _ = out;
    }

    /// Breakdown of the policy-related state behind
    /// [`EnforcementMechanism::policy_mem_bytes`]. The default reports
    /// everything as plain policy bytes; the crypto-enforced mechanism
    /// also accounts its key table and ciphertext buffers.
    fn policy_state(&self) -> PolicyState {
        PolicyState { policy_bytes: self.policy_mem_bytes(), ..PolicyState::default() }
    }
}

/// Where a mechanism's policy-related memory lives (the Fig. 7c metric,
/// extended for outsourced enforcement).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyState {
    /// Policy tables / embedded copies / shared punctuations.
    pub policy_bytes: usize,
    /// Derived per-(stream, role, epoch) keys and segment data keys.
    pub key_table_bytes: usize,
    /// Ciphertext (and tentative plaintext) buffered awaiting segment
    /// verification. Drains to zero at every TERMINATOR.
    pub cipher_buffer_bytes: usize,
}

impl PolicyState {
    /// Total bytes across all three categories.
    #[must_use]
    pub fn total(&self) -> usize {
        self.policy_bytes + self.key_table_bytes + self.cipher_buffer_bytes
    }
}

/// Shared counters for mechanism implementations.
#[derive(Debug, Default)]
pub struct MechStats {
    /// Total processing time.
    pub elapsed: Duration,
    /// Released tuple count.
    pub released: u64,
    /// Denied tuple count.
    pub denied: u64,
}

/// Test/bench helper: runs a raw stream through a mechanism, returning the
/// released tuples.
pub fn run_mechanism(
    mech: &mut dyn EnforcementMechanism,
    input: impl IntoIterator<Item = StreamElement>,
) -> Vec<Arc<Tuple>> {
    let mut out = Vec::new();
    for elem in input {
        mech.process(elem, &mut out);
    }
    mech.finish(&mut out);
    out
}
