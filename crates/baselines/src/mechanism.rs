//! The common interface of the three access-control enforcement mechanisms
//! compared in §I-C / §VII-B of the paper.
//!
//! A mechanism receives the *same* raw punctuated stream and enforces the
//! same policies for a query with a fixed role set; what differs is *where
//! policies live* (central table, per-tuple copies, or in-stream
//! punctuations) and therefore the processing and memory profile. The
//! security-equivalence test suite asserts that all three release exactly
//! the same tuples.

use std::sync::Arc;
use std::time::Duration;

use sp_core::{StreamElement, Tuple};

/// One access-control enforcement mechanism under test.
pub trait EnforcementMechanism {
    /// Mechanism name ("store-and-probe", "tuple-embedded",
    /// "security-punctuations").
    fn name(&self) -> &'static str;

    /// Processes one raw element; tuples the query is authorized to read
    /// are appended to `out`.
    fn process(&mut self, elem: StreamElement, out: &mut Vec<Arc<Tuple>>);

    /// Approximate bytes of *policy-related* state currently held (the
    /// Fig. 7c metric): policy tables, embedded copies, or shared
    /// punctuations, plus per-tuple bookkeeping.
    fn policy_mem_bytes(&self) -> usize;

    /// Cumulative processing time spent inside `process`.
    fn elapsed(&self) -> Duration;

    /// Tuples released so far.
    fn released(&self) -> u64;

    /// Tuples denied so far.
    fn denied(&self) -> u64;
}

/// Shared counters for mechanism implementations.
#[derive(Debug, Default)]
pub struct MechStats {
    /// Total processing time.
    pub elapsed: Duration,
    /// Released tuple count.
    pub released: u64,
    /// Denied tuple count.
    pub denied: u64,
}

/// Test/bench helper: runs a raw stream through a mechanism, returning the
/// released tuples.
pub fn run_mechanism(
    mech: &mut dyn EnforcementMechanism,
    input: impl IntoIterator<Item = StreamElement>,
) -> Vec<Arc<Tuple>> {
    let mut out = Vec::new();
    for elem in input {
        mech.process(elem, &mut out);
    }
    out
}
