//! Baseline 2: the **tuple-embedded** mechanism (§I-C).
//!
//! Security restrictions are shipped *inside every data tuple*: each tuple
//! carries its own copy of its access-control policy (here materialized
//! when the tuple enters the system, exactly as if the data provider had
//! attached the extra meta-data fields). Tuples with identical policies
//! still carry redundant copies, the per-tuple size grows with the policy
//! size, and the processor must evaluate every tuple's policy individually
//! — no decision sharing is possible. These are precisely the costs
//! Fig. 7 charges this approach with.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sp_core::{Policy, RoleCatalog, RoleSet, Schema, StreamElement, Timestamp, Tuple};

use crate::mechanism::{EnforcementMechanism, MechStats};

/// A tuple with its embedded policy copy.
#[derive(Debug)]
pub struct EmbeddedTuple {
    /// The data tuple.
    pub tuple: Arc<Tuple>,
    /// The *owned* policy copy this tuple carries.
    pub policy: Policy,
}

/// The tuple-embedded mechanism.
pub struct TupleEmbedded {
    catalog: Arc<RoleCatalog>,
    schema: Arc<Schema>,
    query_roles: RoleSet,
    /// Capacity of the in-flight buffer (tuples concurrently inside the
    /// system, each carrying its embedded policy copy).
    in_flight: usize,
    /// The policy the data source is currently stamping onto its tuples.
    current: Vec<(sp_pattern::Pattern, Policy)>,
    current_ts: Timestamp,
    /// The in-flight embedded tuples (the memory cost driver).
    window: VecDeque<EmbeddedTuple>,
    stats: MechStats,
}

impl TupleEmbedded {
    /// A mechanism instance enforcing for a query with `query_roles`,
    /// buffering up to `in_flight` embedded tuples.
    #[must_use]
    pub fn new(
        catalog: Arc<RoleCatalog>,
        schema: Arc<Schema>,
        query_roles: RoleSet,
        in_flight: usize,
    ) -> Self {
        Self {
            catalog,
            schema,
            query_roles,
            in_flight: in_flight.max(1),
            current: Vec::new(),
            current_ts: Timestamp::ZERO,
            window: VecDeque::new(),
            stats: MechStats::default(),
        }
    }

    /// Current number of embedded tuples held.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// The policy stamped onto a tuple: combination of current-source
    /// policies whose scopes match, denial-by-default otherwise. Always an
    /// **owned copy** — that is the point of this baseline.
    fn stamp(&self, tuple: &Tuple) -> Policy {
        let mut out: Option<Policy> = None;
        for (scope, policy) in &self.current {
            if scope.matches_u64(tuple.tid.raw()) {
                out = Some(match out {
                    None => policy.clone(),
                    Some(acc) => acc.union(policy),
                });
            }
        }
        out.unwrap_or_else(|| Policy::deny_all(self.current_ts))
    }
}

impl EnforcementMechanism for TupleEmbedded {
    fn name(&self) -> &'static str {
        "tuple-embedded"
    }

    fn process(&mut self, elem: StreamElement, out: &mut Vec<Arc<Tuple>>) {
        let start = Instant::now();
        match elem {
            StreamElement::Punctuation(sp) => {
                // The data source's policy changes; subsequent tuples are
                // stamped with the new policy.
                if sp.matches_stream(self.schema.name()) {
                    let mut policy = Policy::deny_all(sp.ts);
                    sp.apply_to(&mut policy, &self.catalog, &self.schema);
                    if sp.ts > self.current_ts {
                        self.current.clear();
                        self.current_ts = sp.ts;
                    }
                    let scope = sp.ddp.tuple.clone();
                    match self.current.iter_mut().find(|(s, _)| s.source() == scope.source()) {
                        Some((_, existing)) => *existing = existing.union(&policy),
                        None => self.current.push((scope, policy)),
                    }
                }
            }
            StreamElement::Tuple(tuple) => {
                while self.window.len() >= self.in_flight {
                    self.window.pop_front();
                }
                // Embed: every tuple gets its own policy copy.
                let policy = self.stamp(&tuple);
                // Enforce: every tuple's policy is evaluated individually.
                let authorized = policy.allows(&self.query_roles);
                self.window.push_back(EmbeddedTuple { tuple: tuple.clone(), policy });
                if authorized {
                    self.stats.released += 1;
                    out.push(tuple);
                } else {
                    self.stats.denied += 1;
                }
            }
        }
        self.stats.elapsed += start.elapsed();
    }

    fn policy_mem_bytes(&self) -> usize {
        // Each in-flight tuple pays for its own (role-list) policy copy —
        // "tuples with identical policies would still carry their own
        // (redundant) copy" (§I-C).
        self.window.iter().map(|e| e.policy.mem_bytes_list()).sum()
    }

    fn elapsed(&self) -> Duration {
        self.stats.elapsed
    }

    fn released(&self) -> u64 {
        self.stats.released
    }

    fn denied(&self) -> u64 {
        self.stats.denied
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::mechanism::run_mechanism;
    use sp_core::{RoleId, SecurityPunctuation, StreamId, TupleId, Value, ValueType};

    fn setup(roles: &[u32]) -> TupleEmbedded {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(16);
        TupleEmbedded::new(
            Arc::new(c),
            Schema::of("loc", &[("id", ValueType::Int)]),
            roles.iter().map(|&r| RoleId(r)).collect(),
            10_000,
        )
    }

    fn tup(tid: u64, ts: u64) -> StreamElement {
        StreamElement::tuple(Tuple::new(
            StreamId(0),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64)],
        ))
    }

    fn sp(roles: &[u32], ts: u64) -> StreamElement {
        StreamElement::punctuation(SecurityPunctuation::grant_all(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        ))
    }

    #[test]
    fn denies_without_policy() {
        let mut m = setup(&[1]);
        assert!(run_mechanism(&mut m, vec![tup(1, 1)]).is_empty());
    }

    #[test]
    fn stamps_current_policy_on_tuples() {
        let mut m = setup(&[1]);
        let out = run_mechanism(&mut m, vec![sp(&[1], 0), tup(1, 1), sp(&[2], 2), tup(2, 3)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tid.raw(), 1);
    }

    #[test]
    fn memory_grows_per_tuple_even_with_shared_policies() {
        let mut big = setup(&[1]);
        let mut input = vec![sp(&(0..512).collect::<Vec<u32>>(), 0)];
        for i in 0..100 {
            input.push(tup(i, i + 1));
        }
        let _ = run_mechanism(&mut big, input);
        assert_eq!(big.window_len(), 100);
        // 100 tuples → 100 policy copies: memory scales with tuple count.
        let per_tuple = big.policy_mem_bytes() / 100;
        assert!(per_tuple > 0);
        let mut small = setup(&[1]);
        let mut input = vec![sp(&[1], 0)];
        for i in 0..100 {
            input.push(tup(i, i + 1));
        }
        let _ = run_mechanism(&mut small, input);
        assert!(
            big.policy_mem_bytes() > small.policy_mem_bytes(),
            "larger policies cost more per embedded copy"
        );
    }

    #[test]
    fn in_flight_capacity_bounds_memory() {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(16);
        let mut m = TupleEmbedded::new(
            Arc::new(c),
            Schema::of("loc", &[("id", ValueType::Int)]),
            RoleSet::from([1]),
            16,
        );
        let mut input = vec![sp(&[1], 0)];
        for i in 0..100u64 {
            input.push(tup(i, i * 1000));
        }
        let _ = run_mechanism(&mut m, input);
        assert_eq!(m.window_len(), 16, "buffer capped at capacity");
        assert_eq!(m.name(), "tuple-embedded");
    }
}
