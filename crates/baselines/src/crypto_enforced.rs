//! The **crypto-enforced** mechanism: access control on an *untrusted*
//! server, Streamforce / "Stream on the Sky"-style (PAPERS.md).
//!
//! The three plaintext mechanisms trust the server to apply the policy.
//! Here the server is only a forwarder of ciphertext it cannot read:
//!
//! * a [`CryptoProvider`] runs the *same* SP Analyzer as the engine
//!   path, but instead of releasing plaintext it cuts the stream into
//!   ciphertext segments (`HEADER → DATA… → DIGEST → TERMINATOR`, see
//!   [`sp_core::crypto::frame`]). The segment data key is wrapped in one
//!   [`sp_core::crypto::KeyCapsule`] per role the governing policy
//!   grants — the policy table *is* the key schedule;
//! * an [`UntrustedRelay`] (or the chaos harness's hostile
//!   `CipherFaultInjector`) forwards the encoded frames;
//! * a [`CryptoClient`] holds keys only for the query's roles. A tuple
//!   is released **iff** a role-held key opens a capsule and the frame
//!   and segment digest authenticate — release is a cryptographic fact,
//!   not a server decision.
//!
//! ## Rollback-safe release
//!
//! The client is a first-class state machine with `snapshot`/`restore`
//! like every other operator. Within a segment, small frames are
//! decrypted *tentatively* into an ordered release journal; large
//! frames stay buffered as ciphertext. Nothing leaves the journal until
//! the TERMINATOR commits a verified segment digest; a failed segment
//! rolls the journal back — every retracted tuple is audited as
//! [`AuditEvent::TentativeRolledBack`] — so the output only ever
//! contains committed tuples and retraction is impossible by
//! construction.
//!
//! ## Fail closed
//!
//! Undecryptable, truncated, nonce-reused, replayed, or stale-key-epoch
//! ciphertext is suppressed and counted ([`CipherViolation`]), never
//! released, never a panic. Key revocation rides the sp channel: a
//! negative sp advances the key epoch (a
//! [`sp_core::crypto::CipherFrame::KeyEpoch`] punctuation), after which
//! capsules sealed under older epochs are refused.
//!
//! The primitives underneath are reproduction-grade — see the
//! [`sp_core::crypto`] module caveat.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sp_core::crypto::{
    self, derive_key, frame::CipherFrame, open, seal, CipherFrame as Frame, Key, KeyCapsule, Nonce,
    Sha256, DIGEST_LEN, TAG_LEN,
};
use sp_core::{
    decode_tuple, encode_tuple, RoleCatalog, RoleId, RoleSet, Schema, Sign, StreamElement, Tuple,
};
use sp_engine::telemetry::{AuditEvent, CipherViolation, FlightRecorder, NO_SP, NO_TUPLE};
use sp_engine::{Element, SegmentPolicy, SpAnalyzer};

use crate::mechanism::{EnforcementMechanism, MechStats, PolicyState};

/// Frames whose sealed payload is at most this many bytes are decrypted
/// tentatively on arrival (the journal holds plaintext); larger frames
/// stay ciphertext until the segment digest verifies.
pub const SMALL_FRAME_MAX: usize = 96;

/// Data frames per segment before the provider cuts the segment anyway,
/// bounding how much the client must journal before a TERMINATOR.
pub const MAX_SEGMENT_FRAMES: u32 = 64;

/// Nonce for DATA frame `idx` of segment `seg` (and, with
/// `idx = u32::MAX`, the segment digest; with a role id, a capsule).
/// Indices are strictly monotone within a key's lifetime, so nonces
/// never repeat for honest parties — and the client *enforces* the
/// monotonicity, so a server replaying a nonce breaks authentication
/// rather than silently succeeding.
fn nonce_for(idx: u32, seg: u64) -> Nonce {
    let mut n = [0u8; crypto::NONCE_LEN];
    n[..4].copy_from_slice(&idx.to_be_bytes());
    n[4..].copy_from_slice(&seg.to_be_bytes());
    n
}

/// AAD binding a DATA frame (or digest / capsule) to its position.
fn aad_for(stream: u32, seg: u64, epoch: u64, idx: u32) -> [u8; 20] {
    let mut a = [0u8; 20];
    a[..4].copy_from_slice(&stream.to_be_bytes());
    a[4..12].copy_from_slice(&seg.to_be_bytes());
    a[12..20].copy_from_slice(&epoch.to_be_bytes());
    let idx_bytes = idx.to_be_bytes();
    for (i, b) in idx_bytes.iter().enumerate() {
        a[4 + i] ^= *b; // fold idx into the seg lane; fields stay bound
    }
    a
}

/// Reserved DATA index for the segment digest's nonce.
const DIGEST_IDX: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Key authority
// ---------------------------------------------------------------------------

struct AuthorityInner {
    epoch: u64,
    /// Roles revoked, with the epoch at which revocation took effect.
    revoked: HashMap<u32, u64>,
}

/// The trusted key service both ends share: derives per-(stream, role,
/// epoch) keys and segment data keys from one master key. The
/// *untrusted* server never talks to it.
///
/// Epochs make revocation effective against a hostile forwarder: the
/// authority hands out role keys only for its **current** epoch, and a
/// role revoked at epoch *e* gets no key for *e* or later — so replayed
/// old capsules fail the client's epoch check and new segments carry no
/// capsule the revoked role could open.
pub struct KeyAuthority {
    master: Key,
    inner: Mutex<AuthorityInner>,
}

impl KeyAuthority {
    /// An authority deriving every key from `master`.
    #[must_use]
    pub fn new(master: Key) -> Self {
        Self { master, inner: Mutex::new(AuthorityInner { epoch: 0, revoked: HashMap::new() }) }
    }

    /// The current key epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Advances the key epoch (a revocation event); returns the new
    /// epoch.
    pub fn advance_epoch(&self) -> u64 {
        let mut inner = self.lock();
        inner.epoch += 1;
        inner.epoch
    }

    /// Revokes a role effective from the **next** epoch: segments
    /// already sealed under the current epoch were authorized when
    /// produced, so their keys stand; no key is issued for any later
    /// epoch. Call [`Self::advance_epoch`] afterwards to make the
    /// revocation bite.
    pub fn revoke_role(&self, role: u32) {
        let mut inner = self.lock();
        let effective = inner.epoch + 1;
        inner.revoked.entry(role).or_insert(effective);
    }

    /// The key a holder of `role` uses at `epoch` on `stream` — or
    /// `None` (fail closed) when `epoch` has not been reached yet or the
    /// role's revocation was effective at or before `epoch`. Keys for
    /// *past* epochs where the role was still granted remain obtainable:
    /// they were already distributed, and replay of old segments is the
    /// client's job to refuse (segment highwater + epoch tracking), not
    /// a secret the authority can retract.
    #[must_use]
    pub fn role_key(&self, stream: u32, role: u32, epoch: u64) -> Option<Key> {
        let inner = self.lock();
        if epoch > inner.epoch {
            return None;
        }
        if let Some(at) = inner.revoked.get(&role) {
            if *at <= epoch {
                return None;
            }
        }
        Some(derive_key(&self.master, "role-key", &[u64::from(stream), u64::from(role), epoch]))
    }

    /// The provider-side data key for segment `seg` of `stream`.
    /// Deterministic, so same-seed runs produce byte-identical frames.
    fn data_key(&self, stream: u32, seg: u64) -> Key {
        derive_key(&self.master, "data-key", &[u64::from(stream), seg])
    }

    /// Provider-side role key derivation: unlike [`Self::role_key`] this
    /// does not check revocation — the provider only wraps capsules for
    /// roles the *policy* grants, which is where revocation semantics
    /// live.
    fn wrap_key(&self, stream: u32, role: u32, epoch: u64) -> Key {
        derive_key(&self.master, "role-key", &[u64::from(stream), u64::from(role), epoch])
    }

    /// Approximate bytes of key-derivation state held.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        crypto::KEY_LEN + self.lock().revoked.len() * (4 + 8)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, AuthorityInner> {
        // A poisoned authority lock means a panic mid-derivation; the
        // state is plain integers, safe to keep using (fail closed is
        // preserved because derivation is pure).
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

// ---------------------------------------------------------------------------
// Provider
// ---------------------------------------------------------------------------

struct OpenProviderSegment {
    seg: u64,
    epoch: u64,
    /// Roles whose capsules this segment carries. Scoped policies grant
    /// different roles to different tuples *within one segment policy*,
    /// so the segment must be cut the moment the granted set changes —
    /// sealing a deny-all tuple under a key some role holds would leak it.
    roles: RoleSet,
    data_key: Key,
    next_idx: u32,
    digest: Sha256,
}

/// The trusted producer: runs the SP Analyzer over the raw punctuated
/// stream and emits encoded [`CipherFrame`]s instead of plaintext.
///
/// Segment cuts happen when the governing policy's granted role set
/// changes (so every tuple in a segment shares one capsule set), when a
/// negative sp advances the key epoch, and every
/// [`MAX_SEGMENT_FRAMES`] frames to bound client-side journaling.
pub struct CryptoProvider {
    analyzer: SpAnalyzer,
    catalog: Arc<RoleCatalog>,
    authority: Arc<KeyAuthority>,
    stream: Option<u32>,
    current: Option<Arc<SegmentPolicy>>,
    open: Option<OpenProviderSegment>,
    next_seg: u64,
    staged: Vec<Element>,
}

impl CryptoProvider {
    /// A provider enforcing `catalog`-resolved policies over `schema`.
    #[must_use]
    pub fn new(
        catalog: Arc<RoleCatalog>,
        schema: Arc<Schema>,
        authority: Arc<KeyAuthority>,
    ) -> Self {
        Self {
            analyzer: SpAnalyzer::new(schema, catalog.clone()),
            catalog,
            authority,
            stream: None,
            current: None,
            open: None,
            next_seg: 0,
            staged: Vec::new(),
        }
    }

    /// Bytes of policy-table state the analyzer holds (the canonical
    /// policy-table encoding's length — the same probe the overload
    /// suite uses).
    #[must_use]
    pub fn policy_table_bytes(&self) -> usize {
        self.analyzer.policy_table_bytes().len()
    }

    /// Processes one raw element, returning the encoded frames it
    /// produces (possibly none — analyzer buffering — or several —
    /// segment close + open).
    pub fn push(&mut self, elem: StreamElement, frames: &mut Vec<Vec<u8>>) {
        if let StreamElement::Punctuation(sp) = &elem {
            if sp.sign == Sign::Negative {
                // Key revocation rides the sp channel: close the open
                // segment under the old epoch, revoke the named roles,
                // advance the epoch, and punctuate the cipher stream.
                self.close_segment(frames);
                for role in sp.srp.resolve(&self.catalog).iter() {
                    self.authority.revoke_role(role.raw());
                }
                let epoch = self.authority.advance_epoch();
                let stream = self.stream_id();
                frames.push(Frame::KeyEpoch { stream, epoch }.encode_to_vec());
            }
        }
        if self.stream.is_none() {
            if let StreamElement::Tuple(t) = &elem {
                self.stream = Some(t.sid.raw());
            }
        }
        self.staged.clear();
        let mut staged = std::mem::take(&mut self.staged);
        self.analyzer.push(elem, &mut staged);
        for e in staged.drain(..) {
            match e {
                Element::Policy(seg) => {
                    // Policy boundary: the next tuple decides whether a
                    // new cipher segment is actually needed.
                    self.current = Some(seg);
                    self.close_segment(frames);
                }
                Element::Tuple(t) => self.push_tuple(&t, frames),
            }
        }
        self.staged = staged;
    }

    /// Closes any open segment and flushes its DIGEST + TERMINATOR.
    /// Call at end of stream or the final segment's tuples stay
    /// unreleasable (the client, correctly, never commits an unclosed
    /// segment).
    pub fn finish(&mut self, frames: &mut Vec<Vec<u8>>) {
        self.analyzer.flush(&mut self.staged);
        let staged: Vec<Element> = self.staged.drain(..).collect();
        for e in staged {
            match e {
                Element::Policy(seg) => {
                    self.current = Some(seg);
                    self.close_segment(frames);
                }
                Element::Tuple(t) => self.push_tuple(&t, frames),
            }
        }
        self.close_segment(frames);
    }

    fn stream_id(&self) -> u32 {
        self.stream.unwrap_or(0)
    }

    fn push_tuple(&mut self, t: &Arc<Tuple>, frames: &mut Vec<Vec<u8>>) {
        let stream = self.stream.get_or_insert(t.sid.raw());
        let stream = *stream;
        let (roles, sp_ts) = match &self.current {
            Some(seg) => (seg.policy_for(t).tuple_roles().clone(), seg.ts.0),
            // No governing policy: default deny — a segment no role can
            // open (zero capsules), so the decision is still made by
            // cryptography, uniformly.
            None => (RoleSet::new(), NO_SP),
        };
        let epoch = self.authority.epoch();
        let cut = match &self.open {
            Some(o) => o.epoch != epoch || o.next_idx >= MAX_SEGMENT_FRAMES || o.roles != roles,
            None => true,
        };
        if cut {
            self.close_segment(frames);
            let seg = self.next_seg;
            self.next_seg += 1;
            let data_key = self.authority.data_key(stream, seg);
            let capsules: Vec<KeyCapsule> = roles
                .iter()
                .map(|r| {
                    let wrap = self.authority.wrap_key(stream, r.raw(), epoch);
                    let aad = aad_for(stream, seg, epoch, r.raw());
                    KeyCapsule {
                        role: r.raw(),
                        wrapped: seal(&wrap, &nonce_for(r.raw(), seg), &aad, &data_key),
                    }
                })
                .collect();
            frames.push(
                Frame::Header { stream, seg, key_epoch: epoch, sp_ts, capsules }.encode_to_vec(),
            );
            self.open = Some(OpenProviderSegment {
                seg,
                epoch,
                roles,
                data_key,
                next_idx: 0,
                digest: Sha256::new(),
            });
        }
        let Some(o) = self.open.as_mut() else { return };
        let mut plain = Vec::with_capacity(64);
        encode_tuple(t, &mut plain);
        let idx = o.next_idx;
        o.next_idx += 1;
        let sealed = seal(
            &o.data_key,
            &nonce_for(idx, o.seg),
            &aad_for(stream, o.seg, o.epoch, idx),
            &plain,
        );
        o.digest.update(&sealed);
        frames.push(Frame::Data { stream, seg: o.seg, idx, sealed }.encode_to_vec());
    }

    fn close_segment(&mut self, frames: &mut Vec<Vec<u8>>) {
        let Some(o) = self.open.take() else { return };
        let stream = self.stream_id();
        let digest = o.digest.finalize();
        let sealed_digest = seal(
            &o.data_key,
            &nonce_for(DIGEST_IDX, o.seg),
            &aad_for(stream, o.seg, o.epoch, o.next_idx),
            &digest,
        );
        frames.push(
            Frame::Digest { stream, seg: o.seg, count: o.next_idx, sealed_digest }.encode_to_vec(),
        );
        frames.push(Frame::Terminator { stream, seg: o.seg }.encode_to_vec());
    }
}

// ---------------------------------------------------------------------------
// Relay
// ---------------------------------------------------------------------------

/// The honest-but-curious server: forwards encoded frames verbatim and
/// can count them, but holds no key material whatsoever — everything it
/// sees besides segment shape is ciphertext. The chaos harness swaps
/// this for `sp_engine::fault::CipherFaultInjector`, the malicious
/// version.
#[derive(Debug, Default)]
pub struct UntrustedRelay {
    /// Frames forwarded.
    pub forwarded: u64,
    /// Ciphertext bytes forwarded.
    pub bytes: u64,
}

impl UntrustedRelay {
    /// Forwards one frame.
    pub fn forward(&mut self, frame: Vec<u8>) -> Vec<u8> {
        self.forwarded += 1;
        self.bytes += frame.len() as u64;
        frame
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// One journal entry of an open segment: a tentatively decrypted small
/// frame, or a still-sealed large frame.
enum Staged {
    /// Tentatively released: decrypted and decoded on arrival.
    Clear(Arc<Tuple>),
    /// Buffered ciphertext, decrypted only at commit.
    Sealed(u32, Vec<u8>),
}

impl Staged {
    fn mem_bytes(&self) -> usize {
        match self {
            Self::Clear(t) => t.mem_bytes(),
            Self::Sealed(_, b) => 4 + b.len(),
        }
    }
}

struct ClientSegment {
    seg: u64,
    epoch: u64,
    sp_ts: u64,
    /// `None` = no capsule a held role could open: an *authorized
    /// denial*, every frame suppressed like a shield deny.
    data_key: Option<Key>,
    /// The query role whose capsule opened (audit justification).
    release_role: u32,
    next_idx: u32,
    digest: Sha256,
    staged: Vec<Staged>,
    staged_bytes: usize,
    /// Opened digest: `(covered frame count, digest)`.
    digest_frame: Option<(u32, [u8; DIGEST_LEN])>,
    /// First violation that condemned the segment, if any.
    poisoned: Option<CipherViolation>,
}

/// The query-side decryptor and rollback-safe release state machine.
///
/// Holds role keys for the query's roles only (fetched from the
/// [`KeyAuthority`] per epoch) and releases a tuple **iff** its capsule
/// chain and segment digest authenticate. See the module docs for the
/// journal/commit semantics.
pub struct CryptoClient {
    authority: Arc<KeyAuthority>,
    stream: Option<u32>,
    query_roles: Vec<u32>,
    epoch: u64,
    role_keys: HashMap<u32, Key>,
    /// Highest segment ever opened; headers must exceed it (replay
    /// detection even for rolled-back segments).
    seg_highwater: Option<u64>,
    open: Option<ClientSegment>,
    in_flight: usize,
    recorder: FlightRecorder,
    released: u64,
    denied: u64,
    /// Suppression counts by [`CipherViolation::code`].
    violations: [u64; 9],
    /// Frames released despite a failed tag check — always 0 for this
    /// client; the deliberately broken negative-control client counts
    /// here.
    released_unauthenticated: u64,
    broken_tag_check: bool,
}

impl CryptoClient {
    /// A client for a query holding `query_roles`, journaling at most
    /// `in_flight` frames per segment before failing the segment closed.
    #[must_use]
    pub fn new(authority: Arc<KeyAuthority>, query_roles: &RoleSet, in_flight: usize) -> Self {
        let mut c = Self {
            authority,
            stream: None,
            query_roles: query_roles.iter().map(RoleId::raw).collect(),
            epoch: 0,
            role_keys: HashMap::new(),
            seg_highwater: None,
            open: None,
            in_flight: in_flight.max(1),
            recorder: FlightRecorder::new(8192),
            released: 0,
            denied: 0,
            violations: [0; 9],
            released_unauthenticated: 0,
            broken_tag_check: false,
        };
        c.refresh_role_keys();
        c
    }

    /// NEGATIVE CONTROL ONLY: returns a client that releases frames
    /// whose AEAD tag check failed (decrypting with the raw keystream).
    /// The chaos harness uses it to prove the subset/audit invariants
    /// actually catch an unsound release path.
    #[must_use]
    pub fn with_broken_tag_check(mut self) -> Self {
        self.broken_tag_check = true;
        self
    }

    /// Tuples released (committed) so far.
    #[must_use]
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Tuples/frames denied or suppressed so far.
    #[must_use]
    pub fn denied(&self) -> u64 {
        self.denied
    }

    /// Frames released despite failing authentication — **must** stay 0
    /// for a sound client.
    #[must_use]
    pub fn released_unauthenticated(&self) -> u64 {
        self.released_unauthenticated
    }

    /// Suppressions recorded for `reason` so far.
    #[must_use]
    pub fn violation_count(&self, reason: CipherViolation) -> u64 {
        self.violations[reason.code() as usize]
    }

    /// Total suppressions across all violation reasons.
    #[must_use]
    pub fn violations_total(&self) -> u64 {
        self.violations.iter().sum()
    }

    /// The audit flight recorder (always enabled on the client).
    #[must_use]
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Deterministic byte encoding of the audit trail.
    #[must_use]
    pub fn audit_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.recorder.encode(&mut buf);
        buf
    }

    /// Bytes currently journaled awaiting segment verification. Drains
    /// to zero at every TERMINATOR (commit *or* rollback).
    #[must_use]
    pub fn cipher_buffer_bytes(&self) -> usize {
        self.open.as_ref().map_or(0, |o| o.staged_bytes)
    }

    /// Bytes of key material held (role keys + open segment data key).
    #[must_use]
    pub fn key_table_bytes(&self) -> usize {
        self.role_keys.len() * crypto::KEY_LEN
            + self.open.as_ref().map_or(0, |o| o.data_key.is_some() as usize * crypto::KEY_LEN)
    }

    fn refresh_role_keys(&mut self) {
        let stream = self.stream.unwrap_or(0);
        self.role_keys.clear();
        for &r in &self.query_roles {
            if let Some(k) = self.authority.role_key(stream, r, self.epoch) {
                self.role_keys.insert(r, k);
            }
        }
    }

    fn suppress(&mut self, tid: u64, ts: u64, reason: CipherViolation) {
        self.denied += 1;
        self.violations[reason.code() as usize] += 1;
        self.recorder.record(tid, ts, AuditEvent::CipherSuppressed { reason });
    }

    /// Poisons the open segment (first violation wins) without counting
    /// a frame — the terminator's rollback accounts for the journal.
    fn poison(&mut self, reason: CipherViolation) {
        if let Some(o) = self.open.as_mut() {
            if o.poisoned.is_none() {
                o.poisoned = Some(reason);
            }
        }
    }

    /// Rolls back and discards the open segment, auditing every
    /// journaled tuple and the condemning violation.
    fn rollback_open(&mut self, reason: CipherViolation) {
        let Some(mut o) = self.open.take() else { return };
        let reason = o.poisoned.unwrap_or(reason);
        self.violations[reason.code() as usize] += 1;
        self.recorder.record(NO_TUPLE, o.sp_ts, AuditEvent::CipherSuppressed { reason });
        for entry in o.staged.drain(..) {
            let tid = match &entry {
                Staged::Clear(t) => t.tid.raw(),
                Staged::Sealed(..) => NO_TUPLE,
            };
            self.denied += 1;
            self.recorder.record(tid, o.sp_ts, AuditEvent::TentativeRolledBack { seg: o.seg });
        }
    }

    /// Feeds one encoded frame from the server. Committed tuples are
    /// appended to `out`; everything else is suppressed and audited.
    /// Never panics on arbitrary input.
    pub fn feed(&mut self, bytes: &[u8], out: &mut Vec<Arc<Tuple>>) {
        let frame = match CipherFrame::decode_frame(bytes) {
            Ok(f) => f,
            Err(_) => {
                // Not a decodable cipher frame at all: corruption the
                // envelope caught, or a torn frame.
                self.suppress(NO_TUPLE, NO_SP, CipherViolation::Malformed);
                return;
            }
        };
        match frame {
            Frame::Header { stream, seg, key_epoch, sp_ts, capsules } => {
                self.on_header(stream, seg, key_epoch, sp_ts, &capsules);
            }
            Frame::Data { stream, seg, idx, sealed } => {
                self.on_data(stream, seg, idx, &sealed);
            }
            Frame::Digest { stream, seg, count, sealed_digest } => {
                self.on_digest(stream, seg, count, &sealed_digest);
            }
            Frame::Terminator { stream, seg } => self.on_terminator(stream, seg, out),
            Frame::KeyEpoch { stream, epoch } => self.on_key_epoch(stream, epoch),
        }
    }

    fn stream_ok(&mut self, stream: u32) -> bool {
        match self.stream {
            Some(s) => s == stream,
            None => {
                self.stream = Some(stream);
                self.refresh_role_keys();
                true
            }
        }
    }

    fn on_header(
        &mut self,
        stream: u32,
        seg: u64,
        key_epoch: u64,
        sp_ts: u64,
        capsules: &[KeyCapsule],
    ) {
        if !self.stream_ok(stream) {
            self.suppress(NO_TUPLE, sp_ts, CipherViolation::Malformed);
            return;
        }
        if self.open.is_some() {
            // A header inside an unterminated segment: the old segment
            // can never verify — roll it back, then consider the new one.
            self.rollback_open(CipherViolation::Incomplete);
        }
        if self.seg_highwater.is_some_and(|hw| seg <= hw) {
            self.suppress(NO_TUPLE, sp_ts, CipherViolation::Replayed);
            return;
        }
        self.seg_highwater = Some(seg);
        let mut segment = ClientSegment {
            seg,
            epoch: key_epoch,
            sp_ts,
            data_key: None,
            release_role: u32::MAX,
            next_idx: 0,
            digest: Sha256::new(),
            staged: Vec::new(),
            staged_bytes: 0,
            digest_frame: None,
            poisoned: None,
        };
        if key_epoch != self.epoch {
            // Stale (or fabricated) key epoch: the segment is tracked so
            // its frames are attributed, but it is condemned already.
            segment.poisoned = Some(CipherViolation::StaleKeyEpoch);
            self.open = Some(segment);
            return;
        }
        for &role in &self.query_roles {
            let Some(rk) = self.role_keys.get(&role) else { continue };
            let Some(c) = capsules.iter().find(|c| c.role == role) else { continue };
            let aad = aad_for(stream, seg, key_epoch, role);
            match open(rk, &nonce_for(role, seg), &aad, &c.wrapped) {
                Some(dk) if dk.len() == crypto::KEY_LEN => {
                    let mut key = [0u8; crypto::KEY_LEN];
                    key.copy_from_slice(&dk);
                    segment.data_key = Some(key);
                    segment.release_role = role;
                    break;
                }
                // A capsule addressed to us that does not authenticate
                // (or holds a malformed key) is corruption.
                _ => {
                    segment.poisoned = Some(CipherViolation::AuthFailed);
                    break;
                }
            }
        }
        self.open = Some(segment);
    }

    fn on_data(&mut self, stream: u32, seg: u64, idx: u32, sealed: &[u8]) {
        if !self.stream_ok(stream) || self.open.as_ref().is_none_or(|o| o.seg != seg) {
            self.suppress(NO_TUPLE, NO_SP, CipherViolation::Malformed);
            return;
        }
        let (sp_ts, poisoned) = {
            let o = self.open.as_ref().map(|o| (o.sp_ts, o.poisoned));
            let Some((ts, p)) = o else { return };
            (ts, p)
        };
        if let Some(reason) = poisoned {
            // Condemned segment: attribute and count the frame now; the
            // journal (if any) is settled at the terminator.
            self.suppress(NO_TUPLE, sp_ts, reason);
            return;
        }
        let Some(o) = self.open.as_mut() else { return };
        if o.data_key.is_none() {
            // Authorized denial: no capsule for any held role. The
            // suppression mirrors a shield deny, citing the governing sp.
            self.denied += 1;
            self.recorder.record(NO_TUPLE, sp_ts, AuditEvent::Suppressed { sp_ts });
            return;
        }
        if idx != o.next_idx {
            // Out-of-order, repeated, or skipped index: the nonce
            // schedule is broken; nothing after this point can commit.
            self.poison(CipherViolation::NonceReused);
            self.suppress(NO_TUPLE, sp_ts, CipherViolation::NonceReused);
            return;
        }
        if sealed.len() < TAG_LEN {
            self.poison(CipherViolation::Truncated);
            self.suppress(NO_TUPLE, sp_ts, CipherViolation::Truncated);
            return;
        }
        o.next_idx += 1;
        o.digest.update(sealed);
        let key = match o.data_key.as_ref() {
            Some(k) => *k,
            None => return,
        };
        let epoch = o.epoch;
        let aad = aad_for(stream, seg, epoch, idx);
        let plain = match open(&key, &nonce_for(idx, seg), &aad, sealed) {
            Some(p) => p,
            None if self.broken_tag_check => {
                // BROKEN PATH (negative control): decrypt anyway.
                let mut p = sealed[..sealed.len() - TAG_LEN].to_vec();
                crypto::chacha::xor_stream(&key, &nonce_for(idx, seg), 1, &mut p);
                self.released_unauthenticated += 1;
                p
            }
            None => {
                self.poison(CipherViolation::AuthFailed);
                self.suppress(NO_TUPLE, sp_ts, CipherViolation::AuthFailed);
                return;
            }
        };
        let Some(o) = self.open.as_mut() else { return };
        if o.staged.len() >= self.in_flight {
            // Journal overflow: a segment the provider would never
            // produce. Abandon it rather than buffer unboundedly.
            self.poison(CipherViolation::Incomplete);
            self.suppress(NO_TUPLE, sp_ts, CipherViolation::Incomplete);
            return;
        }
        let entry = if sealed.len() <= SMALL_FRAME_MAX {
            // Tentative release: decode eagerly; journal holds plaintext.
            match decode_tuple(&mut plain.as_slice()) {
                Ok(t) => Staged::Clear(Arc::new(t)),
                Err(_) => {
                    self.poison(CipherViolation::Malformed);
                    self.suppress(NO_TUPLE, sp_ts, CipherViolation::Malformed);
                    return;
                }
            }
        } else {
            Staged::Sealed(idx, sealed.to_vec())
        };
        o.staged_bytes += entry.mem_bytes();
        o.staged.push(entry);
    }

    fn on_digest(&mut self, stream: u32, seg: u64, count: u32, sealed_digest: &[u8]) {
        if !self.stream_ok(stream) || self.open.as_ref().is_none_or(|o| o.seg != seg) {
            self.suppress(NO_TUPLE, NO_SP, CipherViolation::Malformed);
            return;
        }
        let Some(o) = self.open.as_mut() else { return };
        if o.poisoned.is_some() {
            return; // settled at the terminator
        }
        if o.digest_frame.is_some() {
            self.poison(CipherViolation::Malformed);
            return;
        }
        let Some(key) = o.data_key else {
            // Authorized denial: we cannot (and need not) verify.
            return;
        };
        let epoch = o.epoch;
        let aad = aad_for(stream, seg, epoch, count);
        match open(&key, &nonce_for(DIGEST_IDX, seg), &aad, sealed_digest) {
            Some(d) if d.len() == DIGEST_LEN => {
                let mut digest = [0u8; DIGEST_LEN];
                digest.copy_from_slice(&d);
                let Some(o) = self.open.as_mut() else { return };
                o.digest_frame = Some((count, digest));
            }
            _ => self.poison(CipherViolation::AuthFailed),
        }
    }

    fn on_terminator(&mut self, stream: u32, seg: u64, out: &mut Vec<Arc<Tuple>>) {
        if !self.stream_ok(stream) || self.open.as_ref().is_none_or(|o| o.seg != seg) {
            self.suppress(NO_TUPLE, NO_SP, CipherViolation::Malformed);
            return;
        }
        let Some(o) = self.open.as_ref() else { return };
        if o.poisoned.is_some() {
            self.rollback_open(CipherViolation::Malformed);
            return;
        }
        if o.data_key.is_none() {
            // Authorized denial: frames were suppressed on arrival;
            // nothing journaled, nothing to verify.
            self.open = None;
            return;
        }
        let verified = match o.digest_frame {
            None => {
                self.rollback_open(CipherViolation::DigestMissing);
                return;
            }
            Some((count, expected)) => count == o.next_idx && o.digest.finalize() == expected,
        };
        if !verified && !self.broken_tag_check {
            self.rollback_open(CipherViolation::DigestMismatch);
            return;
        }
        // Commit: decrypt every still-sealed frame *before* releasing
        // anything, so a late failure rolls the whole segment back.
        let Some(o) = self.open.take() else { return };
        let key = match o.data_key {
            Some(k) => k,
            None => return,
        };
        let mut releases: Vec<Arc<Tuple>> = Vec::with_capacity(o.staged.len());
        for entry in &o.staged {
            match entry {
                Staged::Clear(t) => releases.push(t.clone()),
                Staged::Sealed(idx, sealed) => {
                    let aad = aad_for(stream, seg, o.epoch, *idx);
                    let Some(plain) = open(&key, &nonce_for(*idx, seg), &aad, sealed) else {
                        self.open = Some(o);
                        self.rollback_open(CipherViolation::AuthFailed);
                        return;
                    };
                    match decode_tuple(&mut plain.as_slice()) {
                        Ok(t) => releases.push(Arc::new(t)),
                        Err(_) => {
                            self.open = Some(o);
                            self.rollback_open(CipherViolation::Malformed);
                            return;
                        }
                    }
                }
            }
        }
        for t in releases {
            self.released += 1;
            self.recorder.record(
                t.tid.raw(),
                t.ts.0,
                AuditEvent::Released { role: o.release_role, sp_ts: o.sp_ts },
            );
            out.push(t);
        }
    }

    fn on_key_epoch(&mut self, stream: u32, epoch: u64) {
        if !self.stream_ok(stream) {
            self.suppress(NO_TUPLE, NO_SP, CipherViolation::Malformed);
            return;
        }
        if epoch <= self.epoch {
            // Epochs only advance; a rollback claim is a replay.
            self.suppress(NO_TUPLE, NO_SP, CipherViolation::Replayed);
            return;
        }
        if self.open.is_some() {
            self.rollback_open(CipherViolation::Incomplete);
        }
        self.epoch = epoch;
        self.refresh_role_keys();
    }

    // -- snapshot / restore -------------------------------------------

    /// Serializes the release state machine (rollback journal included)
    /// for checkpointing, like every other operator.
    pub fn snapshot(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.epoch.to_be_bytes());
        buf.extend_from_slice(&self.released.to_be_bytes());
        buf.extend_from_slice(&self.denied.to_be_bytes());
        buf.extend_from_slice(&self.released_unauthenticated.to_be_bytes());
        for v in &self.violations {
            buf.extend_from_slice(&v.to_be_bytes());
        }
        match (self.stream, self.seg_highwater) {
            (Some(s), _) => {
                buf.push(1);
                buf.extend_from_slice(&s.to_be_bytes());
            }
            (None, _) => buf.push(0),
        }
        match self.seg_highwater {
            Some(hw) => {
                buf.push(1);
                buf.extend_from_slice(&hw.to_be_bytes());
            }
            None => buf.push(0),
        }
        match &self.open {
            None => buf.push(0),
            Some(o) => {
                buf.push(1);
                buf.extend_from_slice(&o.seg.to_be_bytes());
                buf.extend_from_slice(&o.epoch.to_be_bytes());
                buf.extend_from_slice(&o.sp_ts.to_be_bytes());
                match &o.data_key {
                    Some(k) => {
                        buf.push(1);
                        buf.extend_from_slice(k);
                    }
                    None => buf.push(0),
                }
                buf.extend_from_slice(&o.release_role.to_be_bytes());
                buf.extend_from_slice(&o.next_idx.to_be_bytes());
                o.digest.snapshot(buf);
                buf.push(match o.poisoned {
                    None => 0xFF,
                    Some(p) => p.code(),
                });
                match &o.digest_frame {
                    Some((count, d)) => {
                        buf.push(1);
                        buf.extend_from_slice(&count.to_be_bytes());
                        buf.extend_from_slice(d);
                    }
                    None => buf.push(0),
                }
                buf.extend_from_slice(&(o.staged.len() as u32).to_be_bytes());
                for entry in &o.staged {
                    match entry {
                        Staged::Clear(t) => {
                            buf.push(0);
                            let mut tb = Vec::new();
                            encode_tuple(t, &mut tb);
                            buf.extend_from_slice(&(tb.len() as u32).to_be_bytes());
                            buf.extend_from_slice(&tb);
                        }
                        Staged::Sealed(idx, b) => {
                            buf.push(1);
                            buf.extend_from_slice(&idx.to_be_bytes());
                            buf.extend_from_slice(&(b.len() as u32).to_be_bytes());
                            buf.extend_from_slice(b);
                        }
                    }
                }
            }
        }
    }

    /// Restores a snapshot taken by [`Self::snapshot`]. Fail closed: a
    /// truncated or tampered snapshot yields `None` and the client keeps
    /// its current (safe) state.
    #[must_use]
    pub fn restore(&mut self, mut bytes: &[u8]) -> Option<()> {
        fn take<'a>(b: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
            if b.len() < n {
                return None;
            }
            let (head, rest) = b.split_at(n);
            *b = rest;
            Some(head)
        }
        fn u64_at(b: &mut &[u8]) -> Option<u64> {
            take(b, 8).map(|s| u64::from_be_bytes(s.try_into().unwrap_or([0; 8])))
        }
        fn u32_at(b: &mut &[u8]) -> Option<u32> {
            take(b, 4).map(|s| u32::from_be_bytes(s.try_into().unwrap_or([0; 4])))
        }
        let b = &mut bytes;
        let epoch = u64_at(b)?;
        let released = u64_at(b)?;
        let denied = u64_at(b)?;
        let released_unauth = u64_at(b)?;
        let mut violations = [0u64; 9];
        for v in &mut violations {
            *v = u64_at(b)?;
        }
        let stream = match take(b, 1)?[0] {
            0 => None,
            _ => Some(u32_at(b)?),
        };
        let seg_highwater = match take(b, 1)?[0] {
            0 => None,
            _ => Some(u64_at(b)?),
        };
        let open = match take(b, 1)?[0] {
            0 => None,
            _ => {
                let seg = u64_at(b)?;
                let ep = u64_at(b)?;
                let sp_ts = u64_at(b)?;
                let data_key = match take(b, 1)?[0] {
                    0 => None,
                    _ => {
                        let k = take(b, crypto::KEY_LEN)?;
                        let mut key = [0u8; crypto::KEY_LEN];
                        key.copy_from_slice(k);
                        Some(key)
                    }
                };
                let release_role = u32_at(b)?;
                let next_idx = u32_at(b)?;
                let digest = Sha256::restore(b)?;
                let poisoned = match take(b, 1)?[0] {
                    0xFF => None,
                    0 => Some(CipherViolation::AuthFailed),
                    1 => Some(CipherViolation::Truncated),
                    2 => Some(CipherViolation::Replayed),
                    3 => Some(CipherViolation::NonceReused),
                    4 => Some(CipherViolation::StaleKeyEpoch),
                    5 => Some(CipherViolation::DigestMismatch),
                    6 => Some(CipherViolation::DigestMissing),
                    7 => Some(CipherViolation::Incomplete),
                    8 => Some(CipherViolation::Malformed),
                    _ => return None,
                };
                let digest_frame = match take(b, 1)?[0] {
                    0 => None,
                    _ => {
                        let count = u32_at(b)?;
                        let d = take(b, DIGEST_LEN)?;
                        let mut digest = [0u8; DIGEST_LEN];
                        digest.copy_from_slice(d);
                        Some((count, digest))
                    }
                };
                let n = u32_at(b)? as usize;
                if n > self.in_flight {
                    return None;
                }
                let mut staged = Vec::with_capacity(n);
                let mut staged_bytes = 0;
                for _ in 0..n {
                    let entry = match take(b, 1)?[0] {
                        0 => {
                            let len = u32_at(b)? as usize;
                            let tb = take(b, len)?;
                            let t = decode_tuple(&mut &tb[..]).ok()?;
                            Staged::Clear(Arc::new(t))
                        }
                        1 => {
                            let idx = u32_at(b)?;
                            let len = u32_at(b)? as usize;
                            Staged::Sealed(idx, take(b, len)?.to_vec())
                        }
                        _ => return None,
                    };
                    staged_bytes += entry.mem_bytes();
                    staged.push(entry);
                }
                Some(ClientSegment {
                    seg,
                    epoch: ep,
                    sp_ts,
                    data_key,
                    release_role,
                    next_idx,
                    digest,
                    staged,
                    staged_bytes,
                    digest_frame,
                    poisoned,
                })
            }
        };
        if !b.is_empty() {
            return None;
        }
        self.epoch = epoch;
        self.released = released;
        self.denied = denied;
        self.released_unauthenticated = released_unauth;
        self.violations = violations;
        self.stream = stream;
        self.seg_highwater = seg_highwater;
        self.open = open;
        // Audit state is observability, not operator state: cleared on
        // restore like every recorder in the engine.
        self.recorder.clear();
        self.refresh_role_keys();
        Some(())
    }
}

// ---------------------------------------------------------------------------
// The mechanism wrapper
// ---------------------------------------------------------------------------

/// Fixed master key of the self-contained mechanism instance: the
/// comparison harness measures enforcement architecture, not key
/// distribution, so provider and client share an in-process authority.
const MECH_MASTER: Key = [0x5Bu8; crypto::KEY_LEN];

/// The fourth [`EnforcementMechanism`]: provider → honest relay →
/// client, all in-process, releasing exactly what the plaintext
/// mechanisms release on a clean stream (the equivalence tests and the
/// bench release lint enforce this).
pub struct CryptoEnforced {
    provider: CryptoProvider,
    relay: UntrustedRelay,
    client: CryptoClient,
    frames: Vec<Vec<u8>>,
    stats: MechStats,
}

impl CryptoEnforced {
    /// A mechanism instance enforcing for a query with `query_roles`,
    /// journaling up to `in_flight` frames per segment.
    #[must_use]
    pub fn new(
        catalog: Arc<RoleCatalog>,
        schema: Arc<Schema>,
        query_roles: RoleSet,
        in_flight: usize,
    ) -> Self {
        let authority = Arc::new(KeyAuthority::new(MECH_MASTER));
        Self {
            provider: CryptoProvider::new(catalog, schema, authority.clone()),
            relay: UntrustedRelay::default(),
            client: CryptoClient::new(authority, &query_roles, in_flight),
            frames: Vec::new(),
            stats: MechStats::default(),
        }
    }

    /// The client side (counters, audit trail, snapshot/restore).
    #[must_use]
    pub fn client(&self) -> &CryptoClient {
        &self.client
    }

    /// The relay's forwarded-traffic counters.
    #[must_use]
    pub fn relay(&self) -> &UntrustedRelay {
        &self.relay
    }
}

impl EnforcementMechanism for CryptoEnforced {
    fn name(&self) -> &'static str {
        "crypto-enforced"
    }

    fn process(&mut self, elem: StreamElement, out: &mut Vec<Arc<Tuple>>) {
        let start = Instant::now();
        self.frames.clear();
        let mut frames = std::mem::take(&mut self.frames);
        self.provider.push(elem, &mut frames);
        for f in frames.drain(..) {
            let delivered = self.relay.forward(f);
            self.client.feed(&delivered, out);
        }
        self.frames = frames;
        self.stats.elapsed += start.elapsed();
    }

    fn finish(&mut self, out: &mut Vec<Arc<Tuple>>) {
        let start = Instant::now();
        self.frames.clear();
        let mut frames = std::mem::take(&mut self.frames);
        self.provider.finish(&mut frames);
        for f in frames.drain(..) {
            let delivered = self.relay.forward(f);
            self.client.feed(&delivered, out);
        }
        self.frames = frames;
        self.stats.elapsed += start.elapsed();
    }

    fn policy_mem_bytes(&self) -> usize {
        self.policy_state().total()
    }

    fn policy_state(&self) -> PolicyState {
        PolicyState {
            policy_bytes: self.provider.policy_table_bytes(),
            key_table_bytes: self.client.key_table_bytes() + self.provider.authority.mem_bytes(),
            cipher_buffer_bytes: self.client.cipher_buffer_bytes(),
        }
    }

    fn elapsed(&self) -> Duration {
        self.stats.elapsed
    }

    fn released(&self) -> u64 {
        self.client.released()
    }

    fn denied(&self) -> u64 {
        self.client.denied()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use sp_core::{
        DataDescription, SecurityPunctuation, StreamId, Timestamp, TupleId, Value, ValueType,
    };

    fn parts(roles: &[u32], in_flight: usize) -> (CryptoProvider, CryptoClient, Arc<KeyAuthority>) {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(16);
        let authority = Arc::new(KeyAuthority::new([9u8; 32]));
        let provider = CryptoProvider::new(
            Arc::new(c),
            Schema::of("loc", &[("id", ValueType::Int)]),
            authority.clone(),
        );
        let client = CryptoClient::new(
            authority.clone(),
            &roles.iter().map(|&r| RoleId(r)).collect(),
            in_flight,
        );
        (provider, client, authority)
    }

    fn mech(roles: &[u32]) -> CryptoEnforced {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(16);
        CryptoEnforced::new(
            Arc::new(c),
            Schema::of("loc", &[("id", ValueType::Int)]),
            roles.iter().map(|&r| RoleId(r)).collect(),
            10_000,
        )
    }

    fn tup(tid: u64, ts: u64) -> StreamElement {
        StreamElement::tuple(Tuple::new(
            StreamId(0),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64)],
        ))
    }

    fn wide_tup(tid: u64, ts: u64) -> StreamElement {
        StreamElement::tuple(Tuple::new(
            StreamId(0),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::text("x".repeat(200))],
        ))
    }

    fn sp(roles: &[u32], ts: u64) -> StreamElement {
        StreamElement::punctuation(SecurityPunctuation::grant_all(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        ))
    }

    fn neg_sp(roles: &[u32], ts: u64) -> StreamElement {
        let mut p = SecurityPunctuation::grant_all(
            roles.iter().map(|&r| RoleId(r)).collect(),
            Timestamp(ts),
        );
        p.sign = Sign::Negative;
        p.ddp = DataDescription::everything();
        StreamElement::punctuation(p)
    }

    fn run(
        provider: &mut CryptoProvider,
        client: &mut CryptoClient,
        input: Vec<StreamElement>,
    ) -> Vec<Arc<Tuple>> {
        let mut out = Vec::new();
        let mut frames = Vec::new();
        for e in input {
            provider.push(e, &mut frames);
        }
        provider.finish(&mut frames);
        for f in &frames {
            client.feed(f, &mut out);
        }
        out
    }

    #[test]
    fn releases_like_the_shield() {
        let (mut p, mut c, _) = parts(&[1], 64);
        let out =
            run(&mut p, &mut c, vec![sp(&[1], 0), tup(1, 1), sp(&[2], 2), tup(2, 3), tup(3, 4)]);
        let ids: Vec<u64> = out.iter().map(|t| t.tid.raw()).collect();
        assert_eq!(ids, vec![1]);
        assert_eq!(c.released(), 1);
        assert_eq!(c.denied(), 2);
        assert_eq!(c.released_unauthenticated(), 0);
    }

    #[test]
    fn mechanism_wrapper_matches_and_counts() {
        let mut m = mech(&[1]);
        let mut out = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1), tup(2, 2), sp(&[2], 3), tup(3, 4)] {
            m.process(e, &mut out);
        }
        m.finish(&mut out);
        assert_eq!(out.iter().map(|t| t.tid.raw()).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(m.released(), 2);
        assert_eq!(m.denied(), 1);
        assert_eq!(m.name(), "crypto-enforced");
        assert!(m.relay().forwarded > 0, "everything crossed the relay");
        let state = m.policy_state();
        assert!(state.key_table_bytes > 0, "key table accounted");
        assert_eq!(state.cipher_buffer_bytes, 0, "journal drained at finish");
        assert!(m.elapsed() > Duration::ZERO);
    }

    #[test]
    fn large_frames_buffer_until_digest() {
        let (mut p, mut c, _) = parts(&[1], 64);
        let out = run(&mut p, &mut c, vec![sp(&[1], 0), wide_tup(1, 1), wide_tup(2, 2)]);
        assert_eq!(out.len(), 2, "large frames commit at terminator");
        assert_eq!(c.cipher_buffer_bytes(), 0, "journal drained");
    }

    #[test]
    fn journal_drains_to_zero_at_every_terminator() {
        let (mut p, mut c, _) = parts(&[1], 64);
        let mut frames = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1), tup(2, 2), wide_tup(3, 3)] {
            p.push(e, &mut frames);
        }
        p.finish(&mut frames);
        let mut out = Vec::new();
        let mut saw_data_with_journal = false;
        for f in &frames {
            c.feed(f, &mut out);
            if c.cipher_buffer_bytes() > 0 {
                saw_data_with_journal = true;
            }
            if matches!(CipherFrame::decode_frame(f), Ok(Frame::Terminator { .. })) {
                assert_eq!(c.cipher_buffer_bytes(), 0, "terminator must drain the journal");
            }
        }
        assert!(saw_data_with_journal, "journal held tentative state mid-segment");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn no_capsule_means_authorized_denial() {
        let (mut p, mut c, _) = parts(&[3], 64);
        let out = run(&mut p, &mut c, vec![sp(&[1, 2], 0), tup(1, 1), tup(2, 2)]);
        assert!(out.is_empty());
        assert_eq!(c.denied(), 2);
        assert_eq!(c.violations_total(), 0, "denial is not a violation");
    }

    #[test]
    fn default_deny_without_policy() {
        let (mut p, mut c, _) = parts(&[1], 64);
        let out = run(&mut p, &mut c, vec![tup(1, 1), tup(2, 2)]);
        assert!(out.is_empty());
        assert_eq!(c.released(), 0);
    }

    #[test]
    fn flipped_ciphertext_rolls_back_the_segment() {
        let (mut p, mut c, _) = parts(&[1], 64);
        let mut frames = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1), tup(2, 2)] {
            p.push(e, &mut frames);
        }
        p.finish(&mut frames);
        // Flip one ciphertext byte in the *second* DATA frame (the first
        // is already tentatively released by then), re-encoding with a
        // fresh CRC like a malicious server would.
        let mut out = Vec::new();
        for f in &frames {
            let delivered = match CipherFrame::decode_frame(f) {
                Ok(Frame::Data { stream, seg, idx: 1, mut sealed }) => {
                    sealed[0] ^= 1;
                    Frame::Data { stream, seg, idx: 1, sealed }.encode_to_vec()
                }
                _ => f.clone(),
            };
            c.feed(&delivered, &mut out);
        }
        assert!(out.is_empty(), "corrupted segment must not release anything");
        assert!(c.violation_count(CipherViolation::AuthFailed) > 0);
        assert_eq!(c.released_unauthenticated(), 0);
        // The rollback is audited.
        let rolled = c
            .recorder()
            .records()
            .filter(|r| matches!(r.event, AuditEvent::TentativeRolledBack { .. }))
            .count();
        assert!(rolled > 0, "tentative releases audited on rollback");
    }

    #[test]
    fn replayed_segment_is_refused() {
        let (mut p, mut c, _) = parts(&[1], 64);
        let mut frames = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1)] {
            p.push(e, &mut frames);
        }
        p.finish(&mut frames);
        let mut out = Vec::new();
        for f in &frames {
            c.feed(f, &mut out);
        }
        assert_eq!(out.len(), 1);
        // Replay the whole segment.
        for f in &frames {
            c.feed(f, &mut out);
        }
        assert_eq!(out.len(), 1, "replay must not re-release");
        assert!(c.violation_count(CipherViolation::Replayed) > 0);
    }

    #[test]
    fn revocation_rides_the_sp_channel() {
        let (mut p, mut c, authority) = parts(&[1], 64);
        let out = run(
            &mut p,
            &mut c,
            vec![sp(&[1], 0), tup(1, 1), neg_sp(&[1], 10), sp(&[2], 20), tup(2, 21), tup(3, 22)],
        );
        // Tuple 1 released under the pre-revocation policy; after the
        // negative sp role 1 is revoked and the policy grants role 2
        // only, so nothing else is released.
        assert_eq!(out.iter().map(|t| t.tid.raw()).collect::<Vec<_>>(), vec![1]);
        assert_eq!(authority.epoch(), 1);
        assert!(authority.role_key(0, 1, 1).is_none(), "revoked role gets no key");
        assert!(authority.role_key(0, 2, 1).is_some());
        assert!(authority.role_key(0, 1, 0).is_some(), "pre-revocation keys stand");
        assert!(authority.role_key(0, 2, 2).is_none(), "future epoch gets no key");
    }

    #[test]
    fn stale_epoch_header_is_suppressed() {
        let (mut p, mut c, _) = parts(&[1], 64);
        let mut frames = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1), neg_sp(&[9], 5), sp(&[1], 10), tup(2, 11)] {
            p.push(e, &mut frames);
        }
        p.finish(&mut frames);
        // Tamper: claim epoch 0 on the post-revocation header.
        let mut out = Vec::new();
        for f in &frames {
            let delivered = match CipherFrame::decode_frame(f) {
                Ok(Frame::Header { stream, seg, key_epoch: 1, sp_ts, capsules }) => {
                    Frame::Header { stream, seg, key_epoch: 0, sp_ts, capsules }.encode_to_vec()
                }
                _ => f.clone(),
            };
            c.feed(&delivered, &mut out);
        }
        assert_eq!(out.iter().map(|t| t.tid.raw()).collect::<Vec<_>>(), vec![1]);
        assert!(c.violation_count(CipherViolation::StaleKeyEpoch) > 0);
    }

    #[test]
    fn nonce_swap_is_refused() {
        let (mut p, mut c, _) = parts(&[1], 64);
        let mut frames = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1), tup(2, 2)] {
            p.push(e, &mut frames);
        }
        p.finish(&mut frames);
        // Swap the idx fields of the two DATA frames.
        let mut delivered: Vec<Vec<u8>> = frames.clone();
        let data_pos: Vec<usize> = delivered
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(CipherFrame::decode_frame(f), Ok(Frame::Data { .. })))
            .map(|(i, _)| i)
            .collect();
        let (a, b) = (data_pos[0], data_pos[1]);
        if let (
            Ok(Frame::Data { stream, seg, idx: i1, sealed: s1 }),
            Ok(Frame::Data { idx: i2, sealed: s2, .. }),
        ) = (CipherFrame::decode_frame(&delivered[a]), CipherFrame::decode_frame(&delivered[b]))
        {
            delivered[a] = Frame::Data { stream, seg, idx: i2, sealed: s1 }.encode_to_vec();
            delivered[b] = Frame::Data { stream, seg, idx: i1, sealed: s2 }.encode_to_vec();
        }
        let mut out = Vec::new();
        for f in &delivered {
            c.feed(f, &mut out);
        }
        assert!(out.is_empty());
        assert!(c.violation_count(CipherViolation::NonceReused) > 0);
    }

    #[test]
    fn dropped_digest_rolls_back() {
        let (mut p, mut c, _) = parts(&[1], 64);
        let mut frames = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1), tup(2, 2)] {
            p.push(e, &mut frames);
        }
        p.finish(&mut frames);
        let mut out = Vec::new();
        for f in &frames {
            if matches!(CipherFrame::decode_frame(f), Ok(Frame::Digest { .. })) {
                continue;
            }
            c.feed(f, &mut out);
        }
        assert!(out.is_empty());
        assert!(c.violation_count(CipherViolation::DigestMissing) > 0);
    }

    #[test]
    fn truncated_data_frame_fails_closed() {
        let (mut p, mut c, _) = parts(&[1], 64);
        let mut frames = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1)] {
            p.push(e, &mut frames);
        }
        p.finish(&mut frames);
        let mut out = Vec::new();
        for f in &frames {
            let delivered = match CipherFrame::decode_frame(f) {
                Ok(Frame::Data { stream, seg, idx, sealed }) => {
                    Frame::Data { stream, seg, idx, sealed: sealed[..TAG_LEN - 2].to_vec() }
                        .encode_to_vec()
                }
                _ => f.clone(),
            };
            c.feed(&delivered, &mut out);
        }
        assert!(out.is_empty());
        assert!(c.violation_count(CipherViolation::Truncated) > 0);
    }

    #[test]
    fn broken_client_releases_unauthenticated_frames() {
        let (mut p, c, _) = parts(&[1], 64);
        let mut c = c.with_broken_tag_check();
        let mut frames = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1), tup(2, 2)] {
            p.push(e, &mut frames);
        }
        p.finish(&mut frames);
        let mut out = Vec::new();
        for f in &frames {
            let delivered = match CipherFrame::decode_frame(f) {
                Ok(Frame::Data { stream, seg, idx: 0, mut sealed }) => {
                    sealed[4] ^= 0x20;
                    Frame::Data { stream, seg, idx: 0, sealed }.encode_to_vec()
                }
                _ => f.clone(),
            };
            c.feed(&delivered, &mut out);
        }
        assert!(c.released_unauthenticated() > 0, "the control must actually misbehave");
        assert!(!out.is_empty(), "the broken client releases garbled tuples");
    }

    #[test]
    fn snapshot_restore_round_trips_mid_segment() {
        let (mut p, mut c, authority) = parts(&[1], 64);
        let mut frames = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1), tup(2, 2), wide_tup(3, 3)] {
            p.push(e, &mut frames);
        }
        p.finish(&mut frames);
        // Feed up to mid-segment (stop before the digest), snapshot,
        // then finish on a restored twin: releases must match a
        // straight-through run.
        let cut = frames
            .iter()
            .position(|f| matches!(CipherFrame::decode_frame(f), Ok(Frame::Digest { .. })))
            .unwrap();
        let mut out = Vec::new();
        for f in &frames[..cut] {
            c.feed(f, &mut out);
        }
        assert!(c.cipher_buffer_bytes() > 0, "snapshot taken mid-journal");
        let mut snap = Vec::new();
        c.snapshot(&mut snap);
        let mut twin = CryptoClient::new(authority, &RoleSet::single(RoleId(1)), 64);
        twin.restore(&snap).expect("restore");
        for f in &frames[cut..] {
            twin.feed(f, &mut out);
        }
        assert_eq!(out.iter().map(|t| t.tid.raw()).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(twin.cipher_buffer_bytes(), 0);
    }

    #[test]
    fn truncated_snapshot_is_refused() {
        let (mut p, mut c, authority) = parts(&[1], 64);
        let mut frames = Vec::new();
        for e in [sp(&[1], 0), tup(1, 1)] {
            p.push(e, &mut frames);
        }
        for f in &frames {
            c.feed(f, &mut Vec::new());
        }
        let mut snap = Vec::new();
        c.snapshot(&mut snap);
        let mut twin = CryptoClient::new(authority, &RoleSet::single(RoleId(1)), 64);
        for cut in 0..snap.len() {
            assert!(twin.restore(&snap[..cut]).is_none(), "cut {cut} must be refused");
        }
        assert!(twin.restore(&snap).is_some());
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        let (_, mut c, _) = parts(&[1], 8);
        let mut out = Vec::new();
        let mut rngish = 0x12345u64;
        for len in 0..200usize {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    rngish = rngish.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (rngish >> 33) as u8
                })
                .collect();
            c.feed(&bytes, &mut out);
        }
        assert!(out.is_empty());
        assert_eq!(c.released_unauthenticated(), 0);
    }
}
