//! Baseline 1: the **store-and-probe** mechanism (§I-C).
//!
//! Policies are collected in one central, persistent policy table. Every
//! policy change (here: an arriving punctuation, playing the role of a
//! policy-update message) updates the table; every data tuple probes the
//! table to decide access. Simple, but each of the possibly very frequent
//! policy changes pays a table update, and *every* tuple pays a probe —
//! there is no sharing of access decisions between adjacent tuples.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sp_core::{
    Policy, RoleCatalog, RoleSet, Schema, SecurityPunctuation, StreamElement, Timestamp, Tuple,
};
use sp_pattern::Pattern;

use crate::mechanism::{EnforcementMechanism, MechStats};

/// One table row: a policy for all objects matching `scope`.
#[derive(Debug)]
struct TableEntry {
    scope: Pattern,
    policy: Policy,
}

/// The store-and-probe mechanism.
pub struct StoreAndProbe {
    catalog: Arc<RoleCatalog>,
    schema: Arc<Schema>,
    query_roles: RoleSet,
    /// The central policy table, keyed by the policy's object scope. A
    /// literal scope over tuple ids also lands in `exact` for O(1) probing
    /// by id; every other scope is scanned per probe — the central-table
    /// bottleneck the paper describes.
    table: HashMap<String, TableEntry>,
    /// tid → scope key, for exact probes.
    exact: HashMap<u64, String>,
    stats: MechStats,
}

impl StoreAndProbe {
    /// A mechanism instance enforcing for a query with `query_roles`. The
    /// `_in_flight` capacity is accepted for interface uniformity; the
    /// central table is persistent and does not buffer tuples.
    #[must_use]
    pub fn new(
        catalog: Arc<RoleCatalog>,
        schema: Arc<Schema>,
        query_roles: RoleSet,
        _in_flight: usize,
    ) -> Self {
        Self {
            catalog,
            schema,
            query_roles,
            table: HashMap::new(),
            exact: HashMap::new(),
            stats: MechStats::default(),
        }
    }

    /// Number of policies currently stored.
    #[must_use]
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    fn update(&mut self, sp: &SecurityPunctuation) {
        if !sp.matches_stream(self.schema.name()) {
            return;
        }
        let key = sp.ddp.tuple.source().to_owned();
        let mut policy = Policy::deny_all(sp.ts);
        sp.apply_to(&mut policy, &self.catalog, &self.schema);
        match self.table.get_mut(&key) {
            Some(entry) => {
                // Same timestamp: same policy, union. Newer: override.
                if sp.ts == entry.policy.ts {
                    entry.policy = entry.policy.union(&policy);
                } else if sp.ts > entry.policy.ts {
                    entry.policy = policy;
                }
            }
            None => {
                if let Some(lit) = sp.ddp.tuple.as_literal() {
                    if let Ok(tid) = lit.parse::<u64>() {
                        self.exact.insert(tid, key.clone());
                    }
                }
                self.table.insert(key, TableEntry { scope: sp.ddp.tuple.clone(), policy });
            }
        }
    }

    /// Probes the table for the policy governing `tuple`: the newest
    /// matching entry wins (override semantics); equal-timestamp matches
    /// union.
    fn probe(&self, tuple: &Tuple) -> Option<RoleSet> {
        let tid = tuple.tid.raw();
        // Exact probe first.
        let mut best_ts = Timestamp::ZERO;
        let mut roles: Option<RoleSet> = None;
        if let Some(key) = self.exact.get(&tid) {
            if let Some(entry) = self.table.get(key) {
                best_ts = entry.policy.ts;
                roles = Some(entry.policy.tuple_roles().clone());
            }
        }
        // Scan pattern-scoped entries (ranges, wildcards).
        for entry in self.table.values() {
            if entry.scope.as_literal().is_some() {
                continue; // already covered by the exact probe
            }
            if !entry.scope.matches_u64(tid) {
                continue;
            }
            let ts = entry.policy.ts;
            match &mut roles {
                None => {
                    best_ts = ts;
                    roles = Some(entry.policy.tuple_roles().clone());
                }
                Some(r) => {
                    if ts > best_ts {
                        best_ts = ts;
                        *r = entry.policy.tuple_roles().clone();
                    } else if ts == best_ts {
                        r.union_with(entry.policy.tuple_roles());
                    }
                }
            }
        }
        roles
    }
}

impl EnforcementMechanism for StoreAndProbe {
    fn name(&self) -> &'static str {
        "store-and-probe"
    }

    fn process(&mut self, elem: StreamElement, out: &mut Vec<Arc<Tuple>>) {
        let start = Instant::now();
        match elem {
            StreamElement::Punctuation(sp) => self.update(&sp),
            StreamElement::Tuple(tuple) => {
                let authorized =
                    self.probe(&tuple).is_some_and(|roles| roles.intersects(&self.query_roles));
                if authorized {
                    self.stats.released += 1;
                    out.push(tuple);
                } else {
                    self.stats.denied += 1;
                }
            }
        }
        self.stats.elapsed += start.elapsed();
    }

    fn policy_mem_bytes(&self) -> usize {
        // Conventional (role-list) policy storage: the central table does
        // not benefit from the sp model's bitmap encoding.
        let table: usize = self
            .table
            .iter()
            .map(|(k, e)| k.len() + e.scope.source().len() + e.policy.mem_bytes_list())
            .sum();
        let exact = self.exact.len() * (8 + std::mem::size_of::<String>());
        table + exact
    }

    fn elapsed(&self) -> Duration {
        self.stats.elapsed
    }

    fn released(&self) -> u64 {
        self.stats.released
    }

    fn denied(&self) -> u64 {
        self.stats.denied
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::mechanism::run_mechanism;
    use sp_core::{DataDescription, RoleId, StreamId, TupleId, Value, ValueType};

    fn setup(roles: &[u32]) -> StoreAndProbe {
        let mut c = RoleCatalog::new();
        c.register_synthetic_roles(16);
        StoreAndProbe::new(
            Arc::new(c),
            Schema::of("loc", &[("id", ValueType::Int)]),
            roles.iter().map(|&r| RoleId(r)).collect(),
            10_000,
        )
    }

    fn tup(tid: u64, ts: u64) -> StreamElement {
        StreamElement::tuple(Tuple::new(
            StreamId(0),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64)],
        ))
    }

    fn sp_for(tid: u64, roles: &[u32], ts: u64) -> StreamElement {
        StreamElement::punctuation(
            SecurityPunctuation::grant_all(
                roles.iter().map(|&r| RoleId(r)).collect(),
                Timestamp(ts),
            )
            .with_ddp(DataDescription {
                tuple: Pattern::literal(&tid.to_string()),
                ..DataDescription::everything()
            }),
        )
    }

    #[test]
    fn denies_without_policy() {
        let mut m = setup(&[1]);
        let out = run_mechanism(&mut m, vec![tup(7, 1)]);
        assert!(out.is_empty());
        assert_eq!(m.denied(), 1);
    }

    #[test]
    fn exact_probe_matches_object_policies() {
        let mut m = setup(&[1]);
        let out = run_mechanism(&mut m, vec![sp_for(7, &[1], 0), tup(7, 1), tup(8, 2)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tid.raw(), 7);
        assert_eq!(m.table_len(), 1);
    }

    #[test]
    fn newer_policy_overrides() {
        let mut m = setup(&[1]);
        let out = run_mechanism(
            &mut m,
            vec![sp_for(7, &[1], 0), tup(7, 1), sp_for(7, &[2], 5), tup(7, 6)],
        );
        assert_eq!(out.len(), 1, "revoked after override");
        assert_eq!(m.released(), 1);
        assert_eq!(m.denied(), 1);
    }

    #[test]
    fn same_ts_policies_union() {
        let mut m = setup(&[2]);
        let out = run_mechanism(&mut m, vec![sp_for(7, &[1], 3), sp_for(7, &[2], 3), tup(7, 4)]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn range_scoped_policies_probe_by_scan() {
        let mut m = setup(&[1]);
        let range_sp = StreamElement::punctuation(
            SecurityPunctuation::grant_all(RoleSet::from([1]), Timestamp(0))
                .with_ddp(DataDescription::tuple_range(100, 200)),
        );
        let out = run_mechanism(&mut m, vec![range_sp, tup(150, 1), tup(201, 2)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].tid.raw(), 150);
    }

    #[test]
    fn memory_tracks_table_size() {
        let mut m = setup(&[1]);
        let empty = m.policy_mem_bytes();
        let _ = run_mechanism(&mut m, (0..50).map(|i| sp_for(i, &[1], 0)).collect::<Vec<_>>());
        assert!(m.policy_mem_bytes() > empty);
        assert_eq!(m.table_len(), 50);
        assert_eq!(m.name(), "store-and-probe");
        assert!(m.elapsed() > Duration::ZERO);
    }
}
