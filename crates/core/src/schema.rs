//! Stream schemas: ordered, named, typed attribute lists.

use std::fmt;
use std::sync::Arc;

use crate::value::ValueType;

/// One attribute declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name, unique within the schema.
    pub name: Arc<str>,
    /// Declared type.
    pub ty: ValueType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl AsRef<str>, ty: ValueType) -> Self {
        Self { name: Arc::from(name.as_ref()), ty }
    }
}

/// An immutable, shareable stream schema.
///
/// Schemas are created once per stream registration and shared via
/// [`Arc<Schema>`] by every tuple-processing operator; lookups by name are
/// linear (schemas are a handful of attributes wide).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: Arc<str>,
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from a stream name and field list.
    ///
    /// # Panics
    ///
    /// Panics if two fields share a name — schemas are built at registration
    /// time from trusted catalogs, so this is a programming error.
    #[must_use]
    pub fn new(name: impl AsRef<str>, fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate field name {:?} in schema {:?}",
                f.name,
                name.as_ref()
            );
        }
        Self { name: Arc::from(name.as_ref()), fields }
    }

    /// Convenience constructor from `(name, type)` pairs.
    #[must_use]
    pub fn of(name: &str, fields: &[(&str, ValueType)]) -> Arc<Self> {
        Arc::new(Self::new(name, fields.iter().map(|(n, t)| Field::new(n, *t)).collect()))
    }

    /// The stream name this schema describes.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered field list.
    #[must_use]
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of the attribute with the given name.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.as_ref() == name)
    }

    /// Field at `idx`.
    #[must_use]
    pub fn field(&self, idx: usize) -> Option<&Field> {
        self.fields.get(idx)
    }

    /// Derives the schema produced by projecting the given attribute indices
    /// (in the given order), named `{base}_proj`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    #[must_use]
    pub fn project(&self, indices: &[usize]) -> Schema {
        let fields = indices.iter().map(|&i| self.fields[i].clone()).collect();
        Schema { name: Arc::from(format!("{}_proj", self.name).as_str()), fields }
    }

    /// Derives the concatenated schema of a join output: fields of `self`
    /// then fields of `right`, with right-side duplicates renamed
    /// `{right_name}.{field}`.
    #[must_use]
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        for f in &right.fields {
            if self.index_of(&f.name).is_some() {
                fields.push(Field {
                    name: Arc::from(format!("{}.{}", right.name, f.name).as_str()),
                    ty: f.ty,
                });
            } else {
                fields.push(f.clone());
            }
        }
        Schema { name: Arc::from(format!("{}_{}", self.name, right.name).as_str()), fields }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn sample() -> Schema {
        Schema::new(
            "HeartRate",
            vec![
                Field::new("Patient_id", ValueType::Int),
                Field::new("Beats_per_min", ValueType::Int),
            ],
        )
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("Patient_id"), Some(0));
        assert_eq!(s.index_of("Beats_per_min"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.field(1).unwrap().name.as_ref(), "Beats_per_min");
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_rejected() {
        let _ = Schema::new(
            "s",
            vec![Field::new("a", ValueType::Int), Field::new("a", ValueType::Int)],
        );
    }

    #[test]
    fn projection_derives_schema() {
        let s = sample().project(&[1]);
        assert_eq!(s.arity(), 1);
        assert_eq!(s.index_of("Beats_per_min"), Some(0));
        assert_eq!(s.name(), "HeartRate_proj");
    }

    #[test]
    fn join_renames_collisions() {
        let left = sample();
        let right = Schema::new(
            "BodyTemperature",
            vec![
                Field::new("Patient_id", ValueType::Int),
                Field::new("Temperature", ValueType::Float),
            ],
        );
        let j = left.join(&right);
        assert_eq!(j.arity(), 4);
        assert_eq!(j.index_of("Patient_id"), Some(0));
        assert_eq!(j.index_of("BodyTemperature.Patient_id"), Some(2));
        assert_eq!(j.index_of("Temperature"), Some(3));
    }

    #[test]
    fn display() {
        assert_eq!(sample().to_string(), "HeartRate(Patient_id: INT, Beats_per_min: INT)");
    }
}
