//! Stream elements: the union of data tuples and security punctuations.

use std::fmt;
use std::sync::Arc;

use crate::ids::Timestamp;
use crate::punctuation::SecurityPunctuation;
use crate::tuple::Tuple;

/// One element of a punctuated data stream (Figure 1 of the paper): data
/// tuples interleaved with security punctuations. Both variants are
/// reference-counted so elements are copied by pointer between operators.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamElement {
    /// A data tuple.
    Tuple(Arc<Tuple>),
    /// A security punctuation governing the upcoming segment.
    Punctuation(Arc<SecurityPunctuation>),
}

impl StreamElement {
    /// Wraps a tuple.
    #[must_use]
    pub fn tuple(t: Tuple) -> Self {
        StreamElement::Tuple(Arc::new(t))
    }

    /// Wraps a punctuation.
    #[must_use]
    pub fn punctuation(sp: SecurityPunctuation) -> Self {
        StreamElement::Punctuation(Arc::new(sp))
    }

    /// The element's timestamp.
    #[must_use]
    pub fn ts(&self) -> Timestamp {
        match self {
            StreamElement::Tuple(t) => t.ts,
            StreamElement::Punctuation(sp) => sp.ts,
        }
    }

    /// True for data tuples.
    #[must_use]
    pub fn is_tuple(&self) -> bool {
        matches!(self, StreamElement::Tuple(_))
    }

    /// True for punctuations.
    #[must_use]
    pub fn is_punctuation(&self) -> bool {
        matches!(self, StreamElement::Punctuation(_))
    }

    /// The tuple, if this is one.
    #[must_use]
    pub fn as_tuple(&self) -> Option<&Arc<Tuple>> {
        match self {
            StreamElement::Tuple(t) => Some(t),
            StreamElement::Punctuation(_) => None,
        }
    }

    /// The punctuation, if this is one.
    #[must_use]
    pub fn as_punctuation(&self) -> Option<&Arc<SecurityPunctuation>> {
        match self {
            StreamElement::Punctuation(sp) => Some(sp),
            StreamElement::Tuple(_) => None,
        }
    }
}

impl fmt::Display for StreamElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamElement::Tuple(t) => write!(f, "{t}"),
            StreamElement::Punctuation(sp) => write!(f, "{sp}"),
        }
    }
}

impl From<Tuple> for StreamElement {
    fn from(t: Tuple) -> Self {
        StreamElement::tuple(t)
    }
}

impl From<SecurityPunctuation> for StreamElement {
    fn from(sp: SecurityPunctuation) -> Self {
        StreamElement::punctuation(sp)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::ids::{StreamId, TupleId};
    use crate::roleset::RoleSet;
    use crate::value::Value;

    #[test]
    fn accessors() {
        let t = StreamElement::tuple(Tuple::new(
            StreamId(1),
            TupleId(2),
            Timestamp(3),
            vec![Value::Int(4)],
        ));
        assert!(t.is_tuple() && !t.is_punctuation());
        assert_eq!(t.ts(), Timestamp(3));
        assert!(t.as_tuple().is_some());
        assert!(t.as_punctuation().is_none());

        let sp = StreamElement::punctuation(SecurityPunctuation::grant_all(
            RoleSet::from([1]),
            Timestamp(9),
        ));
        assert!(sp.is_punctuation());
        assert_eq!(sp.ts(), Timestamp(9));
        assert!(sp.as_punctuation().is_some());
        assert!(sp.as_tuple().is_none());
    }

    #[test]
    fn conversions_and_display() {
        let t: StreamElement = Tuple::new(StreamId(0), TupleId(1), Timestamp(2), vec![]).into();
        assert!(t.to_string().starts_with('['));
        let sp: StreamElement = SecurityPunctuation::grant_all(RoleSet::new(), Timestamp(0)).into();
        assert!(sp.to_string().starts_with('<'));
    }
}
