//! Stream tuples: `t = [sid, tid, A, ts]` (§II-B of the paper).

use std::fmt;
use std::sync::Arc;

use crate::ids::{StreamId, Timestamp, TupleId};
use crate::schema::Schema;
use crate::value::Value;

/// An immutable data tuple flowing through the engine.
///
/// Tuples are shared via `Arc<Tuple>` between operators and window states, so
/// a tuple is allocated exactly once on arrival. Tuples are **completely
/// unaware of security punctuations** (§III-A) — they carry no policy fields;
/// the punctuation-based mechanism attaches policies contextually.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// Source stream identifier.
    pub sid: StreamId,
    /// Tuple identifier (usually the data-provider key, e.g. patient id).
    pub tid: TupleId,
    /// Arrival timestamp; streams are timestamp-ordered.
    pub ts: Timestamp,
    /// Attribute values, positionally matching the stream's [`Schema`].
    values: Box<[Value]>,
}

impl Tuple {
    /// Creates a tuple.
    #[must_use]
    pub fn new(sid: StreamId, tid: TupleId, ts: Timestamp, values: Vec<Value>) -> Self {
        Self { sid, tid, ts, values: values.into_boxed_slice() }
    }

    /// Creates a shared tuple directly.
    #[must_use]
    pub fn shared(sid: StreamId, tid: TupleId, ts: Timestamp, values: Vec<Value>) -> Arc<Self> {
        Arc::new(Self::new(sid, tid, ts, values))
    }

    /// All attribute values.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at position `idx`.
    #[must_use]
    pub fn value(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value of the attribute named `name` under `schema`.
    #[must_use]
    pub fn value_by_name<'t>(&'t self, schema: &Schema, name: &str) -> Option<&'t Value> {
        schema.index_of(name).and_then(|i| self.values.get(i))
    }

    /// Number of attributes.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// A new tuple keeping only the attributes at `indices` (projection).
    #[must_use]
    pub fn project(&self, indices: &[usize]) -> Tuple {
        let values = indices.iter().map(|&i| self.values[i].clone()).collect();
        Tuple { sid: self.sid, tid: self.tid, ts: self.ts, values }
    }

    /// A new tuple with the attributes at `masked` replaced by `Null`
    /// (attribute-granularity access control).
    #[must_use]
    pub fn mask(&self, masked: &[usize]) -> Tuple {
        let mut values = self.values.to_vec();
        for &i in masked {
            if let Some(slot) = values.get_mut(i) {
                *slot = Value::Null;
            }
        }
        Tuple { sid: self.sid, tid: self.tid, ts: self.ts, values: values.into_boxed_slice() }
    }

    /// Concatenates two tuples into a join output. The result takes the
    /// left tuple's `sid`/`tid` and the *later* of the two timestamps (the
    /// moment the join result could first exist).
    #[must_use]
    pub fn join(&self, right: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + right.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&right.values);
        Tuple {
            sid: self.sid,
            tid: self.tid,
            ts: self.ts.max(right.ts),
            values: values.into_boxed_slice(),
        }
    }

    /// Approximate heap footprint in bytes (used by the memory experiments).
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        let mut bytes = std::mem::size_of::<Tuple>();
        for v in self.values.iter() {
            bytes += std::mem::size_of::<Value>();
            if let Value::Text(s) = v {
                bytes += s.len();
            }
        }
        bytes
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[s{} #{} @{} |", self.sid, self.tid, self.ts)?;
        for v in self.values.iter() {
            write!(f, " {v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::value::ValueType;

    fn tup() -> Tuple {
        Tuple::new(
            StreamId(1),
            TupleId(120),
            Timestamp(1000),
            vec![Value::Int(120), Value::Int(70)],
        )
    }

    #[test]
    fn access_by_index_and_name() {
        let schema = crate::schema::Schema::of(
            "HeartRate",
            &[("Patient_id", ValueType::Int), ("Beats_per_min", ValueType::Int)],
        );
        let t = tup();
        assert_eq!(t.value(1), Some(&Value::Int(70)));
        assert_eq!(t.value(2), None);
        assert_eq!(t.value_by_name(&schema, "Patient_id"), Some(&Value::Int(120)));
        assert_eq!(t.value_by_name(&schema, "zzz"), None);
        assert_eq!(t.arity(), 2);
    }

    #[test]
    fn projection_keeps_identity() {
        let p = tup().project(&[1]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.tid, TupleId(120));
        assert_eq!(p.value(0), Some(&Value::Int(70)));
    }

    #[test]
    fn masking_nulls_attributes() {
        let m = tup().mask(&[0, 5]);
        assert!(m.value(0).unwrap().is_null());
        assert_eq!(m.value(1), Some(&Value::Int(70)));
    }

    #[test]
    fn join_concatenates_and_takes_later_ts() {
        let right =
            Tuple::new(StreamId(2), TupleId(120), Timestamp(2000), vec![Value::Float(98.6)]);
        let j = tup().join(&right);
        assert_eq!(j.arity(), 3);
        assert_eq!(j.ts, Timestamp(2000));
        assert_eq!(j.sid, StreamId(1));
        assert_eq!(j.value(2), Some(&Value::Float(98.6)));
    }

    #[test]
    fn mem_accounting_counts_text() {
        let base = tup().mem_bytes();
        let with_text = Tuple::new(
            StreamId(1),
            TupleId(1),
            Timestamp(0),
            vec![Value::text("hello"), Value::Int(0)],
        );
        assert_eq!(with_text.mem_bytes(), base + 5);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(tup().to_string(), "[s1 #120 @1000ms | 120 70]");
    }
}
