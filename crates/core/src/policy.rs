//! Resolved access-control policies (§III-E).
//!
//! A [`Policy`] is what an sp-batch *means* once its patterns have been
//! evaluated against the catalogs: which roles may read the governed tuples,
//! with optional attribute-scoped grants. Operators of the security-aware
//! algebra (Table I) manipulate these resolved policies; the raw pattern
//! form lives in [`crate::punctuation`].
//!
//! The paper's three combination operations are implemented here:
//!
//! * [`Policy::union`] — multiple sps from the same data provider with the
//!   same timestamp form one policy ("access increases"),
//! * [`Policy::intersect`] — combining data-provider and server policies
//!   ("access decreases"; servers may refine, never broaden),
//! * [`Policy::override_with`] — an sp with a newer timestamp replaces the
//!   earlier policy on the same objects.

use std::fmt;
use std::sync::Arc;

use crate::ids::Timestamp;
use crate::roleset::RoleSet;

/// Positive (grant) or negative (deny) authorization (§III-B, Sign field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sign {
    /// `+`: the listed roles may access the governed objects.
    #[default]
    Positive,
    /// `-`: the listed roles are denied access.
    Negative,
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sign::Positive => "+",
            Sign::Negative => "-",
        })
    }
}

/// A resolved access-control policy for a stream segment.
///
/// `tuple_roles` authorizes whole tuples. `attr_roles` holds
/// attribute-scoped grants: role `r` may read attribute `a` iff
/// `tuple_roles.contains(r) || attr_roles[a].contains(r)`. A tuple as a
/// whole is visible to a query iff the query's roles intersect
/// `tuple_roles` — attribute-only grants expose *only* those attributes
/// (the rest are masked), which is how attribute-granularity sps behave.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Policy {
    /// When the policy went into effect (all sps of a batch share it).
    pub ts: Timestamp,
    /// If true, server-side policies must not be combined in (§III-B).
    pub immutable: bool,
    tuple_roles: RoleSet,
    /// Sorted by attribute index; empty in the (common) tuple-level case.
    attr_roles: Vec<(u16, RoleSet)>,
}

impl Policy {
    /// The deny-everything policy (denial-by-default, §III-A).
    #[must_use]
    pub fn deny_all(ts: Timestamp) -> Self {
        Self { ts, ..Self::default() }
    }

    /// A tuple-level policy authorizing `roles`.
    #[must_use]
    pub fn tuple_level(roles: RoleSet, ts: Timestamp) -> Self {
        Self { ts, immutable: false, tuple_roles: roles, attr_roles: Vec::new() }
    }

    /// Adds an attribute-scoped grant.
    #[must_use]
    pub fn with_attr_grant(mut self, attr: u16, roles: RoleSet) -> Self {
        self.grant_attr(attr, &roles);
        self
    }

    /// Marks the policy immutable.
    #[must_use]
    pub fn immutable(mut self) -> Self {
        self.immutable = true;
        self
    }

    /// Roles authorized for whole tuples.
    #[must_use]
    pub fn tuple_roles(&self) -> &RoleSet {
        &self.tuple_roles
    }

    /// Attribute-scoped grants (sorted by attribute index).
    #[must_use]
    pub fn attr_grants(&self) -> &[(u16, RoleSet)] {
        &self.attr_roles
    }

    /// Grants whole-tuple access to `roles` (positive sp application).
    pub fn grant(&mut self, roles: &RoleSet) {
        self.tuple_roles.union_with(roles);
    }

    /// Revokes whole-tuple access from `roles` (negative sp application).
    /// Attribute-scoped grants for those roles are revoked too: a negative
    /// authorization wins over a positive one on the same objects (the
    /// paper's reference \[10\]).
    pub fn revoke(&mut self, roles: &RoleSet) {
        self.tuple_roles.minus_with(roles);
        for (_, set) in &mut self.attr_roles {
            set.minus_with(roles);
        }
        self.prune();
    }

    /// Grants access to one attribute for `roles`.
    pub fn grant_attr(&mut self, attr: u16, roles: &RoleSet) {
        if roles.is_empty() {
            return;
        }
        match self.attr_roles.binary_search_by_key(&attr, |&(a, _)| a) {
            Ok(i) => self.attr_roles[i].1.union_with(roles),
            Err(i) => self.attr_roles.insert(i, (attr, roles.clone())),
        }
    }

    /// Revokes access to one attribute for `roles`.
    pub fn revoke_attr(&mut self, attr: u16, roles: &RoleSet) {
        if let Ok(i) = self.attr_roles.binary_search_by_key(&attr, |&(a, _)| a) {
            self.attr_roles[i].1.minus_with(roles);
        }
        self.prune();
    }

    /// True if role-set `subject` may read the tuple as a whole
    /// (`P_t ∩ p ≠ ∅`) — the Security Shield predicate.
    #[must_use]
    pub fn allows(&self, subject: &RoleSet) -> bool {
        self.tuple_roles.intersects(subject)
    }

    /// True if `subject` may read attribute `attr`.
    #[must_use]
    pub fn allows_attr(&self, attr: u16, subject: &RoleSet) -> bool {
        if self.tuple_roles.intersects(subject) {
            return true;
        }
        self.attr_roles
            .binary_search_by_key(&attr, |&(a, _)| a)
            .is_ok_and(|i| self.attr_roles[i].1.intersects(subject))
    }

    /// True if `subject` may read at least one attribute (possibly via an
    /// attribute-scoped grant only).
    #[must_use]
    pub fn allows_any_attr(&self, subject: &RoleSet) -> bool {
        self.allows(subject) || self.attr_roles.iter().any(|(_, set)| set.intersects(subject))
    }

    /// True if nobody is authorized at all.
    #[must_use]
    pub fn is_deny_all(&self) -> bool {
        self.tuple_roles.is_empty() && self.attr_roles.is_empty()
    }

    /// `union()`: sps of the same batch (same provider, same timestamp)
    /// describe one policy; access increases (§III-E).
    #[must_use]
    pub fn union(&self, other: &Policy) -> Policy {
        let mut out = self.clone();
        out.tuple_roles.union_with(&other.tuple_roles);
        for (attr, set) in &other.attr_roles {
            out.grant_attr(*attr, set);
        }
        out.immutable |= other.immutable;
        out.ts = out.ts.max(other.ts);
        out
    }

    /// `intersect()`: combines this (data-provider) policy with a server
    /// policy so that the server may only *reduce* access (§III-E). If this
    /// policy is immutable the server policy is ignored (§III-B).
    ///
    /// Attribute access is the conjunction of both policies' attribute
    /// access: with `access_i(r, a) = tuple_i(r) ∨ attr_i(r, a)`, the result
    /// has `tuple(r) = tuple_1(r) ∧ tuple_2(r)` and
    /// `attr(r, a) = (tuple_1 ∧ attr_2) ∨ (attr_1 ∧ tuple_2) ∨ (attr_1 ∧ attr_2)`.
    #[must_use]
    pub fn intersect(&self, other: &Policy) -> Policy {
        if self.immutable {
            return self.clone();
        }
        let mut out = Policy {
            ts: self.ts.max(other.ts),
            immutable: other.immutable,
            tuple_roles: self.tuple_roles.intersect(&other.tuple_roles),
            attr_roles: Vec::new(),
        };
        // attr_1 ∧ tuple_2
        for (attr, set) in &self.attr_roles {
            out.grant_attr(*attr, &set.intersect(&other.tuple_roles));
        }
        // tuple_1 ∧ attr_2 and attr_1 ∧ attr_2
        for (attr, set) in &other.attr_roles {
            out.grant_attr(*attr, &set.intersect(&self.tuple_roles));
            if let Ok(i) = self.attr_roles.binary_search_by_key(attr, |&(a, _)| a) {
                out.grant_attr(*attr, &set.intersect(&self.attr_roles[i].1));
            }
        }
        // Whole-tuple grants subsume attribute grants for the same roles.
        for (_, set) in &mut out.attr_roles {
            set.minus_with(&out.tuple_roles);
        }
        out.prune();
        out
    }

    /// `override()`: replaces this policy if `newer` has a strictly more
    /// recent timestamp (§III-E); otherwise keeps `self`.
    #[must_use]
    pub fn override_with(&self, newer: &Policy) -> Policy {
        if newer.ts > self.ts {
            newer.clone()
        } else {
            self.clone()
        }
    }

    /// Restricts every authorization to the given role set (least
    /// privilege). The Security Shield narrows the policies it forwards to
    /// its own predicate: downstream of ψ_p, no consumer may observe
    /// access beyond `p`, and narrowing is what makes the shield push-down
    /// rewrites exact equivalences for *all* downstream observers (the
    /// policies that joins, intersections and duplicate elimination derive
    /// from narrowed inputs coincide with narrowing their outputs).
    #[must_use]
    pub fn restrict_to(&self, roles: &RoleSet) -> Policy {
        let mut out = self.clone();
        out.tuple_roles.intersect_with(roles);
        for (_, set) in &mut out.attr_roles {
            set.intersect_with(roles);
        }
        out.prune();
        out
    }

    /// True if the two policies authorize exactly the same access,
    /// regardless of when they went into effect. Used by the SP Analyzer to
    /// merge consecutive sps with similar policies.
    #[must_use]
    pub fn same_authorizations(&self, other: &Policy) -> bool {
        self.immutable == other.immutable
            && self.tuple_roles == other.tuple_roles
            && self.attr_roles == other.attr_roles
    }

    /// Rewrites attribute indices through `mapping` (projection / join
    /// re-layout). Grants whose attribute maps to `None` are dropped; a
    /// policy that loses *all* its grants this way becomes deny-all, which
    /// is how the project operator "discards sps that describe a policy for
    /// only the projected-out attributes" (§IV-B).
    #[must_use]
    pub fn remap_attrs(&self, mapping: impl Fn(u16) -> Option<u16>) -> Policy {
        let mut out = Policy {
            ts: self.ts,
            immutable: self.immutable,
            tuple_roles: self.tuple_roles.clone(),
            attr_roles: Vec::with_capacity(self.attr_roles.len()),
        };
        for (attr, set) in &self.attr_roles {
            if let Some(new_attr) = mapping(*attr) {
                out.grant_attr(new_attr, set);
            }
        }
        out
    }

    /// The attribute indices (below `arity`) that `subject` may NOT read —
    /// the mask for attribute-granularity shielding.
    #[must_use]
    pub fn masked_attrs(&self, arity: usize, subject: &RoleSet) -> Vec<usize> {
        (0..arity).filter(|&i| !self.allows_attr(i as u16, subject)).collect()
    }

    /// Approximate heap footprint in bytes with the bitmap role encoding
    /// (the sp model's compact representation, §I-C).
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<Policy>()
            + self.tuple_roles.mem_bytes()
            + self.attr_roles.iter().map(|(_, s)| 2 + s.mem_bytes()).sum::<usize>()
    }

    /// Approximate footprint with a conventional *explicit role list*
    /// representation (4 bytes per authorization) — how a system without
    /// bitmap compression stores policies. The baseline mechanisms are
    /// accounted this way in the memory experiments, so that policy size
    /// |R| shows its true cost.
    #[must_use]
    pub fn mem_bytes_list(&self) -> usize {
        std::mem::size_of::<Policy>()
            + self.tuple_roles.len() * 4
            + self.attr_roles.iter().map(|(_, s)| 2 + s.len() * 4).sum::<usize>()
    }

    /// Serializes the resolved policy: `[u64 ts][u8 flags][tuple roles]
    /// [u16 attr-grant count][(u16 attr, roles)…]`, big-endian throughout.
    ///
    /// The encoding is canonical — equal policies produce identical bytes
    /// (attribute grants are kept sorted by construction, role sets trim
    /// trailing zero words) — so checkpoints can be compared byte-wise.
    pub fn encode(&self, buf: &mut impl bytes::BufMut) {
        buf.put_u64(self.ts.millis());
        buf.put_u8(u8::from(self.immutable));
        self.tuple_roles.encode(buf);
        buf.put_u16(self.attr_roles.len() as u16);
        for (attr, set) in &self.attr_roles {
            buf.put_u16(*attr);
            set.encode(buf);
        }
    }

    /// Deserializes a policy produced by [`Policy::encode`].
    ///
    /// # Errors
    ///
    /// Fails on truncation or a malformed flags byte.
    pub fn decode(buf: &mut impl bytes::Buf) -> Result<Self, String> {
        if buf.remaining() < 8 + 1 {
            return Err("truncated policy header".into());
        }
        let ts = Timestamp(buf.get_u64());
        let immutable = match buf.get_u8() {
            0 => false,
            1 => true,
            other => return Err(format!("bad policy flags byte {other}")),
        };
        let tuple_roles = RoleSet::decode(buf)?;
        if buf.remaining() < 2 {
            return Err("truncated attr grant count".into());
        }
        let n = buf.get_u16() as usize;
        let mut attr_roles = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            if buf.remaining() < 2 {
                return Err("truncated attr grant".into());
            }
            let attr = buf.get_u16();
            if let Some(&(prev, _)) = attr_roles.last() {
                if prev >= attr {
                    return Err("attr grants not strictly sorted".into());
                }
            }
            attr_roles.push((attr, RoleSet::decode(buf)?));
        }
        Ok(Self { ts, immutable, tuple_roles, attr_roles })
    }

    fn prune(&mut self) {
        self.attr_roles.retain(|(_, set)| !set.is_empty());
    }
}

/// A policy shared across operators and window states.
pub type SharedPolicy = Arc<Policy>;

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn rs(ids: &[u32]) -> RoleSet {
        ids.iter().map(|&i| crate::ids::RoleId(i)).collect()
    }

    #[test]
    fn deny_by_default() {
        let p = Policy::deny_all(Timestamp(5));
        assert!(p.is_deny_all());
        assert!(!p.allows(&rs(&[0])));
        assert!(!p.allows_any_attr(&rs(&[0])));
    }

    #[test]
    fn grant_and_revoke() {
        let mut p = Policy::deny_all(Timestamp(0));
        p.grant(&rs(&[1, 2]));
        assert!(p.allows(&rs(&[2, 9])));
        assert!(!p.allows(&rs(&[3])));
        p.revoke(&rs(&[2]));
        assert!(!p.allows(&rs(&[2])));
        assert!(p.allows(&rs(&[1])));
    }

    #[test]
    fn negative_sp_revokes_attr_grants_too() {
        let mut p = Policy::tuple_level(rs(&[1]), Timestamp(0)).with_attr_grant(0, rs(&[2]));
        assert!(p.allows_attr(0, &rs(&[2])));
        p.revoke(&rs(&[2]));
        assert!(!p.allows_attr(0, &rs(&[2])));
        assert!(p.attr_grants().is_empty(), "empty grants are pruned");
    }

    #[test]
    fn attribute_grants() {
        let p = Policy::tuple_level(rs(&[1]), Timestamp(0))
            .with_attr_grant(2, rs(&[5]))
            .with_attr_grant(0, rs(&[6]));
        // sorted by attribute index
        assert_eq!(p.attr_grants()[0].0, 0);
        assert_eq!(p.attr_grants()[1].0, 2);
        // tuple-level role sees every attribute
        assert!(p.allows_attr(0, &rs(&[1])) && p.allows_attr(7, &rs(&[1])));
        // attr-scoped role sees only its attribute
        assert!(p.allows_attr(2, &rs(&[5])));
        assert!(!p.allows_attr(1, &rs(&[5])));
        assert!(!p.allows(&rs(&[5])));
        assert!(p.allows_any_attr(&rs(&[5])));
        assert_eq!(p.masked_attrs(3, &rs(&[5])), vec![0, 1]);
        assert_eq!(p.masked_attrs(3, &rs(&[1])), Vec::<usize>::new());
    }

    #[test]
    fn union_increases_access() {
        let a = Policy::tuple_level(rs(&[1]), Timestamp(3));
        let b = Policy::tuple_level(rs(&[2]), Timestamp(3)).with_attr_grant(1, rs(&[7]));
        let u = a.union(&b);
        assert!(u.allows(&rs(&[1])) && u.allows(&rs(&[2])));
        assert!(u.allows_attr(1, &rs(&[7])));
        assert_eq!(u.ts, Timestamp(3));
    }

    #[test]
    fn intersect_decreases_access() {
        let provider = Policy::tuple_level(rs(&[1, 2, 3]), Timestamp(1));
        let server = Policy::tuple_level(rs(&[2, 3, 4]), Timestamp(2));
        let c = provider.intersect(&server);
        assert!(!c.allows(&rs(&[1])));
        assert!(c.allows(&rs(&[2])));
        assert!(!c.allows(&rs(&[4])));
        assert_eq!(c.ts, Timestamp(2));
    }

    #[test]
    fn intersect_attribute_semantics() {
        // provider: role 1 tuple-level; role 5 on attr 0 only.
        let provider = Policy::tuple_level(rs(&[1]), Timestamp(0)).with_attr_grant(0, rs(&[5]));
        // server: role 5 tuple-level; role 1 on attr 1 only.
        let server = Policy::tuple_level(rs(&[5]), Timestamp(0)).with_attr_grant(1, rs(&[1]));
        let c = provider.intersect(&server);
        // role 1: provider-tuple ∧ server-attr(1) → attr 1 only
        assert!(!c.allows(&rs(&[1])));
        assert!(c.allows_attr(1, &rs(&[1])));
        assert!(!c.allows_attr(0, &rs(&[1])));
        // role 5: provider-attr(0) ∧ server-tuple → attr 0 only
        assert!(c.allows_attr(0, &rs(&[5])));
        assert!(!c.allows_attr(1, &rs(&[5])));
        // role 9: nowhere
        assert!(!c.allows_any_attr(&rs(&[9])));
    }

    #[test]
    fn intersect_respects_immutability() {
        let provider = Policy::tuple_level(rs(&[1, 2]), Timestamp(1)).immutable();
        let server = Policy::tuple_level(rs(&[2]), Timestamp(2));
        let c = provider.intersect(&server);
        assert!(c.allows(&rs(&[1])), "immutable provider policy wins");
    }

    #[test]
    fn override_respects_timestamps() {
        let old = Policy::tuple_level(rs(&[1]), Timestamp(1));
        let new = Policy::tuple_level(rs(&[2]), Timestamp(2));
        assert!(old.override_with(&new).allows(&rs(&[2])));
        assert!(!old.override_with(&new).allows(&rs(&[1])));
        // Same or older timestamp does not override.
        assert!(new.override_with(&old).allows(&rs(&[2])));
        let same = Policy::tuple_level(rs(&[3]), Timestamp(2));
        assert!(new.override_with(&same).allows(&rs(&[2])));
    }

    #[test]
    fn union_then_intersect_identity() {
        // (a ∪ b) ∩ b ⊇ b restricted to itself: sanity of the algebra
        let a = Policy::tuple_level(rs(&[1]), Timestamp(0));
        let b = Policy::tuple_level(rs(&[2]), Timestamp(0));
        let u = a.union(&b).intersect(&b);
        assert!(u.allows(&rs(&[2])));
        assert!(!u.allows(&rs(&[1])));
    }

    #[test]
    fn remap_attrs_projects_grants() {
        let p = Policy::tuple_level(rs(&[1]), Timestamp(0))
            .with_attr_grant(0, rs(&[5]))
            .with_attr_grant(2, rs(&[6]));
        // Project attrs [2, 0] -> new indices [0, 1].
        let remapped = p.remap_attrs(|a| match a {
            2 => Some(0),
            0 => Some(1),
            _ => None,
        });
        assert!(remapped.allows_attr(0, &rs(&[6])));
        assert!(remapped.allows_attr(1, &rs(&[5])));
        assert!(!remapped.allows_attr(2, &rs(&[5])));
        assert!(remapped.allows(&rs(&[1])), "tuple roles survive remapping");

        // Dropping every grant leaves only tuple-level roles.
        let dropped = p.remap_attrs(|_| None);
        assert!(dropped.attr_grants().is_empty());
    }

    #[test]
    fn mem_accounting_grows_with_grants() {
        let small = Policy::tuple_level(rs(&[1]), Timestamp(0));
        let big = small.clone().with_attr_grant(0, rs(&[500]));
        assert!(big.mem_bytes() > small.mem_bytes());
    }

    #[test]
    fn sign_display() {
        assert_eq!(Sign::Positive.to_string(), "+");
        assert_eq!(Sign::Negative.to_string(), "-");
    }
}
