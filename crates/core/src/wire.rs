//! Compact wire encoding for punctuated streams.
//!
//! The paper's premise is that devices inject their policies *into the
//! data channel*: "the policies can be encoded into a compact format, and
//! in most cases can be included into the same network message with the
//! data" (§I-B). This module provides that format: a length-prefixed
//! [`Message`] framing zero or more stream elements — security
//! punctuations interleaved with data tuples, exactly as they are to be
//! replayed into the DSMS.
//!
//! The encoding is little-endian-free (all integers big-endian), versioned
//! by a leading magic byte, and deliberately simple: it exists to measure
//! and demonstrate the paper's compactness claim, not to compete with a
//! general serialization framework.

use bytes::{Buf, BufMut};

use crate::element::StreamElement;
use crate::ids::{StreamId, Timestamp, TupleId};
use crate::punctuation::SecurityPunctuation;
use crate::tuple::Tuple;
use crate::value::Value;

/// Wire format version tag.
const MAGIC: u8 = 0xA5;

/// Element tags.
const TAG_TUPLE: u8 = 0;
const TAG_SP: u8 = 1;

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: &str) -> WireError {
    WireError(msg.to_owned())
}

/// Encodes one value.
fn encode_value(v: &Value, buf: &mut impl BufMut) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(x) => {
            buf.put_u8(1);
            buf.put_i64(*x);
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_f64(*x);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(u8::from(*b));
        }
    }
}

fn decode_value(buf: &mut impl Buf) -> Result<Value, WireError> {
    if buf.remaining() < 1 {
        return Err(err("missing value tag"));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 8 {
                return Err(err("truncated int"));
            }
            Ok(Value::Int(buf.get_i64()))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(err("truncated float"));
            }
            Ok(Value::Float(buf.get_f64()))
        }
        3 => {
            if buf.remaining() < 4 {
                return Err(err("truncated text length"));
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(err("truncated text body"));
            }
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            String::from_utf8(bytes)
                .map(Value::text)
                .map_err(|_| err("invalid UTF-8 text"))
        }
        4 => {
            if buf.remaining() < 1 {
                return Err(err("truncated bool"));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        other => Err(WireError(format!("unknown value tag {other}"))),
    }
}

/// Encodes one tuple.
pub fn encode_tuple(t: &Tuple, buf: &mut impl BufMut) {
    buf.put_u32(t.sid.raw());
    buf.put_u64(t.tid.raw());
    buf.put_u64(t.ts.millis());
    buf.put_u16(t.arity() as u16);
    for v in t.values() {
        encode_value(v, buf);
    }
}

/// Decodes one tuple.
///
/// # Errors
///
/// Fails on truncation or malformed values.
pub fn decode_tuple(buf: &mut impl Buf) -> Result<Tuple, WireError> {
    if buf.remaining() < 4 + 8 + 8 + 2 {
        return Err(err("truncated tuple header"));
    }
    let sid = StreamId(buf.get_u32());
    let tid = TupleId(buf.get_u64());
    let ts = Timestamp(buf.get_u64());
    let arity = buf.get_u16() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf)?);
    }
    Ok(Tuple::new(sid, tid, ts, values))
}

/// A network message: a batch of stream elements for one stream, framed
/// together — punctuations riding with the data tuples they govern.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// The target stream.
    pub stream: StreamId,
    /// The elements, in stream order.
    pub elements: Vec<StreamElement>,
}

impl Message {
    /// A message carrying the given elements.
    #[must_use]
    pub fn new(stream: StreamId, elements: Vec<StreamElement>) -> Self {
        Self { stream, elements }
    }

    /// Serializes the message.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u8(MAGIC);
        buf.put_u32(self.stream.raw());
        buf.put_u32(self.elements.len() as u32);
        for elem in &self.elements {
            match elem {
                StreamElement::Tuple(t) => {
                    buf.put_u8(TAG_TUPLE);
                    encode_tuple(t, buf);
                }
                StreamElement::Punctuation(sp) => {
                    buf.put_u8(TAG_SP);
                    sp.encode(buf);
                }
            }
        }
    }

    /// Serializes into a fresh byte vector.
    #[must_use]
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.elements.len() * 48);
        self.encode(&mut buf);
        buf
    }

    /// Deserializes a message.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, truncation, or malformed elements.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < 1 + 4 + 4 {
            return Err(err("truncated message header"));
        }
        if buf.get_u8() != MAGIC {
            return Err(err("bad magic byte"));
        }
        let stream = StreamId(buf.get_u32());
        let count = buf.get_u32() as usize;
        let mut elements = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            if buf.remaining() < 1 {
                return Err(err("truncated element tag"));
            }
            match buf.get_u8() {
                TAG_TUPLE => elements.push(StreamElement::tuple(decode_tuple(buf)?)),
                TAG_SP => elements.push(StreamElement::punctuation(
                    SecurityPunctuation::decode(buf).map_err(WireError)?,
                )),
                other => return Err(WireError(format!("unknown element tag {other}"))),
            }
        }
        Ok(Self { stream, elements })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::punctuation::DataDescription;
    use crate::roleset::RoleSet;

    fn tuple(tid: u64) -> Tuple {
        Tuple::new(
            StreamId(7),
            TupleId(tid),
            Timestamp(tid * 10),
            vec![
                Value::Int(tid as i64),
                Value::Float(1.5),
                Value::text("précis"),
                Value::Bool(true),
                Value::Null,
            ],
        )
    }

    fn sp(ts: u64) -> SecurityPunctuation {
        SecurityPunctuation::grant_all(RoleSet::from([1, 5, 100]), Timestamp(ts))
            .with_ddp(DataDescription::tuple_range(10, 20))
    }

    #[test]
    fn tuple_round_trip() {
        let t = tuple(42);
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let decoded = decode_tuple(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn message_round_trip_mixed() {
        let msg = Message::new(
            StreamId(7),
            vec![
                StreamElement::punctuation(sp(1)),
                StreamElement::tuple(tuple(11)),
                StreamElement::tuple(tuple(12)),
                StreamElement::punctuation(sp(2)),
                StreamElement::tuple(tuple(13)),
            ],
        );
        let bytes = msg.encode_to_vec();
        let decoded = Message::decode(&mut bytes.as_slice()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn sp_overhead_is_small_relative_to_data() {
        // The paper's claim: the policy rides in the same message with
        // little extra demand. One sp amortized over a 10-tuple segment
        // adds a small fraction of the message size.
        let data_only = Message::new(
            StreamId(7),
            (0..10).map(|i| StreamElement::tuple(tuple(i))).collect(),
        );
        let mut with_sp_elems = vec![StreamElement::punctuation(sp(1))];
        with_sp_elems.extend((0..10).map(|i| StreamElement::tuple(tuple(i))));
        let with_sp = Message::new(StreamId(7), with_sp_elems);
        let base = data_only.encode_to_vec().len();
        let augmented = with_sp.encode_to_vec().len();
        let overhead = (augmented - base) as f64 / base as f64;
        assert!(overhead < 0.15, "sp overhead {overhead:.2} too large");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(&mut &b""[..]).is_err());
        assert!(Message::decode(&mut &b"\x00\x00\x00\x00\x00\x00\x00\x00\x00"[..]).is_err());
        let msg = Message::new(StreamId(1), vec![StreamElement::tuple(tuple(1))]);
        let mut bytes = msg.encode_to_vec();
        bytes.truncate(bytes.len() - 3);
        assert!(Message::decode(&mut bytes.as_slice()).is_err());
        // Corrupt an element tag.
        let mut bytes = msg.encode_to_vec();
        bytes[9] = 99;
        assert!(Message::decode(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn empty_message_round_trips() {
        let msg = Message::new(StreamId(3), vec![]);
        let bytes = msg.encode_to_vec();
        assert_eq!(Message::decode(&mut bytes.as_slice()).unwrap(), msg);
    }
}
