//! Compact wire encoding for punctuated streams.
//!
//! The paper's premise is that devices inject their policies *into the
//! data channel*: "the policies can be encoded into a compact format, and
//! in most cases can be included into the same network message with the
//! data" (§I-B). This module provides that format: a length-prefixed
//! [`Message`] framing zero or more stream elements — security
//! punctuations interleaved with data tuples, exactly as they are to be
//! replayed into the DSMS.
//!
//! The encoding is little-endian-free (all integers big-endian), versioned
//! by a leading magic byte, and deliberately simple: it exists to measure
//! and demonstrate the paper's compactness claim, not to compete with a
//! general serialization framework.
//!
//! # Hostile-input hardening
//!
//! Because punctuations are the *access-control policy itself*, a
//! corrupted frame is a security event, not just a data error. Frames are
//! therefore protected end-to-end:
//!
//! * every frame is `[MAGIC][u32 body length][u32 CRC-32][body]`, so a
//!   flipped bit anywhere in the body fails the checksum instead of
//!   decoding into a different policy;
//! * [`Message::decode`] never panics on arbitrary bytes — every read is
//!   bounds-checked and all failures are typed [`WireError`]s;
//! * [`FrameDecoder`] consumes a raw byte stream, *resynchronizing* past
//!   corrupted frames by scanning to the next [`MAGIC`] boundary and
//!   counting what it had to skip — a damaged frame costs its own
//!   elements (fail closed), never the rest of the stream.

use bytes::{Buf, BufMut};

use crate::element::StreamElement;
use crate::ids::{StreamId, Timestamp, TupleId};
use crate::punctuation::SecurityPunctuation;
use crate::tuple::Tuple;
use crate::value::Value;

/// Wire format version tag; also the frame boundary marker
/// [`FrameDecoder`] resynchronizes on.
pub const MAGIC: u8 = 0xA5;

/// Element tags.
const TAG_TUPLE: u8 = 0;
const TAG_SP: u8 = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time — hand-rolled so the wire layer stays
/// dependency-free.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: &str) -> WireError {
    WireError(msg.to_owned())
}

/// Encodes one value.
pub fn encode_value(v: &Value, buf: &mut impl BufMut) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(x) => {
            buf.put_u8(1);
            buf.put_i64(*x);
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_f64(*x);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            buf.put_u32(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(u8::from(*b));
        }
    }
}

/// Decodes one value.
///
/// # Errors
///
/// Fails on truncation, malformed UTF-8, or an unknown type tag.
pub fn decode_value(buf: &mut impl Buf) -> Result<Value, WireError> {
    if buf.remaining() < 1 {
        return Err(err("missing value tag"));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 8 {
                return Err(err("truncated int"));
            }
            Ok(Value::Int(buf.get_i64()))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(err("truncated float"));
            }
            Ok(Value::Float(buf.get_f64()))
        }
        3 => {
            if buf.remaining() < 4 {
                return Err(err("truncated text length"));
            }
            let len = buf.get_u32() as usize;
            if buf.remaining() < len {
                return Err(err("truncated text body"));
            }
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            String::from_utf8(bytes).map(Value::text).map_err(|_| err("invalid UTF-8 text"))
        }
        4 => {
            if buf.remaining() < 1 {
                return Err(err("truncated bool"));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        other => Err(WireError(format!("unknown value tag {other}"))),
    }
}

/// Encodes one tuple.
pub fn encode_tuple(t: &Tuple, buf: &mut impl BufMut) {
    buf.put_u32(t.sid.raw());
    buf.put_u64(t.tid.raw());
    buf.put_u64(t.ts.millis());
    buf.put_u16(t.arity() as u16);
    for v in t.values() {
        encode_value(v, buf);
    }
}

/// Decodes one tuple.
///
/// # Errors
///
/// Fails on truncation or malformed values.
pub fn decode_tuple(buf: &mut impl Buf) -> Result<Tuple, WireError> {
    if buf.remaining() < 4 + 8 + 8 + 2 {
        return Err(err("truncated tuple header"));
    }
    let sid = StreamId(buf.get_u32());
    let tid = TupleId(buf.get_u64());
    let ts = Timestamp(buf.get_u64());
    let arity = buf.get_u16() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(buf)?);
    }
    Ok(Tuple::new(sid, tid, ts, values))
}

/// A network message: a batch of stream elements for one stream, framed
/// together — punctuations riding with the data tuples they govern.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// The target stream.
    pub stream: StreamId,
    /// The elements, in stream order.
    pub elements: Vec<StreamElement>,
}

impl Message {
    /// A message carrying the given elements.
    #[must_use]
    pub fn new(stream: StreamId, elements: Vec<StreamElement>) -> Self {
        Self { stream, elements }
    }

    /// Serializes the message as one checksummed frame:
    /// `[MAGIC][u32 body length][u32 CRC-32][body]`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        let mut body = Vec::with_capacity(8 + self.elements.len() * 48);
        body.put_u32(self.stream.raw());
        body.put_u32(self.elements.len() as u32);
        for elem in &self.elements {
            match elem {
                StreamElement::Tuple(t) => {
                    body.put_u8(TAG_TUPLE);
                    encode_tuple(t, &mut body);
                }
                StreamElement::Punctuation(sp) => {
                    body.put_u8(TAG_SP);
                    sp.encode(&mut body);
                }
            }
        }
        buf.put_u8(MAGIC);
        buf.put_u32(body.len() as u32);
        buf.put_u32(crc32(&body));
        buf.put_slice(&body);
    }

    /// Serializes into a fresh byte vector.
    #[must_use]
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.elements.len() * 48);
        self.encode(&mut buf);
        buf
    }

    /// Deserializes one framed message, verifying its checksum.
    ///
    /// Safe on untrusted input: never panics, no matter the bytes — every
    /// read is bounds-checked and lengths are validated before allocation.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, truncation, checksum mismatch, or malformed
    /// elements. On error the buffer position is unspecified; use
    /// [`FrameDecoder`] to recover subsequent frames from a byte stream.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, WireError> {
        if buf.remaining() < 1 + 4 + 4 {
            return Err(err("truncated frame header"));
        }
        if buf.get_u8() != MAGIC {
            return Err(err("bad magic byte"));
        }
        let len = buf.get_u32() as usize;
        let crc = buf.get_u32();
        if buf.remaining() < len {
            return Err(err("truncated frame body"));
        }
        let mut body = vec![0u8; len];
        buf.copy_to_slice(&mut body);
        if crc32(&body) != crc {
            return Err(err("frame checksum mismatch"));
        }
        Self::decode_body(&body)
    }

    /// Decodes a checksum-verified frame body.
    fn decode_body(mut body: &[u8]) -> Result<Self, WireError> {
        let buf = &mut body;
        if buf.remaining() < 4 + 4 {
            return Err(err("truncated message header"));
        }
        let stream = StreamId(buf.get_u32());
        let count = buf.get_u32() as usize;
        let mut elements = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            if buf.remaining() < 1 {
                return Err(err("truncated element tag"));
            }
            match buf.get_u8() {
                TAG_TUPLE => elements.push(StreamElement::tuple(decode_tuple(buf)?)),
                TAG_SP => elements.push(StreamElement::punctuation(
                    SecurityPunctuation::decode(buf).map_err(WireError)?,
                )),
                other => return Err(WireError(format!("unknown element tag {other}"))),
            }
        }
        if buf.remaining() != 0 {
            return Err(err("trailing bytes in frame body"));
        }
        Ok(Self { stream, elements })
    }
}

/// Decodes a raw byte stream of frames, skipping damaged ones.
///
/// A decode failure costs exactly the damaged frame: the decoder scans
/// forward to the next [`MAGIC`] boundary and tries again, so one
/// corrupted message never takes down the rest of the stream. The
/// counters record what was lost — the degradation is *observable*, and
/// because the damaged frame's elements are simply absent (rather than
/// guessed at), the failure is closed: no policy or tuple is ever
/// fabricated from corrupt bytes.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    /// Frame decode attempts that failed (bad CRC, truncation,
    /// malformed body) and were skipped by resync.
    pub corrupted_frames: u64,
    /// Bytes skipped while scanning for a [`MAGIC`] boundary.
    pub skipped_bytes: u64,
}

impl FrameDecoder {
    /// A fresh decoder with zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes every recoverable message in `bytes`.
    ///
    /// Never panics, for arbitrary input. Counters accumulate across
    /// calls, so one decoder can track a whole session.
    pub fn decode_stream(&mut self, bytes: &[u8]) -> Vec<Message> {
        let mut out = Vec::new();
        let mut pos = 0;
        while pos < bytes.len() {
            if bytes[pos] != MAGIC {
                pos += 1;
                self.skipped_bytes += 1;
                continue;
            }
            let mut slice = &bytes[pos..];
            let before = slice.len();
            match Message::decode(&mut slice) {
                Ok(msg) => {
                    out.push(msg);
                    pos += before - slice.len();
                }
                Err(_) => {
                    // Not a valid frame at this boundary: skip the magic
                    // byte and rescan.
                    self.corrupted_frames += 1;
                    self.skipped_bytes += 1;
                    pos += 1;
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Control frames (server <-> client session protocol)
// ---------------------------------------------------------------------------

/// Frame boundary marker for [`Control`] frames. Distinct from [`MAGIC`]
/// so a resynchronizing decoder can tell session control apart from data
/// without any shared connection state.
pub const MAGIC_CTRL: u8 = 0x5A;

const CTRL_HELLO: u8 = 0;
const CTRL_HELLO_ACK: u8 = 1;
const CTRL_ACK: u8 = 2;
const CTRL_OVERLOADED: u8 = 3;
const CTRL_QUARANTINED: u8 = 4;
const CTRL_DRAINING: u8 = 5;
const CTRL_REPL_HELLO: u8 = 6;
const CTRL_CKPT_SEGMENT: u8 = 7;
const CTRL_CKPT_COMMIT: u8 = 8;
const CTRL_FENCE: u8 = 9;
const CTRL_TRACE: u8 = 10;

/// Why a server quarantined a tenant session (carried in
/// [`Control::Quarantined`]). Quarantine is fail-closed: once set, every
/// further frame from the tenant is refused, never half-processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineCode {
    /// The tenant's pipeline panicked; its state is untrusted.
    Panicked,
    /// The connection exceeded the corrupted-frame budget (a
    /// byte-garbage-spewing client is a security event, not line noise).
    Garbage,
    /// The session could not be restored from its checkpoint.
    ResumeFailed,
}

impl QuarantineCode {
    /// Wire encoding of the code.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        match self {
            Self::Panicked => 0,
            Self::Garbage => 1,
            Self::ResumeFailed => 2,
        }
    }

    /// Decodes a code, rejecting unknown values.
    ///
    /// # Errors
    ///
    /// Fails on an unassigned code byte.
    pub fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(Self::Panicked),
            1 => Ok(Self::Garbage),
            2 => Ok(Self::ResumeFailed),
            other => Err(WireError(format!("unknown quarantine code {other}"))),
        }
    }
}

/// A session control frame.
///
/// [`Message`] frames carry the punctuated data stream client → server;
/// `Control` frames carry the session protocol around it: the opening
/// handshake, per-frame acknowledgements with the server's consumed
/// position (the exactly-once replay cursor), admission backpressure with
/// retry hints, fail-closed quarantine notices, and the graceful-drain
/// goodbye. Framing is identical to data frames
/// (`[MAGIC_CTRL][u32 len][u32 CRC-32][body]`), so the same resync logic
/// protects both.
///
/// The replication frames ([`Control::ReplHello`],
/// [`Control::CheckpointSegment`], [`Control::CheckpointCommit`],
/// [`Control::Fence`]) carry the primary→standby checkpoint-shipping
/// protocol over the same envelope. Every one of them carries the
/// sender's **fencing epoch** — a monotonically increasing generation
/// number that makes failover fail-closed: any node that observes a
/// higher epoch than its own has been deposed and must stop releasing
/// tuples immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Control {
    /// Client → server: open (or re-open) a tenant session.
    /// `acked` is the highest server position the client has seen — the
    /// server replies with the authoritative [`Control::HelloAck`].
    Hello {
        /// The tenant this connection ingests for.
        tenant: u32,
        /// The client's last known acknowledged position (advisory).
        acked: u64,
    },
    /// Server → client: session open. The client must resume sending
    /// from element `resume_from` of its input log — positions before it
    /// were already consumed (possibly by a previous incarnation of the
    /// server, restored from checkpoint).
    HelloAck {
        /// Replay cursor: first input-log position not yet consumed.
        resume_from: u64,
    },
    /// Server → client: the frame was consumed; `pos` is the session's
    /// input position after it (counting admission-shed tuples, which
    /// must not be replayed).
    Ack {
        /// Input position after the frame.
        pos: u64,
    },
    /// Server → client: admission refused at least one tuple of the
    /// frame. The frame is still *consumed* up to `pos`; the client
    /// should back off for at least `retry_after_ms` of stream time
    /// before sending more.
    Overloaded {
        /// Minimum stream-time delay before the bucket holds a token.
        retry_after_ms: u64,
        /// Input position after the frame (shed tuples included).
        pos: u64,
    },
    /// Server → client: the tenant session is quarantined; nothing
    /// further will be processed (fail closed).
    Quarantined {
        /// Why the session was quarantined.
        code: QuarantineCode,
    },
    /// Server → client: the server is draining; the session was
    /// checkpointed at `pos` and the connection is closing.
    Draining {
        /// Input position of the drain checkpoint.
        pos: u64,
    },
    /// Primary → standby: open (or re-open) the replication link. The
    /// standby echoes the frame back (with its own highest known epoch)
    /// as the link acknowledgement; an echo carrying a *higher* epoch
    /// than the sender's tells a stale primary it has been deposed.
    ReplHello {
        /// The sender's fencing epoch.
        fencing_epoch: u64,
    },
    /// Primary → standby: one chunk of a tenant's encoded epoch
    /// checkpoint. Segments are buffered by `(tenant, epoch)` and only
    /// applied when the matching [`Control::CheckpointCommit`] verifies —
    /// a partial ship is discarded whole, never half-applied.
    CheckpointSegment {
        /// The tenant whose checkpoint is being shipped.
        tenant: u32,
        /// The checkpoint's epoch number.
        epoch: u64,
        /// The sender's fencing epoch.
        fencing_epoch: u64,
        /// Zero-based index of this segment.
        seq: u32,
        /// Total number of segments in this checkpoint.
        total: u32,
        /// This segment's slice of the encoded checkpoint frame.
        bytes: Vec<u8>,
    },
    /// Primary → standby: commit marker for a shipped checkpoint. The
    /// standby reassembles the segments, verifies `len` and `crc`
    /// against the whole, applies the checkpoint, and echoes this frame
    /// back as the per-tenant replication acknowledgement.
    CheckpointCommit {
        /// The tenant whose checkpoint is being committed.
        tenant: u32,
        /// The checkpoint's epoch number.
        epoch: u64,
        /// The sender's fencing epoch.
        fencing_epoch: u64,
        /// Total length of the assembled checkpoint bytes.
        len: u32,
        /// CRC-32 of the assembled checkpoint bytes.
        crc: u32,
    },
    /// Any → any: the sender asserts `fencing_epoch`. A receiver whose
    /// own epoch is lower has been deposed: it must stop releasing
    /// tuples (fail closed) and audit every refusal. Also sent by a
    /// fenced server to its clients so they fail over to the new
    /// primary.
    Fence {
        /// The asserted fencing epoch.
        fencing_epoch: u64,
    },
    /// Client → server: the causal trace context for the *next*
    /// [`Message`] frame on this connection (sp-trace). Purely
    /// observational — a server that drops it changes no processing,
    /// only the resulting span tree. Ids are derived deterministically
    /// (see [`crate::trace::TraceContext`]), so both ends agree on them
    /// without negotiation.
    Trace {
        /// Trace id of the upcoming frame.
        trace_id: u64,
        /// The client-side span the server's ingress spans hang under.
        parent_span: u64,
    },
}

impl Control {
    /// Serializes the control frame:
    /// `[MAGIC_CTRL][u32 body length][u32 CRC-32][body]`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        let mut body: Vec<u8> = Vec::with_capacity(16);
        match self {
            Self::Hello { tenant, acked } => {
                body.put_u8(CTRL_HELLO);
                body.put_u32(*tenant);
                body.put_u64(*acked);
            }
            Self::HelloAck { resume_from } => {
                body.put_u8(CTRL_HELLO_ACK);
                body.put_u64(*resume_from);
            }
            Self::Ack { pos } => {
                body.put_u8(CTRL_ACK);
                body.put_u64(*pos);
            }
            Self::Overloaded { retry_after_ms, pos } => {
                body.put_u8(CTRL_OVERLOADED);
                body.put_u64(*retry_after_ms);
                body.put_u64(*pos);
            }
            Self::Quarantined { code } => {
                body.put_u8(CTRL_QUARANTINED);
                body.put_u8(code.as_u8());
            }
            Self::Draining { pos } => {
                body.put_u8(CTRL_DRAINING);
                body.put_u64(*pos);
            }
            Self::ReplHello { fencing_epoch } => {
                body.put_u8(CTRL_REPL_HELLO);
                body.put_u64(*fencing_epoch);
            }
            Self::CheckpointSegment { tenant, epoch, fencing_epoch, seq, total, bytes } => {
                body.put_u8(CTRL_CKPT_SEGMENT);
                body.put_u32(*tenant);
                body.put_u64(*epoch);
                body.put_u64(*fencing_epoch);
                body.put_u32(*seq);
                body.put_u32(*total);
                body.put_u32(bytes.len() as u32);
                body.put_slice(bytes);
            }
            Self::CheckpointCommit { tenant, epoch, fencing_epoch, len, crc } => {
                body.put_u8(CTRL_CKPT_COMMIT);
                body.put_u32(*tenant);
                body.put_u64(*epoch);
                body.put_u64(*fencing_epoch);
                body.put_u32(*len);
                body.put_u32(*crc);
            }
            Self::Fence { fencing_epoch } => {
                body.put_u8(CTRL_FENCE);
                body.put_u64(*fencing_epoch);
            }
            Self::Trace { trace_id, parent_span } => {
                body.put_u8(CTRL_TRACE);
                body.put_u64(*trace_id);
                body.put_u64(*parent_span);
            }
        }
        buf.put_u8(MAGIC_CTRL);
        buf.put_u32(body.len() as u32);
        buf.put_u32(crc32(&body));
        buf.put_slice(&body);
    }

    /// Serializes into a fresh byte vector.
    #[must_use]
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(24);
        self.encode(&mut buf);
        buf
    }

    /// Decodes a checksum-verified control frame body.
    fn decode_body(mut body: &[u8]) -> Result<Self, WireError> {
        let buf = &mut body;
        if buf.remaining() < 1 {
            return Err(err("truncated control tag"));
        }
        let tag = buf.get_u8();
        let need = |buf: &&[u8], n: usize| -> Result<(), WireError> {
            if buf.remaining() < n {
                Err(err("truncated control body"))
            } else {
                Ok(())
            }
        };
        let ctrl = match tag {
            CTRL_HELLO => {
                need(buf, 12)?;
                Self::Hello { tenant: buf.get_u32(), acked: buf.get_u64() }
            }
            CTRL_HELLO_ACK => {
                need(buf, 8)?;
                Self::HelloAck { resume_from: buf.get_u64() }
            }
            CTRL_ACK => {
                need(buf, 8)?;
                Self::Ack { pos: buf.get_u64() }
            }
            CTRL_OVERLOADED => {
                need(buf, 16)?;
                Self::Overloaded { retry_after_ms: buf.get_u64(), pos: buf.get_u64() }
            }
            CTRL_QUARANTINED => {
                need(buf, 1)?;
                Self::Quarantined { code: QuarantineCode::from_u8(buf.get_u8())? }
            }
            CTRL_DRAINING => {
                need(buf, 8)?;
                Self::Draining { pos: buf.get_u64() }
            }
            CTRL_REPL_HELLO => {
                need(buf, 8)?;
                Self::ReplHello { fencing_epoch: buf.get_u64() }
            }
            CTRL_CKPT_SEGMENT => {
                need(buf, 4 + 8 + 8 + 4 + 4 + 4)?;
                let tenant = buf.get_u32();
                let epoch = buf.get_u64();
                let fencing_epoch = buf.get_u64();
                let seq = buf.get_u32();
                let total = buf.get_u32();
                let n = buf.get_u32() as usize;
                need(buf, n)?;
                let mut bytes = vec![0u8; n];
                buf.copy_to_slice(&mut bytes);
                Self::CheckpointSegment { tenant, epoch, fencing_epoch, seq, total, bytes }
            }
            CTRL_CKPT_COMMIT => {
                need(buf, 4 + 8 + 8 + 4 + 4)?;
                Self::CheckpointCommit {
                    tenant: buf.get_u32(),
                    epoch: buf.get_u64(),
                    fencing_epoch: buf.get_u64(),
                    len: buf.get_u32(),
                    crc: buf.get_u32(),
                }
            }
            CTRL_FENCE => {
                need(buf, 8)?;
                Self::Fence { fencing_epoch: buf.get_u64() }
            }
            CTRL_TRACE => {
                need(buf, 16)?;
                Self::Trace { trace_id: buf.get_u64(), parent_span: buf.get_u64() }
            }
            other => return Err(WireError(format!("unknown control tag {other}"))),
        };
        if buf.remaining() != 0 {
            return Err(err("trailing bytes in control body"));
        }
        Ok(ctrl)
    }
}

/// One decoded frame from a mixed control/data byte stream.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// A data frame.
    Message(Message),
    /// A session control frame.
    Control(Control),
    /// A ciphertext frame of the outsourced-enforcement mechanism
    /// (see [`crate::crypto::frame`]).
    Cipher(crate::crypto::CipherFrame),
}

/// Incremental decoder for a socket byte stream of [`Message`],
/// [`Control`], and [`crate::crypto::CipherFrame`] frames.
///
/// Unlike [`FrameDecoder`] (which decodes a complete recorded buffer and
/// treats a trailing truncated frame as corrupt), `StreamDecoder` is
/// built for live delivery: bytes arrive in arbitrary chunks, so an
/// incomplete frame is *retained* until the rest arrives. Corruption is
/// still fail-closed — a frame whose checksum or body fails to verify is
/// skipped by scanning to the next plausible boundary, costing exactly
/// its own elements — and a frame header whose claimed length exceeds
/// `max_frame_len` is treated as corruption immediately rather than
/// waiting forever for bytes that will never come (a one-byte lie must
/// not stall the connection past its read deadline).
#[derive(Debug)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    max_frame_len: usize,
    /// Frames skipped because of checksum/body failure or an absurd
    /// claimed length.
    pub corrupted_frames: u64,
    /// Bytes discarded while scanning for a frame boundary.
    pub skipped_bytes: u64,
}

/// Frame header size: magic + length + CRC.
const FRAME_HEADER: usize = 1 + 4 + 4;

impl StreamDecoder {
    /// A decoder refusing frames whose body claims more than
    /// `max_frame_len` bytes.
    #[must_use]
    pub fn new(max_frame_len: usize) -> Self {
        Self { buf: Vec::new(), max_frame_len, corrupted_frames: 0, skipped_bytes: 0 }
    }

    /// Bytes buffered waiting for the rest of a frame.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Feeds a chunk of received bytes, returning every frame that
    /// completed. Never panics on arbitrary input; counters accumulate
    /// across the connection's lifetime.
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<WireFrame> {
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        let mut pos = 0;
        loop {
            while pos < self.buf.len()
                && self.buf[pos] != MAGIC
                && self.buf[pos] != MAGIC_CTRL
                && self.buf[pos] != crate::crypto::frame::MAGIC_CIPHER
            {
                pos += 1;
                self.skipped_bytes += 1;
            }
            if self.buf.len() - pos < FRAME_HEADER {
                break; // incomplete header: wait for more bytes
            }
            let len = u32::from_be_bytes([
                self.buf[pos + 1],
                self.buf[pos + 2],
                self.buf[pos + 3],
                self.buf[pos + 4],
            ]) as usize;
            if len > self.max_frame_len {
                self.corrupted_frames += 1;
                self.skipped_bytes += 1;
                pos += 1;
                continue;
            }
            if self.buf.len() - pos < FRAME_HEADER + len {
                break; // incomplete body: wait for more bytes
            }
            let crc = u32::from_be_bytes([
                self.buf[pos + 5],
                self.buf[pos + 6],
                self.buf[pos + 7],
                self.buf[pos + 8],
            ]);
            let body = &self.buf[pos + FRAME_HEADER..pos + FRAME_HEADER + len];
            if crc32(body) != crc {
                self.corrupted_frames += 1;
                self.skipped_bytes += 1;
                pos += 1;
                continue;
            }
            let decoded = if self.buf[pos] == MAGIC {
                Message::decode_body(body).map(WireFrame::Message)
            } else if self.buf[pos] == MAGIC_CTRL {
                Control::decode_body(body).map(WireFrame::Control)
            } else {
                crate::crypto::CipherFrame::decode_body(body).map(WireFrame::Cipher)
            };
            match decoded {
                Ok(frame) => {
                    out.push(frame);
                    pos += FRAME_HEADER + len;
                }
                Err(_) => {
                    self.corrupted_frames += 1;
                    self.skipped_bytes += 1;
                    pos += 1;
                }
            }
        }
        self.buf.drain(..pos);
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::punctuation::DataDescription;
    use crate::roleset::RoleSet;

    fn tuple(tid: u64) -> Tuple {
        Tuple::new(
            StreamId(7),
            TupleId(tid),
            Timestamp(tid * 10),
            vec![
                Value::Int(tid as i64),
                Value::Float(1.5),
                Value::text("précis"),
                Value::Bool(true),
                Value::Null,
            ],
        )
    }

    fn sp(ts: u64) -> SecurityPunctuation {
        SecurityPunctuation::grant_all(RoleSet::from([1, 5, 100]), Timestamp(ts))
            .with_ddp(DataDescription::tuple_range(10, 20))
    }

    #[test]
    fn tuple_round_trip() {
        let t = tuple(42);
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let decoded = decode_tuple(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, t);
    }

    #[test]
    fn message_round_trip_mixed() {
        let msg = Message::new(
            StreamId(7),
            vec![
                StreamElement::punctuation(sp(1)),
                StreamElement::tuple(tuple(11)),
                StreamElement::tuple(tuple(12)),
                StreamElement::punctuation(sp(2)),
                StreamElement::tuple(tuple(13)),
            ],
        );
        let bytes = msg.encode_to_vec();
        let decoded = Message::decode(&mut bytes.as_slice()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn sp_overhead_is_small_relative_to_data() {
        // The paper's claim: the policy rides in the same message with
        // little extra demand. One sp amortized over a 10-tuple segment
        // adds a small fraction of the message size.
        let data_only =
            Message::new(StreamId(7), (0..10).map(|i| StreamElement::tuple(tuple(i))).collect());
        let mut with_sp_elems = vec![StreamElement::punctuation(sp(1))];
        with_sp_elems.extend((0..10).map(|i| StreamElement::tuple(tuple(i))));
        let with_sp = Message::new(StreamId(7), with_sp_elems);
        let base = data_only.encode_to_vec().len();
        let augmented = with_sp.encode_to_vec().len();
        let overhead = (augmented - base) as f64 / base as f64;
        assert!(overhead < 0.15, "sp overhead {overhead:.2} too large");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(&mut &b""[..]).is_err());
        assert!(Message::decode(&mut &b"\x00\x00\x00\x00\x00\x00\x00\x00\x00"[..]).is_err());
        let msg = Message::new(StreamId(1), vec![StreamElement::tuple(tuple(1))]);
        let mut bytes = msg.encode_to_vec();
        bytes.truncate(bytes.len() - 3);
        assert!(Message::decode(&mut bytes.as_slice()).is_err());
        // Corrupt an element tag.
        let mut bytes = msg.encode_to_vec();
        bytes[9] = 99;
        assert!(Message::decode(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn empty_message_round_trips() {
        let msg = Message::new(StreamId(3), vec![]);
        let bytes = msg.encode_to_vec();
        assert_eq!(Message::decode(&mut bytes.as_slice()).unwrap(), msg);
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Standard IEEE 802.3 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let msg = Message::new(
            StreamId(7),
            vec![StreamElement::punctuation(sp(1)), StreamElement::tuple(tuple(11))],
        );
        let clean = msg.encode_to_vec();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                let decoded = Message::decode(&mut bytes.as_slice());
                assert_ne!(
                    decoded.ok(),
                    Some(msg.clone()),
                    "flip of byte {byte} bit {bit} must not decode to the original"
                );
            }
        }
    }

    #[test]
    fn frame_decoder_resyncs_past_corruption() {
        let frames: Vec<Message> = (0..4)
            .map(|i| {
                Message::new(
                    StreamId(i),
                    vec![
                        StreamElement::punctuation(sp(u64::from(i))),
                        StreamElement::tuple(tuple(u64::from(i) + 10)),
                    ],
                )
            })
            .collect();
        let mut stream = Vec::new();
        let mut frame_starts = Vec::new();
        for f in &frames {
            frame_starts.push(stream.len());
            f.encode(&mut stream);
        }
        // Corrupt one byte in the middle of frame 1's body.
        stream[frame_starts[1] + 15] ^= 0xFF;
        let mut dec = FrameDecoder::new();
        let recovered = dec.decode_stream(&stream);
        let ids: Vec<u32> = recovered.iter().map(|m| m.stream.raw()).collect();
        assert_eq!(ids, vec![0, 2, 3], "only the damaged frame is lost");
        assert!(dec.corrupted_frames >= 1);
        assert!(dec.skipped_bytes > 0);
    }

    #[test]
    fn frame_decoder_survives_garbage_interludes() {
        let msg = Message::new(StreamId(9), vec![StreamElement::tuple(tuple(3))]);
        let mut stream = vec![0xDE, 0xAD, 0xBE, 0xEF, MAGIC, 0x00]; // noise + fake magic
        msg.encode(&mut stream);
        stream.extend_from_slice(&[MAGIC, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]); // truncated frame
        let mut dec = FrameDecoder::new();
        let recovered = dec.decode_stream(&stream);
        assert_eq!(recovered, vec![msg]);
        assert!(dec.corrupted_frames >= 1);
    }

    #[test]
    fn control_frames_round_trip() {
        let frames = [
            Control::Hello { tenant: 7, acked: 42 },
            Control::HelloAck { resume_from: 9000 },
            Control::Ack { pos: u64::MAX },
            Control::Overloaded { retry_after_ms: 125, pos: 3 },
            Control::Quarantined { code: QuarantineCode::Garbage },
            Control::Quarantined { code: QuarantineCode::Panicked },
            Control::Quarantined { code: QuarantineCode::ResumeFailed },
            Control::Draining { pos: 17 },
            Control::Trace { trace_id: 0xDEAD_BEEF_CAFE_F00D, parent_span: 42 },
            Control::Trace { trace_id: 0, parent_span: u64::MAX },
        ];
        for ctrl in frames {
            let bytes = ctrl.encode_to_vec();
            let mut dec = StreamDecoder::new(1024);
            let got = dec.feed(&bytes);
            assert_eq!(got, vec![WireFrame::Control(ctrl)]);
            assert_eq!(dec.corrupted_frames, 0);
        }
    }

    #[test]
    fn replication_frames_round_trip() {
        let frames = [
            Control::ReplHello { fencing_epoch: 1 },
            Control::CheckpointSegment {
                tenant: 7,
                epoch: 42,
                fencing_epoch: 3,
                seq: 2,
                total: 5,
                bytes: vec![0xC7, 0x00, 0xFF, 0x5A, 0xA5],
            },
            Control::CheckpointSegment {
                tenant: 0,
                epoch: u64::MAX,
                fencing_epoch: u64::MAX,
                seq: 0,
                total: 1,
                bytes: Vec::new(),
            },
            Control::CheckpointCommit {
                tenant: 9,
                epoch: 4,
                fencing_epoch: 2,
                len: 1024,
                crc: 0xDEAD_BEEF,
            },
            Control::Fence { fencing_epoch: 17 },
        ];
        for ctrl in frames {
            let bytes = ctrl.encode_to_vec();
            let mut dec = StreamDecoder::new(1024);
            let got = dec.feed(&bytes);
            assert_eq!(got, vec![WireFrame::Control(ctrl)]);
            assert_eq!(dec.corrupted_frames, 0);
        }
    }

    #[test]
    fn unknown_control_tag_is_refused_not_panicked() {
        // A well-framed control body with an unassigned tag must fail
        // decode (counted as corruption), never panic or fabricate.
        for tag in [11u8, 12, 99, 255] {
            let body = vec![tag, 1, 2, 3, 4, 5, 6, 7, 8];
            let mut bytes = vec![MAGIC_CTRL];
            bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
            bytes.extend_from_slice(&crc32(&body).to_be_bytes());
            bytes.extend_from_slice(&body);
            let mut dec = StreamDecoder::new(1024);
            let got = dec.feed(&bytes);
            assert!(got.is_empty(), "tag {tag} must not decode");
            assert!(dec.corrupted_frames >= 1);
        }
    }

    #[test]
    fn truncated_segment_bytes_are_refused() {
        // A CheckpointSegment whose byte-length field lies past the body
        // end must fail decode cleanly.
        let ctrl = Control::CheckpointSegment {
            tenant: 1,
            epoch: 2,
            fencing_epoch: 3,
            seq: 0,
            total: 1,
            bytes: vec![1, 2, 3, 4],
        };
        let clean = ctrl.encode_to_vec();
        // Rewrite the inner length field (last u32 before the payload)
        // to claim more bytes than the frame holds, refreshing the CRC
        // so only the *body* validation can catch it.
        let mut body = clean[9..].to_vec();
        let len_at = body.len() - 4 - 4; // 4 payload bytes, 4-byte length
        body[len_at..len_at + 4].copy_from_slice(&1_000u32.to_be_bytes());
        let mut bytes = vec![MAGIC_CTRL];
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&crc32(&body).to_be_bytes());
        bytes.extend_from_slice(&body);
        let mut dec = StreamDecoder::new(1024);
        assert!(dec.feed(&bytes).is_empty());
        assert!(dec.corrupted_frames >= 1);
    }

    #[test]
    fn stream_decoder_reassembles_one_byte_chunks() {
        let msg = Message::new(
            StreamId(7),
            vec![StreamElement::punctuation(sp(1)), StreamElement::tuple(tuple(11))],
        );
        let mut bytes = Control::Hello { tenant: 1, acked: 0 }.encode_to_vec();
        msg.encode(&mut bytes);
        Control::Ack { pos: 2 }.encode(&mut bytes);
        let mut dec = StreamDecoder::new(1 << 16);
        let mut got = Vec::new();
        for b in &bytes {
            got.extend(dec.feed(std::slice::from_ref(b)));
        }
        assert_eq!(
            got,
            vec![
                WireFrame::Control(Control::Hello { tenant: 1, acked: 0 }),
                WireFrame::Message(msg),
                WireFrame::Control(Control::Ack { pos: 2 }),
            ]
        );
        assert_eq!(dec.corrupted_frames, 0);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn stream_decoder_resyncs_past_garbage_and_corruption() {
        let a = Message::new(StreamId(1), vec![StreamElement::tuple(tuple(1))]);
        let b = Message::new(StreamId(2), vec![StreamElement::tuple(tuple(2))]);
        let mut bytes = vec![0xDE, 0xAD];
        a.encode(&mut bytes);
        let corrupt_at = bytes.len() + 12;
        b.encode(&mut bytes); // will be corrupted
        bytes[corrupt_at] ^= 0xFF;
        bytes.extend_from_slice(&[MAGIC, 0x01]); // torn header tail
        let c = Message::new(StreamId(3), vec![StreamElement::tuple(tuple(3))]);
        c.encode(&mut bytes);
        let mut dec = StreamDecoder::new(1 << 16);
        let got = dec.feed(&bytes);
        let ids: Vec<u32> = got
            .iter()
            .filter_map(|f| match f {
                WireFrame::Message(m) => Some(m.stream.raw()),
                WireFrame::Control(_) | WireFrame::Cipher(_) => None,
            })
            .collect();
        assert_eq!(ids, vec![1, 3], "only the damaged frame is lost");
        assert!(dec.corrupted_frames >= 1);
    }

    #[test]
    fn stream_decoder_rejects_absurd_length_instead_of_stalling() {
        // A frame header claiming a body far beyond the cap must count as
        // corruption immediately, not buffer forever.
        let mut bytes = vec![MAGIC];
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        let msg = Message::new(StreamId(5), vec![StreamElement::tuple(tuple(9))]);
        msg.encode(&mut bytes);
        let mut dec = StreamDecoder::new(1 << 16);
        let got = dec.feed(&bytes);
        assert_eq!(got, vec![WireFrame::Message(msg)]);
        assert!(dec.corrupted_frames >= 1);
    }

    #[test]
    fn stream_decoder_retains_partial_frame_across_feeds() {
        let msg = Message::new(StreamId(4), vec![StreamElement::tuple(tuple(6))]);
        let bytes = msg.encode_to_vec();
        let mut dec = StreamDecoder::new(1 << 16);
        let (head, tail) = bytes.split_at(bytes.len() / 2);
        assert!(dec.feed(head).is_empty());
        assert!(dec.buffered() > 0);
        assert_eq!(dec.feed(tail), vec![WireFrame::Message(msg)]);
        assert_eq!(dec.corrupted_frames, 0);
    }

    #[test]
    fn frame_decoder_handles_arbitrary_bytes() {
        // A deterministic pseudo-random byte soup must never panic.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        let bytes: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let mut dec = FrameDecoder::new();
        let _ = dec.decode_stream(&bytes);
    }
}
