//! Typed attribute values carried inside stream tuples.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The type of an attribute, declared in a [`Schema`](crate::schema::Schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 text (reference-counted, cheap to clone).
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Int => "INT",
            ValueType::Float => "FLOAT",
            ValueType::Text => "TEXT",
            ValueType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A single attribute value.
///
/// `Null` exists so that attribute-granularity access control can *mask*
/// unauthorized attributes instead of dropping whole tuples.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent / masked value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 text.
    Text(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Text constructor from anything string-like.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// The runtime type, or `None` for `Null`.
    #[must_use]
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Text(_) => Some(ValueType::Text),
            Value::Bool(_) => Some(ValueType::Bool),
        }
    }

    /// True if this is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to floats) for comparisons and aggregates.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Text view.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL-style comparison: `Null` compares to nothing, numerics compare
    /// across `Int`/`Float`, other type mixes are incomparable.
    #[must_use]
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Equality under [`Value::compare`] semantics (`Null` equals nothing).
    #[must_use]
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }

    /// Total ordering for use as grouping / duplicate-elimination keys:
    /// `Null < Bool < Int/Float (by value) < Text`; NaN sorts greatest among
    /// floats.
    #[must_use]
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.as_ref().cmp(b.as_ref()),
            // Audited: rank 2 is exactly Int | Float, both convert.
            #[allow(clippy::expect_used)]
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let fa = a.as_f64().expect("rank 2 is numeric");
                let fb = b.as_f64().expect("rank 2 is numeric");
                fa.total_cmp(&fb)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when numerically equal
            // (cmp_total treats 2 == 2.0): hash the f64 bits of the value.
            Value::Int(v) => {
                2u8.hash(state);
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn numeric_comparison_crosses_types() {
        assert_eq!(Value::Int(2).compare(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(2).compare(&Value::Float(2.5)), Some(Ordering::Less));
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
    }

    #[test]
    fn null_is_incomparable() {
        assert_eq!(Value::Null.compare(&Value::Null), None);
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert!(!Value::Null.sql_eq(&Value::Null));
    }

    #[test]
    fn mixed_types_are_incomparable() {
        assert_eq!(Value::text("a").compare(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_is_total() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-1),
            Value::Float(0.5),
            Value::Int(2),
            Value::Float(f64::NAN),
            Value::text("a"),
        ];
        for a in &vals {
            for b in &vals {
                // antisymmetry
                assert_eq!(a.cmp_total(b), b.cmp_total(a).reverse());
            }
        }
        // NaN is greatest numeric
        assert_eq!(Value::Float(f64::NAN).cmp_total(&Value::Int(i64::MAX)), Ordering::Greater);
    }

    #[test]
    fn eq_hash_consistency_across_int_float() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(Value::Int(7), Value::Float(7.0));
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_ne!(Value::Int(7), Value::Int(8));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("hi").to_string(), "hi");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(ValueType::Float.to_string(), "FLOAT");
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::text("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.value_type(), None);
        assert_eq!(Value::Int(1).value_type(), Some(ValueType::Int));
    }
}
