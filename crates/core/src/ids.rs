//! Strongly-typed identifiers used throughout the framework.
//!
//! The paper's streaming model (§II-B) has tuples of the form
//! `t = [sid, tid, A, ts]`; these newtypes keep the four components from
//! being mixed up and keep hot structures small (`u32`/`u64` instead of
//! strings on the tuple path — names live in catalogs).

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw numeric value.
            #[must_use]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type! {
    /// Identifies a registered data stream (the `sid` tuple component).
    StreamId(u32)
}

id_type! {
    /// Identifies a tuple — typically the data-provider key (e.g. a patient
    /// id or a moving-object id), so many tuples from the same provider share
    /// a `tid` and can share a policy.
    TupleId(u64)
}

id_type! {
    /// Identifies a role in the flat-RBAC catalog.
    RoleId(u32)
}

id_type! {
    /// Identifies a registered continuous query.
    QueryId(u32)
}

id_type! {
    /// Identifies a subject (a query specifier signed into the DSMS).
    SubjectId(u32)
}

/// A logical timestamp in milliseconds. Stream tuples and security
/// punctuations arrive in non-decreasing timestamp order (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Constructs from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms)
    }

    /// The raw millisecond value.
    #[must_use]
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration in milliseconds.
    #[must_use]
    pub const fn plus(self, ms: u64) -> Self {
        Self(self.0.saturating_add(ms))
    }

    /// Saturating subtraction of a duration in milliseconds.
    #[must_use]
    pub const fn minus(self, ms: u64) -> Self {
        Self(self.0.saturating_sub(ms))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(StreamId(1) < StreamId(2));
        assert_eq!(TupleId(42).to_string(), "42");
        assert_eq!(RoleId::from(7).raw(), 7);
    }

    #[test]
    fn timestamps_saturate() {
        assert_eq!(Timestamp::MAX.plus(1), Timestamp::MAX);
        assert_eq!(Timestamp::ZERO.minus(1), Timestamp::ZERO);
        assert_eq!(Timestamp::from_millis(10).minus(4).millis(), 6);
        assert_eq!(Timestamp::from_millis(10).plus(5), Timestamp(15));
    }

    #[test]
    fn timestamp_ordering() {
        assert!(Timestamp(1) < Timestamp(2));
        assert_eq!(Timestamp::from_millis(3).to_string(), "3ms");
    }
}
