//! Compact role sets.
//!
//! The paper (§I-C) suggests encoding policies "in a bitmap format for
//! compactness, thus further reducing security-related processing".
//! [`RoleSet`] is that bitmap: a growable `u64`-word bitset over
//! [`RoleId`]s with word-at-a-time set algebra. All policy operations of the
//! security-aware algebra (Table I) reduce to these operations.

use std::fmt;

use crate::ids::RoleId;

/// A set of roles, stored as a bitmap.
#[derive(Clone, Default)]
pub struct RoleSet {
    words: Vec<u64>,
}

impl PartialEq for RoleSet {
    fn eq(&self, other: &Self) -> bool {
        // Semantic equality: trailing zero words are irrelevant.
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for RoleSet {}

impl std::hash::Hash for RoleSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Consistent with semantic equality: skip trailing zero words.
        let end = self.words.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        self.words[..end].hash(state);
    }
}

impl RoleSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A set containing the single role `r`.
    #[must_use]
    pub fn single(r: RoleId) -> Self {
        let mut s = Self::new();
        s.insert(r);
        s
    }

    /// A set containing all roles with ids `0..n`.
    #[must_use]
    pub fn all_below(n: u32) -> Self {
        let mut s = Self::new();
        for r in 0..n {
            s.insert(RoleId(r));
        }
        s
    }

    /// Inserts a role; returns true if it was newly added.
    pub fn insert(&mut self, r: RoleId) -> bool {
        let (w, b) = (r.0 as usize / 64, r.0 as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes a role; returns true if it was present.
    pub fn remove(&mut self, r: RoleId) -> bool {
        let (w, b) = (r.0 as usize / 64, r.0 as usize % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, r: RoleId) -> bool {
        let (w, b) = (r.0 as usize / 64, r.0 as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// True if no role is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of roles present.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the two sets share at least one role — the policy
    /// compatibility test `Pt ∩ p ≠ ∅` at the heart of the Security Shield
    /// and SAJoin operators. Early-exits on the first overlapping word.
    #[must_use]
    pub fn intersects(&self, other: &RoleSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// True if every role of `self` is in `other`.
    #[must_use]
    pub fn is_subset(&self, other: &RoleSet) -> bool {
        self.words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !other.words.get(i).copied().unwrap_or(0) == 0)
    }

    /// In-place union (`union()` of the paper's policy operations).
    pub fn union_with(&mut self, other: &RoleSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection (`intersect()` of the paper's policy operations).
    pub fn intersect_with(&mut self, other: &RoleSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference: removes every role of `other`.
    pub fn minus_with(&mut self, other: &RoleSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Owned union.
    #[must_use]
    pub fn union(&self, other: &RoleSet) -> RoleSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Owned intersection.
    #[must_use]
    pub fn intersect(&self, other: &RoleSet) -> RoleSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Owned difference (`self − other`); the duplicate-elimination
    /// operator's case 3 emits `P_new − (P_old ∩ P_new)` with this.
    #[must_use]
    pub fn minus(&self, other: &RoleSet) -> RoleSet {
        let mut out = self.clone();
        out.minus_with(other);
        out
    }

    /// Iterates the roles in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = RoleId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(RoleId((wi as u32) * 64 + b))
                }
            })
        })
    }

    /// The smallest role id present, if any. Used by the SPIndex skipping
    /// rule (Lemma 5.1), which keys each punctuation by its first role.
    #[must_use]
    pub fn first(&self) -> Option<RoleId> {
        self.iter().next()
    }

    /// The smallest role present in **both** sets, without allocating —
    /// the hot operation of the (refined) SPIndex skipping rule.
    #[must_use]
    pub fn first_common(&self, other: &RoleSet) -> Option<RoleId> {
        for (i, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let both = a & b;
            if both != 0 {
                return Some(RoleId((i as u32) * 64 + both.trailing_zeros()));
            }
        }
        None
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        std::mem::size_of::<RoleSet>() + self.words.capacity() * 8
    }

    /// Serializes the bitmap as `[u16 word count][u64 words…]`, big-endian.
    ///
    /// Trailing zero words are trimmed, so semantically equal sets always
    /// produce identical bytes — required for byte-comparable snapshots.
    pub fn encode(&self, buf: &mut impl bytes::BufMut) {
        let end = self.words.iter().rposition(|&w| w != 0).map_or(0, |i| i + 1);
        buf.put_u16(end as u16);
        for &w in &self.words[..end] {
            buf.put_u64(w);
        }
    }

    /// Deserializes a bitmap produced by [`RoleSet::encode`].
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn decode(buf: &mut impl bytes::Buf) -> Result<Self, String> {
        if buf.remaining() < 2 {
            return Err("truncated role set header".into());
        }
        let n = buf.get_u16() as usize;
        if buf.remaining() < n * 8 {
            return Err("truncated role set words".into());
        }
        let words = (0..n).map(|_| buf.get_u64()).collect();
        Ok(Self { words })
    }

    /// Drops trailing zero words (keeps footprint proportional to content).
    pub fn shrink(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
        self.words.shrink_to_fit();
    }
}

impl FromIterator<RoleId> for RoleSet {
    fn from_iter<I: IntoIterator<Item = RoleId>>(iter: I) -> Self {
        let mut s = Self::new();
        for r in iter {
            s.insert(r);
        }
        s
    }
}

impl<const N: usize> From<[u32; N]> for RoleSet {
    fn from(ids: [u32; N]) -> Self {
        ids.into_iter().map(RoleId).collect()
    }
}

fn fmt_roles(set: &RoleSet, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{{")?;
    for (i, r) in set.iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "r{}", r.0)?;
    }
    write!(f, "}}")
}

impl fmt::Debug for RoleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_roles(self, f)
    }
}

impl fmt::Display for RoleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_roles(self, f)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = RoleSet::new();
        assert!(s.insert(RoleId(3)));
        assert!(!s.insert(RoleId(3)));
        assert!(s.contains(RoleId(3)));
        assert!(!s.contains(RoleId(64)));
        assert!(s.insert(RoleId(200)));
        assert!(s.contains(RoleId(200)));
        assert!(s.remove(RoleId(3)));
        assert!(!s.remove(RoleId(3)));
        assert!(!s.remove(RoleId(999)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_algebra() {
        let a = RoleSet::from([1, 2, 3, 100]);
        let b = RoleSet::from([3, 4, 100, 200]);
        assert_eq!(a.union(&b), RoleSet::from([1, 2, 3, 4, 100, 200]));
        assert_eq!(a.intersect(&b), RoleSet::from([3, 100]));
        assert_eq!(a.minus(&b), RoleSet::from([1, 2]));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&RoleSet::from([9, 300])));
        assert!(RoleSet::from([3]).is_subset(&a));
        assert!(!RoleSet::from([3, 9]).is_subset(&a));
        assert!(RoleSet::new().is_subset(&a));
    }

    #[test]
    fn empty_and_len() {
        assert!(RoleSet::new().is_empty());
        let mut s = RoleSet::from([70]);
        assert!(!s.is_empty());
        s.remove(RoleId(70));
        assert!(s.is_empty(), "all-zero words count as empty");
        assert_eq!(RoleSet::all_below(130).len(), 130);
    }

    #[test]
    fn iteration_is_sorted() {
        let s = RoleSet::from([200, 1, 65, 64]);
        let ids: Vec<u32> = s.iter().map(|r| r.0).collect();
        assert_eq!(ids, vec![1, 64, 65, 200]);
        assert_eq!(s.first(), Some(RoleId(1)));
        assert_eq!(RoleSet::new().first(), None);
    }

    #[test]
    fn first_common_matches_intersect_first() {
        let a = RoleSet::from([5, 70, 200]);
        let b = RoleSet::from([6, 70, 300]);
        assert_eq!(a.first_common(&b), a.intersect(&b).first());
        assert_eq!(a.first_common(&RoleSet::from([1])), None);
        assert_eq!(RoleSet::new().first_common(&a), None);
        assert_eq!(a.first_common(&a), Some(RoleId(5)));
    }

    #[test]
    fn intersect_with_differing_lengths() {
        let mut a = RoleSet::from([1, 300]);
        a.intersect_with(&RoleSet::from([1]));
        assert_eq!(a, RoleSet::from([1]));
        let mut b = RoleSet::from([1]);
        b.intersect_with(&RoleSet::from([1, 300]));
        assert_eq!(b, RoleSet::from([1]));
    }

    #[test]
    fn shrink_drops_trailing_words() {
        let mut s = RoleSet::from([500]);
        s.remove(RoleId(500));
        s.shrink();
        assert_eq!(s.mem_bytes(), std::mem::size_of::<RoleSet>());
    }

    #[test]
    fn display_and_debug() {
        let s = RoleSet::from([2, 5]);
        assert_eq!(format!("{s}"), "{r2,r5}");
        assert_eq!(format!("{s:?}"), "{r2,r5}");
    }
}
