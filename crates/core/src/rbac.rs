//! Flat role-based access control (§II-A).
//!
//! The paper uses flat RBAC as the running access-control model: query
//! specifiers (subjects) activate roles when they sign into the DSMS, each
//! registered continuous query inherits the roles of its specifier, and the
//! role assignment is frozen while the subject is registered to receive
//! results. The framework itself is model-agnostic — punctuations carry an
//! [`AccessModel`] tag — but role sets are how authorizations are evaluated.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use sp_pattern::Pattern;

use crate::ids::{RoleId, SubjectId};
use crate::roleset::RoleSet;

/// The access-control model a punctuation's restriction part refers to
/// (§III-B: "the SRP denotes both the access control model type and the
/// subjects authorized by the policy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessModel {
    /// Flat role-based access control — the paper's running model.
    #[default]
    Rbac,
    /// Discretionary access control (subject identities instead of roles;
    /// representable by registering one pseudo-role per subject).
    Dac,
    /// Mandatory access control (clearance levels as ordered roles).
    Mac,
}

impl fmt::Display for AccessModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessModel::Rbac => "RBAC",
            AccessModel::Dac => "DAC",
            AccessModel::Mac => "MAC",
        })
    }
}

/// The only right considered by the paper ("we consider a read right only").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Right {
    /// Permission to read streaming data.
    #[default]
    Read,
}

/// Error raised by catalog operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RbacError {
    /// A role name was registered twice.
    DuplicateRole(String),
    /// A referenced role does not exist.
    UnknownRole(String),
    /// A subject was registered twice.
    DuplicateSubject(String),
    /// A referenced subject does not exist.
    UnknownSubject(SubjectId),
    /// A subject's roles may not change while it has registered queries
    /// (§II-A: "this assignment cannot be changed while he/she is registered
    /// to receive the results of any of the currently executing queries").
    SubjectPinned(SubjectId),
}

impl fmt::Display for RbacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbacError::DuplicateRole(n) => write!(f, "role {n:?} already registered"),
            RbacError::UnknownRole(n) => write!(f, "unknown role {n:?}"),
            RbacError::DuplicateSubject(n) => write!(f, "subject {n:?} already registered"),
            RbacError::UnknownSubject(id) => write!(f, "unknown subject #{id}"),
            RbacError::SubjectPinned(id) => {
                write!(f, "subject #{id} has registered queries; role assignment is frozen")
            }
        }
    }
}

impl std::error::Error for RbacError {}

/// A query specifier signed into the DSMS.
#[derive(Debug, Clone)]
pub struct Subject {
    /// Unique id.
    pub id: SubjectId,
    /// Login name.
    pub name: Arc<str>,
    /// Activated roles.
    pub roles: RoleSet,
    /// Number of currently registered queries; role changes are rejected
    /// while this is non-zero.
    pub active_queries: u32,
}

/// The role and subject catalog of a DSMS instance.
///
/// Role *names* live here; everything on the tuple path works with
/// [`RoleId`]s and [`RoleSet`] bitmaps.
#[derive(Debug, Clone, Default)]
pub struct RoleCatalog {
    role_names: Vec<Arc<str>>,
    role_index: HashMap<Arc<str>, RoleId>,
    subjects: Vec<Subject>,
    subject_index: HashMap<Arc<str>, SubjectId>,
}

impl RoleCatalog {
    /// An empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a role name, returning its id.
    ///
    /// # Errors
    ///
    /// Fails if the name is already registered.
    pub fn register_role(&mut self, name: &str) -> Result<RoleId, RbacError> {
        if self.role_index.contains_key(name) {
            return Err(RbacError::DuplicateRole(name.to_owned()));
        }
        let id = RoleId(self.role_names.len() as u32);
        let name: Arc<str> = Arc::from(name);
        self.role_names.push(name.clone());
        self.role_index.insert(name, id);
        Ok(id)
    }

    /// Registers `n` synthetic roles named `r0..r{n-1}` (workload setup).
    // Audited: register_role only fails on duplicates, and the lookup just
    // proved the name is absent.
    #[allow(clippy::expect_used)]
    pub fn register_synthetic_roles(&mut self, n: u32) -> RoleSet {
        (0..n)
            .map(|i| {
                let name = format!("r{i}");
                self.lookup_role(&name)
                    .unwrap_or_else(|| self.register_role(&name).expect("name is fresh"))
            })
            .collect()
    }

    /// Looks a role up by name.
    #[must_use]
    pub fn lookup_role(&self, name: &str) -> Option<RoleId> {
        self.role_index.get(name).copied()
    }

    /// The name of a role id.
    #[must_use]
    pub fn role_name(&self, id: RoleId) -> Option<&str> {
        self.role_names.get(id.0 as usize).map(AsRef::as_ref)
    }

    /// Number of registered roles.
    #[must_use]
    pub fn role_count(&self) -> u32 {
        self.role_names.len() as u32
    }

    /// Resolves a role pattern (`e_r` of Definition 3.1) to the set of
    /// matching registered roles — the paper's `eval(R, e_r)`.
    #[must_use]
    pub fn resolve_roles(&self, pattern: &Pattern) -> RoleSet {
        if pattern.is_match_all() {
            return RoleSet::all_below(self.role_count());
        }
        if let Some(lit) = pattern.as_literal() {
            return self.lookup_role(lit).map(RoleSet::single).unwrap_or_default();
        }
        self.role_names
            .iter()
            .enumerate()
            .filter(|(_, n)| pattern.matches(n))
            .map(|(i, _)| RoleId(i as u32))
            .collect()
    }

    /// Registers a subject with an activated role set.
    ///
    /// # Errors
    ///
    /// Fails on duplicate names, unknown roles, or an empty role set (§II-A
    /// requires every query specifier to belong to at least one role).
    pub fn register_subject(&mut self, name: &str, roles: &[&str]) -> Result<SubjectId, RbacError> {
        if self.subject_index.contains_key(name) {
            return Err(RbacError::DuplicateSubject(name.to_owned()));
        }
        if roles.is_empty() {
            return Err(RbacError::UnknownRole(String::new()));
        }
        let mut set = RoleSet::new();
        for role in roles {
            let id =
                self.lookup_role(role).ok_or_else(|| RbacError::UnknownRole((*role).to_owned()))?;
            set.insert(id);
        }
        let id = SubjectId(self.subjects.len() as u32);
        let name: Arc<str> = Arc::from(name);
        self.subjects.push(Subject { id, name: name.clone(), roles: set, active_queries: 0 });
        self.subject_index.insert(name, id);
        Ok(id)
    }

    /// Looks a subject up by name.
    #[must_use]
    pub fn lookup_subject(&self, name: &str) -> Option<SubjectId> {
        self.subject_index.get(name).copied()
    }

    /// The subject record.
    #[must_use]
    pub fn subject(&self, id: SubjectId) -> Option<&Subject> {
        self.subjects.get(id.0 as usize)
    }

    /// The activated roles of a subject.
    ///
    /// # Errors
    ///
    /// Fails if the subject is unknown.
    pub fn subject_roles(&self, id: SubjectId) -> Result<&RoleSet, RbacError> {
        self.subject(id).map(|s| &s.roles).ok_or(RbacError::UnknownSubject(id))
    }

    /// Marks a query registration for `id` (pins its role assignment).
    ///
    /// # Errors
    ///
    /// Fails if the subject is unknown.
    pub fn pin_subject(&mut self, id: SubjectId) -> Result<(), RbacError> {
        let s = self.subjects.get_mut(id.0 as usize).ok_or(RbacError::UnknownSubject(id))?;
        s.active_queries += 1;
        Ok(())
    }

    /// Releases one query registration for `id`.
    ///
    /// # Errors
    ///
    /// Fails if the subject is unknown.
    pub fn unpin_subject(&mut self, id: SubjectId) -> Result<(), RbacError> {
        let s = self.subjects.get_mut(id.0 as usize).ok_or(RbacError::UnknownSubject(id))?;
        s.active_queries = s.active_queries.saturating_sub(1);
        Ok(())
    }

    /// Replaces a subject's activated roles.
    ///
    /// # Errors
    ///
    /// Fails while the subject has registered queries (§II-A), or if a role
    /// is unknown.
    pub fn reassign_subject_roles(
        &mut self,
        id: SubjectId,
        roles: &[&str],
    ) -> Result<(), RbacError> {
        let mut set = RoleSet::new();
        for role in roles {
            let rid =
                self.lookup_role(role).ok_or_else(|| RbacError::UnknownRole((*role).to_owned()))?;
            set.insert(rid);
        }
        let s = self.subjects.get_mut(id.0 as usize).ok_or(RbacError::UnknownSubject(id))?;
        if s.active_queries > 0 {
            return Err(RbacError::SubjectPinned(id));
        }
        s.roles = set;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn hospital() -> RoleCatalog {
        let mut c = RoleCatalog::new();
        for r in [
            "cardiologist",
            "general_physician",
            "doctor",
            "dermatologist",
            "nurse_on_duty",
            "employee",
        ] {
            c.register_role(r).unwrap();
        }
        c
    }

    #[test]
    fn roles_round_trip() {
        let c = hospital();
        let id = c.lookup_role("doctor").unwrap();
        assert_eq!(c.role_name(id), Some("doctor"));
        assert_eq!(c.role_count(), 6);
        assert!(c.lookup_role("janitor").is_none());
    }

    #[test]
    fn duplicate_role_rejected() {
        let mut c = hospital();
        assert!(matches!(c.register_role("doctor"), Err(RbacError::DuplicateRole(_))));
    }

    #[test]
    fn pattern_resolution() {
        let c = hospital();
        let set = c.resolve_roles(&Pattern::compile("doctor|nurse_on_duty").unwrap());
        assert_eq!(set.len(), 2);
        assert!(set.contains(c.lookup_role("doctor").unwrap()));
        let all = c.resolve_roles(&Pattern::match_all());
        assert_eq!(all.len(), 6);
        let lit = c.resolve_roles(&Pattern::literal("employee"));
        assert_eq!(lit.len(), 1);
        let none = c.resolve_roles(&Pattern::literal("janitor"));
        assert!(none.is_empty());
        // VM path: prefix wildcard
        let derm = c.resolve_roles(&Pattern::compile("derm.*").unwrap());
        assert_eq!(derm.len(), 1);
    }

    #[test]
    fn synthetic_roles_are_idempotent() {
        let mut c = RoleCatalog::new();
        let a = c.register_synthetic_roles(5);
        let b = c.register_synthetic_roles(5);
        assert_eq!(a, b);
        assert_eq!(c.role_count(), 5);
    }

    #[test]
    fn subjects_and_pinning() {
        let mut c = hospital();
        let alice = c.register_subject("alice", &["doctor", "employee"]).unwrap();
        assert_eq!(c.subject_roles(alice).unwrap().len(), 2);
        assert_eq!(c.lookup_subject("alice"), Some(alice));

        // Pinned subjects cannot change roles.
        c.pin_subject(alice).unwrap();
        assert!(matches!(
            c.reassign_subject_roles(alice, &["employee"]),
            Err(RbacError::SubjectPinned(_))
        ));
        c.unpin_subject(alice).unwrap();
        c.reassign_subject_roles(alice, &["employee"]).unwrap();
        assert_eq!(c.subject_roles(alice).unwrap().len(), 1);
    }

    #[test]
    fn subject_errors() {
        let mut c = hospital();
        c.register_subject("bob", &["doctor"]).unwrap();
        assert!(matches!(
            c.register_subject("bob", &["doctor"]),
            Err(RbacError::DuplicateSubject(_))
        ));
        assert!(matches!(c.register_subject("eve", &["janitor"]), Err(RbacError::UnknownRole(_))));
        assert!(c.register_subject("empty", &[]).is_err());
        assert!(matches!(c.subject_roles(SubjectId(99)), Err(RbacError::UnknownSubject(_))));
    }

    #[test]
    fn error_display() {
        assert!(RbacError::SubjectPinned(SubjectId(1)).to_string().contains("frozen"));
        assert_eq!(AccessModel::Rbac.to_string(), "RBAC");
        assert_eq!(Right::default(), Right::Read);
    }
}
