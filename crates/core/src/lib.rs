//! # sp-core — the security-punctuation data model
//!
//! Core types for the stream-centric access-control framework of
//! *"A Security Punctuation Framework for Enforcing Access Control on
//! Streaming Data"* (Nehme, Rundensteiner, Bertino; ICDE 2008):
//!
//! * [`ids`] — strongly-typed stream/tuple/role/query identifiers and
//!   timestamps;
//! * [`value`] / [`schema`] / [`mod@tuple`] — the `t = [sid, tid, A, ts]`
//!   streaming data model;
//! * [`roleset`] — bitmap role sets (the paper's compact policy encoding);
//! * [`rbac`] — the flat-RBAC catalog: roles, subjects, role activation;
//! * [`policy`] — resolved policies and the `union` / `intersect` /
//!   `override` combination semantics;
//! * [`punctuation`] — security punctuations `<DDP | SRP | Sign |
//!   Immutable | ts>`, sp-batch combination and the compact wire encoding;
//! * [`element`] — the punctuated stream element type;
//! * [`wire`] — the compact network framing that ships punctuations in the
//!   same message as the data (§I-B);
//! * [`trace`] — deterministic causal trace/span identifiers (sp-trace),
//!   derived from element identity so independent processes agree;
//! * [`crypto`] — reproduction-grade ChaCha20-Poly1305 / SHA-256 and the
//!   ciphertext framing for enforcement on an untrusted server.
//!
//! Everything here is engine-agnostic; the operators live in `sp-engine`.

#![warn(missing_docs)]

pub mod crypto;
pub mod element;
pub mod ids;
pub mod policy;
pub mod punctuation;
pub mod rbac;
pub mod roleset;
pub mod schema;
pub mod trace;
pub mod tuple;
pub mod value;
pub mod wire;

pub use crypto::{CipherFrame, KeyCapsule};
pub use element::StreamElement;
pub use ids::{QueryId, RoleId, StreamId, SubjectId, Timestamp, TupleId};
pub use policy::{Policy, SharedPolicy, Sign};
pub use punctuation::{
    combine_batch, DataDescription, RoleSpec, SecurityPunctuation, SecurityRestriction,
};
pub use rbac::{AccessModel, RbacError, Right, RoleCatalog, Subject};
pub use roleset::RoleSet;
pub use schema::{Field, Schema};
pub use trace::TraceContext;
pub use tuple::Tuple;
pub use value::{Value, ValueType};
pub use wire::{
    decode_tuple, encode_tuple, Control, Message, QuarantineCode, StreamDecoder, WireError,
    WireFrame,
};
