//! Ciphertext framing for the outsourced-enforcement mechanism.
//!
//! A provider turns each policy segment into a frame sequence the
//! *untrusted* server forwards without being able to read:
//!
//! ```text
//! HEADER (key capsules) → DATA × n → DIGEST → TERMINATOR
//! ```
//!
//! * [`CipherFrame::Header`] opens segment `seg`: it carries one sealed
//!   [`KeyCapsule`] per role the segment's policy grants, each wrapping
//!   the segment data key under that role's epoch key. A client that
//!   holds no granted role finds no capsule it can open — that *is* the
//!   access-control decision, made by cryptography rather than by the
//!   server.
//! * [`CipherFrame::Data`] carries one tuple sealed under the data key;
//!   `idx` orders frames within the segment and doubles as the AEAD
//!   nonce prefix, so reordering or replaying a frame breaks
//!   authentication instead of silently succeeding.
//! * [`CipherFrame::Digest`] seals the running SHA-256 over every DATA
//!   frame's ciphertext (and the frame count) under the data key, so a
//!   server that drops, reorders, or substitutes frames is caught at
//!   segment commit even when each surviving frame authenticates alone.
//! * [`CipherFrame::Terminator`] closes the segment: the client either
//!   commits (digest verified) or rolls back every tentative release.
//! * [`CipherFrame::KeyEpoch`] is the key-revocation punctuation: it
//!   announces the new epoch, after which capsules sealed under older
//!   epochs are refused (fail closed).
//!
//! Framing rides the same `[magic][u32 len][u32 CRC-32][body]` envelope
//! as [`crate::wire`], under its own [`MAGIC_CIPHER`] byte so the resync
//! logic of [`crate::wire::StreamDecoder`] protects all three frame
//! kinds uniformly. The CRC is transport hygiene only — an *adversarial*
//! server can recompute it — the security boundary is the AEAD tag
//! inside the body.

use bytes::{Buf, BufMut};

use crate::wire::{crc32, WireError};

/// Frame boundary marker for cipher frames. Distinct from
/// [`crate::wire::MAGIC`] and [`crate::wire::MAGIC_CTRL`].
pub const MAGIC_CIPHER: u8 = 0xC3;

const CF_HEADER: u8 = 0;
const CF_DATA: u8 = 1;
const CF_DIGEST: u8 = 2;
const CF_TERMINATOR: u8 = 3;
const CF_KEY_EPOCH: u8 = 4;

fn err(msg: &str) -> WireError {
    WireError(msg.to_owned())
}

/// One role's sealed copy of a segment data key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyCapsule {
    /// The role this capsule is addressed to.
    pub role: u32,
    /// The data key AEAD-sealed under the role's epoch key.
    pub wrapped: Vec<u8>,
}

/// A cipher frame — see the module docs for the segment grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CipherFrame {
    /// Opens a segment and distributes the data key to granted roles.
    Header {
        /// Stream the segment belongs to.
        stream: u32,
        /// Monotone segment sequence number (replay detector).
        seg: u64,
        /// Key epoch the capsules were sealed under.
        key_epoch: u64,
        /// Timestamp of the security punctuation the segment enforces.
        sp_ts: u64,
        /// One capsule per granted role (empty ⇒ deny-all segment).
        capsules: Vec<KeyCapsule>,
    },
    /// One tuple sealed under the segment data key.
    Data {
        /// Stream the segment belongs to.
        stream: u32,
        /// Segment this frame is part of.
        seg: u64,
        /// Zero-based frame index inside the segment (nonce component).
        idx: u32,
        /// `encode_tuple` bytes AEAD-sealed under the data key.
        sealed: Vec<u8>,
    },
    /// Sealed running digest over the segment's DATA ciphertext.
    Digest {
        /// Stream the segment belongs to.
        stream: u32,
        /// Segment this digest covers.
        seg: u64,
        /// Number of DATA frames the digest covers.
        count: u32,
        /// The SHA-256 digest AEAD-sealed under the data key.
        sealed_digest: Vec<u8>,
    },
    /// Closes the segment: commit or roll back.
    Terminator {
        /// Stream the segment belongs to.
        stream: u32,
        /// Segment being closed.
        seg: u64,
    },
    /// Key-revocation punctuation: epoch advanced, old capsules refused.
    KeyEpoch {
        /// Stream the epoch applies to.
        stream: u32,
        /// The new (strictly larger) key epoch.
        epoch: u64,
    },
}

impl CipherFrame {
    /// Serializes the frame:
    /// `[MAGIC_CIPHER][u32 body length][u32 CRC-32][body]`.
    pub fn encode(&self, buf: &mut impl BufMut) {
        let mut body: Vec<u8> = Vec::with_capacity(32);
        match self {
            Self::Header { stream, seg, key_epoch, sp_ts, capsules } => {
                body.put_u8(CF_HEADER);
                body.put_u32(*stream);
                body.put_u64(*seg);
                body.put_u64(*key_epoch);
                body.put_u64(*sp_ts);
                body.put_u32(capsules.len() as u32);
                for c in capsules {
                    body.put_u32(c.role);
                    body.put_u32(c.wrapped.len() as u32);
                    body.put_slice(&c.wrapped);
                }
            }
            Self::Data { stream, seg, idx, sealed } => {
                body.put_u8(CF_DATA);
                body.put_u32(*stream);
                body.put_u64(*seg);
                body.put_u32(*idx);
                body.put_u32(sealed.len() as u32);
                body.put_slice(sealed);
            }
            Self::Digest { stream, seg, count, sealed_digest } => {
                body.put_u8(CF_DIGEST);
                body.put_u32(*stream);
                body.put_u64(*seg);
                body.put_u32(*count);
                body.put_u32(sealed_digest.len() as u32);
                body.put_slice(sealed_digest);
            }
            Self::Terminator { stream, seg } => {
                body.put_u8(CF_TERMINATOR);
                body.put_u32(*stream);
                body.put_u64(*seg);
            }
            Self::KeyEpoch { stream, epoch } => {
                body.put_u8(CF_KEY_EPOCH);
                body.put_u32(*stream);
                body.put_u64(*epoch);
            }
        }
        buf.put_u8(MAGIC_CIPHER);
        buf.put_u32(body.len() as u32);
        buf.put_u32(crc32(&body));
        buf.put_slice(&body);
    }

    /// Serializes into a fresh byte vector.
    #[must_use]
    pub fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(48);
        self.encode(&mut buf);
        buf
    }

    /// Decodes a checksum-verified cipher frame body. Unknown tags and
    /// malformed bodies are errors (counted as corruption upstream),
    /// never panics.
    pub(crate) fn decode_body(mut body: &[u8]) -> Result<Self, WireError> {
        let buf = &mut body;
        if buf.remaining() < 1 {
            return Err(err("truncated cipher tag"));
        }
        let tag = buf.get_u8();
        let need = |buf: &&[u8], n: usize| -> Result<(), WireError> {
            if buf.remaining() < n {
                Err(err("truncated cipher body"))
            } else {
                Ok(())
            }
        };
        let frame = match tag {
            CF_HEADER => {
                need(buf, 4 + 8 + 8 + 8 + 4)?;
                let stream = buf.get_u32();
                let seg = buf.get_u64();
                let key_epoch = buf.get_u64();
                let sp_ts = buf.get_u64();
                let n = buf.get_u32() as usize;
                let mut capsules = Vec::new();
                for _ in 0..n {
                    need(buf, 8)?;
                    let role = buf.get_u32();
                    let len = buf.get_u32() as usize;
                    need(buf, len)?;
                    let mut wrapped = vec![0u8; len];
                    buf.copy_to_slice(&mut wrapped);
                    capsules.push(KeyCapsule { role, wrapped });
                }
                Self::Header { stream, seg, key_epoch, sp_ts, capsules }
            }
            CF_DATA => {
                need(buf, 4 + 8 + 4 + 4)?;
                let stream = buf.get_u32();
                let seg = buf.get_u64();
                let idx = buf.get_u32();
                let len = buf.get_u32() as usize;
                need(buf, len)?;
                let mut sealed = vec![0u8; len];
                buf.copy_to_slice(&mut sealed);
                Self::Data { stream, seg, idx, sealed }
            }
            CF_DIGEST => {
                need(buf, 4 + 8 + 4 + 4)?;
                let stream = buf.get_u32();
                let seg = buf.get_u64();
                let count = buf.get_u32();
                let len = buf.get_u32() as usize;
                need(buf, len)?;
                let mut sealed_digest = vec![0u8; len];
                buf.copy_to_slice(&mut sealed_digest);
                Self::Digest { stream, seg, count, sealed_digest }
            }
            CF_TERMINATOR => {
                need(buf, 12)?;
                Self::Terminator { stream: buf.get_u32(), seg: buf.get_u64() }
            }
            CF_KEY_EPOCH => {
                need(buf, 12)?;
                Self::KeyEpoch { stream: buf.get_u32(), epoch: buf.get_u64() }
            }
            other => return Err(WireError(format!("unknown cipher tag {other}"))),
        };
        if buf.remaining() != 0 {
            return Err(err("trailing bytes in cipher body"));
        }
        Ok(frame)
    }

    /// Decodes one complete encoded frame (`encode_to_vec` output):
    /// envelope, checksum, and body. The fault injector uses this to
    /// decode → mutate → re-encode frames; corrupt input is an error,
    /// never a panic.
    ///
    /// # Errors
    ///
    /// Fails on bad magic, short input, checksum mismatch, unknown tag,
    /// or trailing bytes.
    pub fn decode_frame(mut bytes: &[u8]) -> Result<Self, WireError> {
        let buf = &mut bytes;
        if buf.remaining() < 9 {
            return Err(err("truncated cipher frame"));
        }
        if buf.get_u8() != MAGIC_CIPHER {
            return Err(err("bad cipher magic"));
        }
        let len = buf.get_u32() as usize;
        let crc = buf.get_u32();
        if buf.remaining() != len {
            return Err(err("cipher frame length mismatch"));
        }
        if crc32(buf) != crc {
            return Err(err("cipher frame checksum mismatch"));
        }
        Self::decode_body(buf)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn samples() -> Vec<CipherFrame> {
        vec![
            CipherFrame::Header {
                stream: 7,
                seg: 42,
                key_epoch: 3,
                sp_ts: 5000,
                capsules: vec![
                    KeyCapsule { role: 0, wrapped: vec![1, 2, 3] },
                    KeyCapsule { role: 9, wrapped: vec![] },
                ],
            },
            CipherFrame::Header { stream: 7, seg: 43, key_epoch: 3, sp_ts: 6000, capsules: vec![] },
            CipherFrame::Data { stream: 7, seg: 42, idx: 0, sealed: vec![0xAB; 40] },
            CipherFrame::Data { stream: 7, seg: 42, idx: 1, sealed: vec![] },
            CipherFrame::Digest { stream: 7, seg: 42, count: 2, sealed_digest: vec![0xCD; 48] },
            CipherFrame::Terminator { stream: 7, seg: 42 },
            CipherFrame::KeyEpoch { stream: 7, epoch: 4 },
        ]
    }

    #[test]
    fn round_trip() {
        for frame in samples() {
            let bytes = frame.encode_to_vec();
            assert_eq!(bytes[0], MAGIC_CIPHER);
            let back = CipherFrame::decode_frame(&bytes).expect("round trip");
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn rejects_corruption() {
        for frame in samples() {
            let good = frame.encode_to_vec();
            // Any single flipped body byte fails the checksum.
            for i in 9..good.len() {
                let mut bad = good.clone();
                bad[i] ^= 0x40;
                assert!(CipherFrame::decode_frame(&bad).is_err(), "flip at {i}");
            }
            // Any truncation fails.
            for cut in 0..good.len() {
                assert!(CipherFrame::decode_frame(&good[..cut]).is_err(), "cut at {cut}");
            }
        }
    }

    #[test]
    fn rejects_unknown_tag_and_trailing_bytes() {
        let mut body = vec![99u8]; // unassigned tag
        body.extend_from_slice(&[0; 12]);
        let mut bytes = vec![MAGIC_CIPHER];
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&crc32(&body).to_be_bytes());
        bytes.extend_from_slice(&body);
        assert!(CipherFrame::decode_frame(&bytes).is_err());

        let mut body = CipherFrame::Terminator { stream: 1, seg: 2 }.encode_to_vec()[9..].to_vec();
        body.push(0xFF); // trailing byte
        let mut bytes = vec![MAGIC_CIPHER];
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&crc32(&body).to_be_bytes());
        bytes.extend_from_slice(&body);
        assert!(CipherFrame::decode_frame(&bytes).is_err());
    }

    #[test]
    fn header_capsule_count_lies_are_errors() {
        // A header claiming more capsules than the body holds must fail
        // closed, not over-read.
        let frame = CipherFrame::Header {
            stream: 1,
            seg: 1,
            key_epoch: 0,
            sp_ts: 0,
            capsules: vec![KeyCapsule { role: 3, wrapped: vec![9; 8] }],
        };
        let good = frame.encode_to_vec();
        let mut body = good[9..].to_vec();
        // capsule count lives right after tag(1)+stream(4)+seg(8)+epoch(8)+ts(8)
        let count_at = 1 + 4 + 8 + 8 + 8;
        body[count_at + 3] = 200;
        let mut bytes = vec![MAGIC_CIPHER];
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&crc32(&body).to_be_bytes());
        bytes.extend_from_slice(&body);
        assert!(CipherFrame::decode_frame(&bytes).is_err());
    }
}
