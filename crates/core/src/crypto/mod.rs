//! Reproduction-grade cryptography for the outsourced-enforcement
//! baseline: ChaCha20-Poly1305 AEAD (RFC 8439) and SHA-256 (FIPS 180-4),
//! hand-rolled on the standard library only.
//!
//! # Why hand-rolled, and what that means
//!
//! This repository vendors every dependency, and no audited crypto crate
//! is vendored — so the crypto-enforced mechanism (Streamforce / "Stream
//! on the Sky"-style enforcement on an *untrusted* server) carries its own
//! primitives. They are **structurally faithful reproductions validated
//! against the RFC 8439 / FIPS 180-4 known-answer vectors, not audited
//! production cryptography**: no guarantee is made about timing side
//! channels, zeroization, or misuse resistance beyond what the tests
//! assert. Use them to study the *enforcement architecture* — who can
//! decrypt what, and when release happens — not to protect real data.
//!
//! # Layout
//!
//! * [`chacha`] — the ChaCha20 block function and xor-keystream;
//! * [`poly1305`] — the one-time authenticator;
//! * [`sha256`] — incremental SHA-256 with a serializable midstate
//!   (segment digests must survive `snapshot`/`restore`);
//! * [`frame`] — the ciphertext framing (`HEADER`/`DATA`/`DIGEST`/
//!   `TERMINATOR`/`KEY_EPOCH`) rides the wire envelope of [`crate::wire`];
//! * [`seal`]/[`open`] — the RFC 8439 §2.8 AEAD composition;
//! * [`derive_key`] — deterministic SHA-256 key derivation for the
//!   per-(stream, role, epoch) key table.

pub mod chacha;
pub mod frame;
pub mod poly1305;
pub mod sha256;

pub use frame::{CipherFrame, KeyCapsule};
pub use sha256::{sha256 as digest, Sha256, DIGEST_LEN};

/// AEAD key length in bytes.
pub const KEY_LEN: usize = chacha::KEY_LEN;
/// AEAD nonce length in bytes.
pub const NONCE_LEN: usize = chacha::NONCE_LEN;
/// AEAD tag length in bytes.
pub const TAG_LEN: usize = poly1305::TAG_LEN;

/// A 256-bit symmetric key.
pub type Key = [u8; KEY_LEN];
/// A 96-bit AEAD nonce.
pub type Nonce = [u8; NONCE_LEN];

/// The Poly1305 one-time key for `(key, nonce)`: the first 32 bytes of
/// ChaCha20 keystream block 0 (RFC 8439 §2.6).
fn poly_key(key: &Key, nonce: &Nonce) -> [u8; poly1305::KEY_LEN] {
    let block = chacha::block(key, nonce, 0);
    let mut pk = [0u8; poly1305::KEY_LEN];
    pk.copy_from_slice(&block[..poly1305::KEY_LEN]);
    pk
}

/// The Poly1305 input of the AEAD (RFC 8439 §2.8): aad, ciphertext (each
/// zero-padded to 16), then both lengths little-endian.
fn mac_input(aad: &[u8], ciphertext: &[u8]) -> Vec<u8> {
    let pad = |len: usize| (16 - len % 16) % 16;
    let mut m = Vec::with_capacity(aad.len() + ciphertext.len() + 32);
    m.extend_from_slice(aad);
    m.resize(m.len() + pad(aad.len()), 0);
    m.extend_from_slice(ciphertext);
    m.resize(m.len() + pad(ciphertext.len()), 0);
    m.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    m.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    m
}

/// ChaCha20-Poly1305 encryption (RFC 8439 §2.8): returns
/// `ciphertext || tag` (`plaintext.len() + `[`TAG_LEN`] bytes).
///
/// Nonces must be unique per key; the framing derives them from the
/// segment sequence and frame index, which the release state machine
/// enforces to be strictly monotone.
#[must_use]
pub fn seal(key: &Key, nonce: &Nonce, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = plaintext.to_vec();
    chacha::xor_stream(key, nonce, 1, &mut out);
    let tag = poly1305::tag(&poly_key(key, nonce), &mac_input(aad, &out));
    out.extend_from_slice(&tag);
    out
}

/// ChaCha20-Poly1305 decryption: verifies the tag over `sealed`
/// (`ciphertext || tag`) and returns the plaintext, or `None` when the
/// input is too short or authentication fails — the caller must treat
/// `None` as *suppress and count*, never release.
#[must_use]
pub fn open(key: &Key, nonce: &Nonce, aad: &[u8], sealed: &[u8]) -> Option<Vec<u8>> {
    if sealed.len() < TAG_LEN {
        return None;
    }
    let (ct, tag_bytes) = sealed.split_at(sealed.len() - TAG_LEN);
    let mut expected = [0u8; TAG_LEN];
    expected.copy_from_slice(tag_bytes);
    let actual = poly1305::tag(&poly_key(key, nonce), &mac_input(aad, ct));
    if !poly1305::tags_equal(&actual, &expected) {
        return None;
    }
    let mut pt = ct.to_vec();
    chacha::xor_stream(key, nonce, 1, &mut pt);
    Some(pt)
}

/// Deterministic key derivation: `SHA-256(label || master || parts…)`.
///
/// The key table of the crypto-enforced mechanism is purely
/// derivational — per-(stream, role, epoch) keys and per-segment data
/// keys all come from one master key through this function, so provider
/// and key authority never ship key material, only identifiers.
#[must_use]
pub fn derive_key(master: &Key, label: &str, parts: &[u64]) -> Key {
    let mut h = Sha256::new();
    h.update(label.as_bytes());
    h.update(&[0]);
    h.update(master);
    for p in parts {
        h.update(&p.to_be_bytes());
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn rfc_key() -> Key {
        let mut k = [0u8; KEY_LEN];
        for (i, b) in k.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        k
    }

    fn rfc_nonce() -> Nonce {
        [0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47]
    }

    const RFC_AAD: [u8; 12] =
        [0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7];

    const RFC_PLAINTEXT: &[u8] = b"Ladies and Gentlemen of the class of '99: If I could \
offer you only one tip for the future, sunscreen would be it.";

    /// RFC 8439 §2.8.2 AEAD known-answer vector: ciphertext and tag.
    #[test]
    fn rfc8439_aead_known_answer() {
        let sealed = seal(&rfc_key(), &rfc_nonce(), &RFC_AAD, RFC_PLAINTEXT);
        let expected_ct: [u8; 114] = [
            0xd3, 0x1a, 0x8d, 0x34, 0x64, 0x8e, 0x60, 0xdb, 0x7b, 0x86, 0xaf, 0xbc, 0x53, 0xef,
            0x7e, 0xc2, 0xa4, 0xad, 0xed, 0x51, 0x29, 0x6e, 0x08, 0xfe, 0xa9, 0xe2, 0xb5, 0xa7,
            0x36, 0xee, 0x62, 0xd6, 0x3d, 0xbe, 0xa4, 0x5e, 0x8c, 0xa9, 0x67, 0x12, 0x82, 0xfa,
            0xfb, 0x69, 0xda, 0x92, 0x72, 0x8b, 0x1a, 0x71, 0xde, 0x0a, 0x9e, 0x06, 0x0b, 0x29,
            0x05, 0xd6, 0xa5, 0xb6, 0x7e, 0xcd, 0x3b, 0x36, 0x92, 0xdd, 0xbd, 0x7f, 0x2d, 0x77,
            0x8b, 0x8c, 0x98, 0x03, 0xae, 0xe3, 0x28, 0x09, 0x1b, 0x58, 0xfa, 0xb3, 0x24, 0xe4,
            0xfa, 0xd6, 0x75, 0x94, 0x55, 0x85, 0x80, 0x8b, 0x48, 0x31, 0xd7, 0xbc, 0x3f, 0xf4,
            0xde, 0xf0, 0x8e, 0x4b, 0x7a, 0x9d, 0xe5, 0x76, 0xd2, 0x65, 0x86, 0xce, 0xc6, 0x4b,
            0x61, 0x16,
        ];
        let expected_tag: [u8; TAG_LEN] = [
            0x1a, 0xe1, 0x0b, 0x59, 0x4f, 0x09, 0xe2, 0x6a, 0x7e, 0x90, 0x2e, 0xcb, 0xd0, 0x60,
            0x06, 0x91,
        ];
        assert_eq!(&sealed[..114], expected_ct.as_slice());
        assert_eq!(&sealed[114..], expected_tag.as_slice());

        let pt = open(&rfc_key(), &rfc_nonce(), &RFC_AAD, &sealed).expect("round trip");
        assert_eq!(pt, RFC_PLAINTEXT);
    }

    #[test]
    fn tampered_inputs_fail_authentication() {
        let sealed = seal(&rfc_key(), &rfc_nonce(), &RFC_AAD, RFC_PLAINTEXT);
        // Flipped ciphertext byte.
        let mut bad = sealed.clone();
        bad[10] ^= 0x01;
        assert!(open(&rfc_key(), &rfc_nonce(), &RFC_AAD, &bad).is_none());
        // Flipped tag byte.
        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x80;
        assert!(open(&rfc_key(), &rfc_nonce(), &RFC_AAD, &bad).is_none());
        // Wrong nonce.
        let mut nonce = rfc_nonce();
        nonce[0] ^= 1;
        assert!(open(&rfc_key(), &nonce, &RFC_AAD, &sealed).is_none());
        // Wrong aad.
        assert!(open(&rfc_key(), &rfc_nonce(), b"other aad", &sealed).is_none());
        // Truncated.
        assert!(open(&rfc_key(), &rfc_nonce(), &RFC_AAD, &sealed[..sealed.len() - 1]).is_none());
        assert!(open(&rfc_key(), &rfc_nonce(), &RFC_AAD, &sealed[..TAG_LEN - 1]).is_none());
        assert!(open(&rfc_key(), &rfc_nonce(), &RFC_AAD, &[]).is_none());
    }

    #[test]
    fn empty_plaintext_round_trips() {
        let sealed = seal(&rfc_key(), &rfc_nonce(), b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&rfc_key(), &rfc_nonce(), b"", &sealed).expect("round trip"), b"");
    }

    #[test]
    fn derive_key_is_deterministic_and_separated() {
        let master = [9u8; KEY_LEN];
        let a = derive_key(&master, "role-key", &[1, 2, 3]);
        assert_eq!(a, derive_key(&master, "role-key", &[1, 2, 3]));
        assert_ne!(a, derive_key(&master, "role-key", &[1, 2, 4]));
        assert_ne!(a, derive_key(&master, "data-key", &[1, 2, 3]));
        assert_ne!(a, derive_key(&[8u8; KEY_LEN], "role-key", &[1, 2, 3]));
    }
}
