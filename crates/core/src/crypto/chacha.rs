//! ChaCha20 stream cipher (RFC 8439 §2.1–2.4), hand-rolled.
//!
//! Provides the block function and the xor-keystream primitive the AEAD
//! construction is built on. Known-answer tests against the RFC 8439
//! §2.3.2 / §2.4.2 vectors live in this module's test section.
//!
//! Part of the reproduction-grade crypto suite — see the [`crate::crypto`]
//! module caveat; this is a structurally faithful implementation, not an
//! audited production one.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (the RFC 8439 96-bit nonce).
pub const NONCE_LEN: usize = 12;
/// Keystream block size in bytes.
pub const BLOCK_LEN: usize = 64;

/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn init_state(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u32; 16] {
    let mut s = [0u32; 16];
    s[..4].copy_from_slice(&SIGMA);
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        s[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    s[12] = counter;
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        s[13 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    s
}

/// The ChaCha20 block function: one 64-byte keystream block for
/// `(key, nonce, counter)` (RFC 8439 §2.3).
#[must_use]
pub fn block(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> [u8; BLOCK_LEN] {
    let init = init_state(key, nonce, counter);
    let mut s = init;
    for _ in 0..10 {
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = s[i].wrapping_add(init[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs the ChaCha20 keystream starting at `counter` into `data` in
/// place (RFC 8439 §2.4). Encryption and decryption are the same
/// operation.
pub fn xor_stream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = block(key, nonce, counter.wrapping_add(i as u32));
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn test_key() -> [u8; KEY_LEN] {
        let mut k = [0u8; KEY_LEN];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    /// RFC 8439 §2.3.2: the block function with counter 1.
    #[test]
    fn rfc8439_block_known_answer() {
        let nonce: [u8; NONCE_LEN] =
            [0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00];
        let ks = block(&test_key(), &nonce, 1);
        let expected: [u8; BLOCK_LEN] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(ks, expected);
    }

    /// RFC 8439 §2.4.2: the sunscreen plaintext under counter 1.
    #[test]
    fn rfc8439_encryption_known_answer() {
        let nonce: [u8; NONCE_LEN] =
            [0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        xor_stream(&test_key(), &nonce, 1, &mut data);
        let expected: [u8; 114] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81, 0xe9, 0x7e, 0x7a, 0xec, 0x1d, 0x43, 0x60, 0xc2, 0x0a, 0x27, 0xaf, 0xcc,
            0xfd, 0x9f, 0xae, 0x0b, 0xf9, 0x1b, 0x65, 0xc5, 0x52, 0x47, 0x33, 0xab, 0x8f, 0x59,
            0x3d, 0xab, 0xcd, 0x62, 0xb3, 0x57, 0x16, 0x39, 0xd6, 0x24, 0xe6, 0x51, 0x52, 0xab,
            0x8f, 0x53, 0x0c, 0x35, 0x9f, 0x08, 0x61, 0xd8, 0x07, 0xca, 0x0d, 0xbf, 0x50, 0x0d,
            0x6a, 0x61, 0x56, 0xa3, 0x8e, 0x08, 0x8a, 0x22, 0xb6, 0x5e, 0x52, 0xbc, 0x51, 0x4d,
            0x16, 0xcc, 0xf8, 0x06, 0x81, 0x8c, 0xe9, 0x1a, 0xb7, 0x79, 0x37, 0x36, 0x5a, 0xf9,
            0x0b, 0xbf, 0x74, 0xa3, 0x5b, 0xe6, 0xb4, 0x0b, 0x8e, 0xed, 0xf2, 0x78, 0x5e, 0x42,
            0x87, 0x4d,
        ];
        assert_eq!(data.as_slice(), expected.as_slice());
        // Decryption is the same xor.
        xor_stream(&test_key(), &nonce, 1, &mut data);
        assert!(data.starts_with(b"Ladies and Gentlemen"));
    }

    #[test]
    fn distinct_nonces_give_distinct_streams() {
        let key = test_key();
        let n1 = [0u8; NONCE_LEN];
        let mut n2 = n1;
        n2[11] = 1;
        assert_ne!(block(&key, &n1, 0), block(&key, &n2, 0));
        assert_ne!(block(&key, &n1, 0), block(&key, &n1, 1));
    }
}
