//! SHA-256 (FIPS 180-4), hand-rolled.
//!
//! Incremental hashing with a serializable midstate so operators holding a
//! running segment digest can `snapshot`/`restore` mid-segment like every
//! other piece of operator state. Known-answer tests against the FIPS
//! 180-4 example vectors live in this module's test section.
//!
//! Part of the reproduction-grade crypto suite — see the [`crate::crypto`]
//! module caveat; this is a structurally faithful implementation, not an
//! audited production one.

/// Digest length in bytes.
pub const DIGEST_LEN: usize = 32;

/// FIPS 180-4 §4.2.2 round constants.
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// FIPS 180-4 §5.3.3 initial hash value.
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sha256 {
    h: [u32; 8],
    /// Total message bytes absorbed so far.
    len: u64,
    /// Partial block awaiting 64 bytes.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    #[must_use]
    pub fn new() -> Self {
        Self { h: H0, len: 0, buf: [0; 64], buf_len: 0 }
    }

    /// Absorbs `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        self.len = self.len.wrapping_add(bytes.len() as u64);
        let mut input = bytes;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Finishes the hash, consuming nothing (the hasher may keep
    /// absorbing; finalization works on a copy).
    #[must_use]
    pub fn finalize(&self) -> [u8; DIGEST_LEN] {
        let mut tail = self.clone();
        let bit_len = tail.len.wrapping_mul(8);
        tail.update(&[0x80]);
        while tail.buf_len != 56 {
            tail.update(&[0x00]);
        }
        // Length is appended straight into the block: update() must not
        // run (it would recount), so place the 8 bytes by hand.
        tail.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = tail.buf;
        tail.compress(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, w) in tail.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Serializes the midstate (chaining value, length, partial block) so
    /// a running digest can be checkpointed mid-segment.
    pub fn snapshot(&self, buf: &mut Vec<u8>) {
        for w in &self.h {
            buf.extend_from_slice(&w.to_be_bytes());
        }
        buf.extend_from_slice(&self.len.to_be_bytes());
        buf.push(self.buf_len as u8);
        buf.extend_from_slice(&self.buf[..self.buf_len]);
    }

    /// Rebuilds a hasher from [`Sha256::snapshot`] bytes, consuming them
    /// from the front of `bytes`. Returns `None` on malformed input
    /// (fail closed: the caller must discard the segment).
    #[must_use]
    pub fn restore(bytes: &mut &[u8]) -> Option<Self> {
        if bytes.len() < 32 + 8 + 1 {
            return None;
        }
        let mut h = [0u32; 8];
        for (i, w) in h.iter_mut().enumerate() {
            *w = u32::from_be_bytes([
                bytes[i * 4],
                bytes[i * 4 + 1],
                bytes[i * 4 + 2],
                bytes[i * 4 + 3],
            ]);
        }
        let len = u64::from_be_bytes([
            bytes[32], bytes[33], bytes[34], bytes[35], bytes[36], bytes[37], bytes[38], bytes[39],
        ]);
        let buf_len = bytes[40] as usize;
        if buf_len >= 64 || bytes.len() < 41 + buf_len {
            return None;
        }
        let mut buf = [0u8; 64];
        buf[..buf_len].copy_from_slice(&bytes[41..41 + buf_len]);
        *bytes = &bytes[41 + buf_len..];
        Some(Self { h, len, buf, buf_len })
    }

    /// One compression round over a 64-byte block (FIPS 180-4 §6.2.2).
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
        self.h[5] = self.h[5].wrapping_add(f);
        self.h[6] = self.h[6].wrapping_add(g);
        self.h[7] = self.h[7].wrapping_add(h);
    }
}

/// One-shot digest of `bytes`.
#[must_use]
pub fn sha256(bytes: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(bytes);
    h.finalize()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 example vectors (NIST "SHA256 examples" document) plus
    /// the universally published empty-string digest.
    #[test]
    fn fips_180_4_known_answers() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    /// A million 'a's — the FIPS long-message example, fed in uneven
    /// chunks to exercise the buffering paths.
    #[test]
    fn long_message_chunked() {
        let msg = vec![b'a'; 1_000_000];
        let mut h = Sha256::new();
        let mut pos = 0;
        let mut step = 1;
        while pos < msg.len() {
            let end = (pos + step).min(msg.len());
            h.update(&msg[pos..end]);
            pos = end;
            step = step % 977 + 1;
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn chunking_is_invariant() {
        let msg: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let whole = sha256(&msg);
        for chunk in [1usize, 3, 63, 64, 65, 100] {
            let mut h = Sha256::new();
            for c in msg.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn midstate_snapshot_round_trips() {
        let msg: Vec<u8> = (0..300u16).map(|i| (i % 251) as u8).collect();
        for cut in [0usize, 1, 55, 64, 65, 128, 299] {
            let mut h = Sha256::new();
            h.update(&msg[..cut]);
            let mut snap = Vec::new();
            h.snapshot(&mut snap);
            let mut slice = snap.as_slice();
            let mut restored = Sha256::restore(&mut slice).expect("valid snapshot");
            assert!(slice.is_empty(), "snapshot fully consumed");
            restored.update(&msg[cut..]);
            h.update(&msg[cut..]);
            assert_eq!(restored.finalize(), h.finalize(), "cut at {cut}");
            assert_eq!(restored.finalize(), sha256(&msg));
        }
    }

    #[test]
    fn truncated_snapshot_is_refused() {
        let mut h = Sha256::new();
        h.update(b"some bytes");
        let mut snap = Vec::new();
        h.snapshot(&mut snap);
        for cut in 0..snap.len() {
            let mut slice = &snap[..cut];
            assert!(Sha256::restore(&mut slice).is_none(), "cut at {cut} must be refused");
        }
        // An absurd buffered-length byte must also be refused.
        let mut bad = snap.clone();
        bad[40] = 64;
        let mut slice = bad.as_slice();
        assert!(Sha256::restore(&mut slice).is_none());
    }

    #[test]
    fn finalize_does_not_consume() {
        let mut h = Sha256::new();
        h.update(b"abc");
        let first = h.finalize();
        assert_eq!(first, h.finalize(), "finalize must be repeatable");
        h.update(b"def");
        assert_eq!(h.finalize(), sha256(b"abcdef"));
    }
}
