//! Poly1305 one-time authenticator (RFC 8439 §2.5), hand-rolled.
//!
//! The classic 26-bit-limb implementation: the 130-bit accumulator is
//! five 26-bit limbs in `u32`s, with `u64` intermediate products, so the
//! arithmetic is portable and overflow-free. Known-answer test against
//! the RFC 8439 §2.5.2 vector lives in this module's test section.
//!
//! Part of the reproduction-grade crypto suite — see the [`crate::crypto`]
//! module caveat; this is a structurally faithful implementation, not an
//! audited production one.

/// Tag length in bytes.
pub const TAG_LEN: usize = 16;

/// One-time key length in bytes (`r || s`).
pub const KEY_LEN: usize = 32;

fn le32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Computes the Poly1305 tag of `msg` under the one-time `key`.
///
/// The key must never authenticate two different messages; the AEAD
/// construction derives a fresh one per nonce (RFC 8439 §2.6).
#[must_use]
pub fn tag(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    // Clamp r (RFC 8439 §2.5): top bits of some limbs are forced to zero.
    let r0 = le32(&key[0..4]) & 0x03ff_ffff;
    let r1 = (le32(&key[3..7]) >> 2) & 0x03ff_ff03;
    let r2 = (le32(&key[6..10]) >> 4) & 0x03ff_c0ff;
    let r3 = (le32(&key[9..13]) >> 6) & 0x03f0_3fff;
    let r4 = (le32(&key[12..16]) >> 8) & 0x000f_ffff;
    // Pre-multiplied by 5 for the 2^130 ≡ 5 reduction.
    let s1 = r1 * 5;
    let s2 = r2 * 5;
    let s3 = r3 * 5;
    let s4 = r4 * 5;

    let (mut h0, mut h1, mut h2, mut h3, mut h4) = (0u32, 0u32, 0u32, 0u32, 0u32);

    let mut chunks = msg.chunks_exact(16);
    let mut absorb = |block: &[u8; 16], hibit: u32| {
        h0 = h0.wrapping_add(le32(&block[0..4]) & 0x03ff_ffff);
        h1 = h1.wrapping_add((le32(&block[3..7]) >> 2) & 0x03ff_ffff);
        h2 = h2.wrapping_add((le32(&block[6..10]) >> 4) & 0x03ff_ffff);
        h3 = h3.wrapping_add((le32(&block[9..13]) >> 6) & 0x03ff_ffff);
        h4 = h4.wrapping_add((le32(&block[12..16]) >> 8) | hibit);

        let d0 = u64::from(h0) * u64::from(r0)
            + u64::from(h1) * u64::from(s4)
            + u64::from(h2) * u64::from(s3)
            + u64::from(h3) * u64::from(s2)
            + u64::from(h4) * u64::from(s1);
        let mut d1 = u64::from(h0) * u64::from(r1)
            + u64::from(h1) * u64::from(r0)
            + u64::from(h2) * u64::from(s4)
            + u64::from(h3) * u64::from(s3)
            + u64::from(h4) * u64::from(s2);
        let mut d2 = u64::from(h0) * u64::from(r2)
            + u64::from(h1) * u64::from(r1)
            + u64::from(h2) * u64::from(r0)
            + u64::from(h3) * u64::from(s4)
            + u64::from(h4) * u64::from(s3);
        let mut d3 = u64::from(h0) * u64::from(r3)
            + u64::from(h1) * u64::from(r2)
            + u64::from(h2) * u64::from(r1)
            + u64::from(h3) * u64::from(r0)
            + u64::from(h4) * u64::from(s4);
        let mut d4 = u64::from(h0) * u64::from(r4)
            + u64::from(h1) * u64::from(r3)
            + u64::from(h2) * u64::from(r2)
            + u64::from(h3) * u64::from(r1)
            + u64::from(h4) * u64::from(r0);

        let mut c = d0 >> 26;
        h0 = (d0 & 0x03ff_ffff) as u32;
        d1 += c;
        c = d1 >> 26;
        h1 = (d1 & 0x03ff_ffff) as u32;
        d2 += c;
        c = d2 >> 26;
        h2 = (d2 & 0x03ff_ffff) as u32;
        d3 += c;
        c = d3 >> 26;
        h3 = (d3 & 0x03ff_ffff) as u32;
        d4 += c;
        c = d4 >> 26;
        h4 = (d4 & 0x03ff_ffff) as u32;
        h0 = h0.wrapping_add((c as u32) * 5);
        let c2 = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 = h1.wrapping_add(c2);
    };

    for block in chunks.by_ref() {
        let mut b = [0u8; 16];
        b.copy_from_slice(block);
        absorb(&b, 1 << 24);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut b = [0u8; 16];
        b[..rest.len()].copy_from_slice(rest);
        b[rest.len()] = 1; // the padding 1-bit; hibit stays 0
        absorb(&b, 0);
    }

    // Full carry propagation.
    let mut c = h1 >> 26;
    h1 &= 0x03ff_ffff;
    h2 = h2.wrapping_add(c);
    c = h2 >> 26;
    h2 &= 0x03ff_ffff;
    h3 = h3.wrapping_add(c);
    c = h3 >> 26;
    h3 &= 0x03ff_ffff;
    h4 = h4.wrapping_add(c);
    c = h4 >> 26;
    h4 &= 0x03ff_ffff;
    h0 = h0.wrapping_add(c * 5);
    c = h0 >> 26;
    h0 &= 0x03ff_ffff;
    h1 = h1.wrapping_add(c);

    // Compute h + (-p) and constant-select the reduced value.
    let mut g0 = h0.wrapping_add(5);
    c = g0 >> 26;
    g0 &= 0x03ff_ffff;
    let mut g1 = h1.wrapping_add(c);
    c = g1 >> 26;
    g1 &= 0x03ff_ffff;
    let mut g2 = h2.wrapping_add(c);
    c = g2 >> 26;
    g2 &= 0x03ff_ffff;
    let mut g3 = h3.wrapping_add(c);
    c = g3 >> 26;
    g3 &= 0x03ff_ffff;
    let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

    let mask = (g4 >> 31).wrapping_sub(1); // all-ones when h >= p
    h0 = (h0 & !mask) | (g0 & mask);
    h1 = (h1 & !mask) | (g1 & mask);
    h2 = (h2 & !mask) | (g2 & mask);
    h3 = (h3 & !mask) | (g3 & mask);
    h4 = (h4 & !mask) | (g4 & 0x03ff_ffff & mask);

    // Repack to 128 bits and add s modulo 2^128.
    let t0 = u64::from(h0 | (h1 << 26));
    let t1 = u64::from((h1 >> 6) | (h2 << 20));
    let t2 = u64::from((h2 >> 12) | (h3 << 14));
    let t3 = u64::from((h3 >> 18) | (h4 << 8));
    let mut acc = t0.wrapping_add(u64::from(le32(&key[16..20])));
    let b0 = acc as u32;
    acc = (acc >> 32).wrapping_add(t1).wrapping_add(u64::from(le32(&key[20..24])));
    let b1 = acc as u32;
    acc = (acc >> 32).wrapping_add(t2).wrapping_add(u64::from(le32(&key[24..28])));
    let b2 = acc as u32;
    acc = (acc >> 32).wrapping_add(t3).wrapping_add(u64::from(le32(&key[28..32])));
    let b3 = acc as u32;

    let mut out = [0u8; TAG_LEN];
    out[0..4].copy_from_slice(&b0.to_le_bytes());
    out[4..8].copy_from_slice(&b1.to_le_bytes());
    out[8..12].copy_from_slice(&b2.to_le_bytes());
    out[12..16].copy_from_slice(&b3.to_le_bytes());
    out
}

/// Constant-shape tag comparison: XOR-accumulates every byte pair so the
/// comparison does not early-exit on the first mismatch.
#[must_use]
pub fn tags_equal(a: &[u8; TAG_LEN], b: &[u8; TAG_LEN]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    /// RFC 8439 §2.5.2 known-answer vector.
    #[test]
    fn rfc8439_known_answer() {
        let key: [u8; KEY_LEN] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let t = tag(&key, b"Cryptographic Forum Research Group");
        let expected: [u8; TAG_LEN] = [
            0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6, 0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01,
            0x27, 0xa9,
        ];
        assert_eq!(t, expected);
        assert!(tags_equal(&t, &expected));
    }

    #[test]
    fn tag_depends_on_every_byte() {
        let key = [7u8; KEY_LEN];
        let base = tag(&key, b"hello world");
        assert_ne!(base, tag(&key, b"hello worle"));
        let mut other_key = key;
        other_key[0] ^= 1;
        assert_ne!(base, tag(&other_key, b"hello world"));
        assert!(!tags_equal(&base, &tag(&key, b"hello worlf")));
    }

    /// Boundary lengths around the 16-byte block size, cross-checked for
    /// self-consistency (same input, same tag; different input, new tag).
    #[test]
    fn block_boundaries() {
        let key = [3u8; KEY_LEN];
        let msg: Vec<u8> = (0..64u8).collect();
        let mut seen = Vec::new();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 47, 48, 63, 64] {
            let t = tag(&key, &msg[..len]);
            assert_eq!(t, tag(&key, &msg[..len]), "len {len} deterministic");
            assert!(!seen.contains(&t), "len {len} tag must be fresh");
            seen.push(t);
        }
    }
}
