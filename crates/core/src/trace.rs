//! Deterministic causal trace identifiers (sp-trace).
//!
//! Every identifier here is a pure function of *element identity* —
//! tenant, stream, frame sequence, tuple id, or sp-batch timestamp —
//! never a wall clock or a random source. Two processes that observe the
//! same element therefore derive the *same* trace and span ids without
//! coordination, which is what makes span trees recorded by the client,
//! the server ingress loop, the sequential executor, the parallel
//! runner, and a promoted standby mergeable after the fact: merging is
//! set union, and replay after a crash regenerates byte-identical spans.
//!
//! Ids are produced by the SplitMix64 finalizer ([`mix64`]) over salted
//! inputs. The salts keep the id spaces of frames, tuples, sp-batches
//! and checkpoints disjoint, so a tuple with id 7 never collides with
//! the sp stamped at 7 ms.

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation.
///
/// Used for every id derivation in this module; it is a bijection, so
/// distinct inputs always produce distinct ids within one salt space.
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Salt for frame-level trace ids ([`TraceContext::derive`]).
const SALT_FRAME: u64 = 0xF7A3_0000_0000_0001;
/// Salt for tuple-derived trace ids.
const SALT_TUPLE: u64 = 0xF7A3_0000_0000_0002;
/// Salt for sp-batch-derived trace ids.
const SALT_SP: u64 = 0xF7A3_0000_0000_0003;
/// Salt for checkpoint-derived trace ids (replication apply).
const SALT_CKPT: u64 = 0xF7A3_0000_0000_0004;

/// Span sites, in causal order. Each site is one hop of an element's
/// journey; span ids are derived per `(trace, site)` pair so every
/// process names the same hop identically.
pub mod site {
    /// The element crossed the wire into the server's tenant worker.
    pub const WIRE_FRAME: u8 = 0;
    /// The SP Analyzer resolved the sp-batch into a segment policy.
    pub const ANALYZE: u8 = 1;
    /// The Security Shield absorbed the policy (enforcement moment).
    pub const SHIELD_ENFORCE: u8 = 2;
    /// A tuple was released under the governing policy.
    pub const RELEASE: u8 = 3;
    /// A tuple was suppressed under the governing policy.
    pub const SUPPRESS: u8 = 4;
    /// A promoted/standby node applied a replicated checkpoint.
    pub const STANDBY_APPLY: u8 = 5;

    /// Human-readable site name.
    #[must_use]
    pub const fn name(site: u8) -> &'static str {
        match site {
            WIRE_FRAME => "wire_frame",
            ANALYZE => "analyze",
            SHIELD_ENFORCE => "shield_enforce",
            RELEASE => "release",
            SUPPRESS => "suppress",
            STANDBY_APPLY => "standby_apply",
            _ => "unknown",
        }
    }
}

/// The causal context a client attaches to one wire frame
/// ([`crate::wire::Control::Trace`]): which trace the frame belongs to
/// and which client-side span fathered it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id of the frame (derived from tenant + stream + sequence).
    pub trace_id: u64,
    /// The client-side root span the server-side spans hang under.
    pub parent_span: u64,
}

impl TraceContext {
    /// Derives the deterministic context for frame `seq` of a tenant's
    /// stream. Same inputs, same context — on the client, the server,
    /// and any replay.
    #[must_use]
    pub fn derive(tenant: u32, stream: u32, seq: u64) -> Self {
        let trace_id =
            mix64(SALT_FRAME ^ (u64::from(tenant) << 32) ^ u64::from(stream) ^ mix64(seq));
        Self { trace_id, parent_span: mix64(trace_id ^ SALT_FRAME) }
    }
}

/// Trace id of a data tuple, derived from its tuple id.
#[must_use]
pub fn trace_id_for_tuple(tid: u64) -> u64 {
    mix64(SALT_TUPLE ^ tid)
}

/// Trace id of a security punctuation (sp-batch), derived from its
/// stream timestamp — the batch's DDP identity.
#[must_use]
pub fn trace_id_for_sp(ts: u64) -> u64 {
    mix64(SALT_SP ^ ts)
}

/// Trace id of a replicated checkpoint apply, derived from the tenant
/// and the checkpoint epoch.
#[must_use]
pub fn trace_id_for_checkpoint(tenant: u32, epoch: u64) -> u64 {
    mix64(SALT_CKPT ^ (u64::from(tenant) << 48) ^ epoch)
}

/// Deterministic span id for one site of one trace. Every process
/// derives the same id for the same hop, so span trees recorded in
/// different processes link up without coordination.
#[must_use]
pub fn span_id(trace_id: u64, site: u8) -> u64 {
    mix64(trace_id ^ 0x5BD1_E995u64.wrapping_mul(u64::from(site) + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(TraceContext::derive(1, 2, 3), TraceContext::derive(1, 2, 3));
        assert_eq!(trace_id_for_tuple(42), trace_id_for_tuple(42));
        assert_eq!(trace_id_for_sp(42), trace_id_for_sp(42));
        assert_eq!(span_id(7, site::ANALYZE), span_id(7, site::ANALYZE));
    }

    #[test]
    fn salt_spaces_are_disjoint() {
        // Same raw input, different identity kinds: ids must differ.
        for v in [0u64, 1, 42, u64::MAX] {
            assert_ne!(trace_id_for_tuple(v), trace_id_for_sp(v));
            assert_ne!(trace_id_for_sp(v), trace_id_for_checkpoint(0, v));
        }
    }

    #[test]
    fn sites_have_distinct_span_ids() {
        let t = trace_id_for_sp(1000);
        let ids = [
            span_id(t, site::WIRE_FRAME),
            span_id(t, site::ANALYZE),
            span_id(t, site::SHIELD_ENFORCE),
            span_id(t, site::RELEASE),
            span_id(t, site::SUPPRESS),
            span_id(t, site::STANDBY_APPLY),
        ];
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn frame_contexts_differ_by_every_input() {
        let base = TraceContext::derive(1, 1, 0);
        assert_ne!(base, TraceContext::derive(2, 1, 0));
        assert_ne!(base, TraceContext::derive(1, 2, 0));
        assert_ne!(base, TraceContext::derive(1, 1, 1));
    }

    #[test]
    fn site_names_cover_all_sites() {
        for s in 0..=5u8 {
            assert_ne!(site::name(s), "unknown");
        }
        assert_eq!(site::name(99), "unknown");
    }
}
