//! Security punctuations (§III).
//!
//! A security punctuation (sp) is stream meta-data of the form
//! `<DDP | SRP | Sign | Immutable | ts>` (Definition 3.1):
//!
//! * the **Data Description Part** says which objects the policy governs —
//!   three patterns over stream names, tuple identifiers and attribute
//!   names;
//! * the **Security Restriction Part** names the access-control model and
//!   the authorized roles — a pattern over role names or an explicit role
//!   set;
//! * the **Sign** makes the authorization positive (grant) or negative
//!   (deny);
//! * **Immutable** forbids combining with server-side policies;
//! * **ts** is the instant the policy goes into effect. All sps of one
//!   *sp-batch* share a timestamp and are interpreted as a single policy.
//!
//! Sps always precede the tuples they govern; the tuples up to the next
//! batch form the *s-punctuated segment* of the policy.

use std::fmt;
use std::sync::Arc;

use bytes::{Buf, BufMut};
use sp_pattern::Pattern;

use crate::ids::Timestamp;
use crate::policy::{Policy, Sign};
use crate::rbac::{AccessModel, RoleCatalog};
use crate::roleset::RoleSet;
use crate::schema::Schema;
use crate::tuple::Tuple;

/// The Data Description Part: which objects the policy applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataDescription {
    /// Pattern over stream names (`e_s`).
    pub stream: Pattern,
    /// Pattern over tuple identifiers (`e_t`).
    pub tuple: Pattern,
    /// Pattern over attribute names (`e_a`); `*` means the whole tuple.
    pub attrs: Pattern,
}

impl DataDescription {
    /// Governs every object of every stream.
    #[must_use]
    pub fn everything() -> Self {
        Self {
            stream: Pattern::match_all(),
            tuple: Pattern::match_all(),
            attrs: Pattern::match_all(),
        }
    }

    /// Governs all tuples of the named stream.
    #[must_use]
    pub fn stream(name: &str) -> Self {
        Self { stream: Pattern::literal(name), ..Self::everything() }
    }

    /// Governs tuples with ids in `lo..=hi` on any stream.
    #[must_use]
    pub fn tuple_range(lo: u64, hi: u64) -> Self {
        Self { tuple: Pattern::numeric_range(lo, hi), ..Self::everything() }
    }

    /// True if this description is tuple-granularity (covers all attributes).
    #[must_use]
    pub fn covers_whole_tuple(&self) -> bool {
        self.attrs.is_match_all()
    }
}

/// The Security Restriction Part: model type and authorized subjects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityRestriction {
    /// The access-control model the roles belong to.
    pub model: AccessModel,
    /// The authorized roles.
    pub roles: RoleSpec,
}

/// Roles named either explicitly (already-resolved bitmap — the compact
/// network form) or by a pattern over role names (`e_r`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoleSpec {
    /// An explicit, pre-resolved role set.
    Explicit(RoleSet),
    /// A pattern resolved against the role catalog at ingestion.
    Pattern(Pattern),
}

impl SecurityRestriction {
    /// RBAC restriction with explicit roles.
    #[must_use]
    pub fn roles(set: RoleSet) -> Self {
        Self { model: AccessModel::Rbac, roles: RoleSpec::Explicit(set) }
    }

    /// RBAC restriction from a role-name pattern.
    #[must_use]
    pub fn role_pattern(p: Pattern) -> Self {
        Self { model: AccessModel::Rbac, roles: RoleSpec::Pattern(p) }
    }

    /// Resolves the authorized roles against a catalog.
    #[must_use]
    pub fn resolve(&self, catalog: &RoleCatalog) -> RoleSet {
        match &self.roles {
            RoleSpec::Explicit(set) => set.clone(),
            RoleSpec::Pattern(p) => catalog.resolve_roles(p),
        }
    }
}

/// A security punctuation (Definition 3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityPunctuation {
    /// Which objects the policy governs.
    pub ddp: DataDescription,
    /// Who is (de)authorized.
    pub srp: SecurityRestriction,
    /// Grant or deny.
    pub sign: Sign,
    /// If true, server policies may not refine this one.
    pub immutable: bool,
    /// When the policy goes into effect.
    pub ts: Timestamp,
}

impl SecurityPunctuation {
    /// A positive, mutable, tuple-granularity sp authorizing `roles` for all
    /// tuples of every stream — the most common shape in the experiments.
    #[must_use]
    pub fn grant_all(roles: RoleSet, ts: Timestamp) -> Self {
        Self {
            ddp: DataDescription::everything(),
            srp: SecurityRestriction::roles(roles),
            sign: Sign::Positive,
            immutable: false,
            ts,
        }
    }

    /// Builder-style: sets the data description.
    #[must_use]
    pub fn with_ddp(mut self, ddp: DataDescription) -> Self {
        self.ddp = ddp;
        self
    }

    /// Builder-style: makes the sp a denial.
    #[must_use]
    pub fn negative(mut self) -> Self {
        self.sign = Sign::Negative;
        self
    }

    /// Builder-style: marks the sp immutable.
    #[must_use]
    pub fn immutable(mut self) -> Self {
        self.immutable = true;
        self
    }

    /// The paper's `match()`: does this sp govern the given tuple?
    ///
    /// The stream pattern is tested against the schema's stream name and the
    /// tuple pattern against the tuple id (numeric fast path — no
    /// allocation for range or match-all patterns).
    #[must_use]
    pub fn matches_tuple(&self, tuple: &Tuple, schema: &Schema) -> bool {
        self.ddp.tuple.matches_u64(tuple.tid.raw()) && self.ddp.stream.matches(schema.name())
    }

    /// Does this sp govern the named stream at all?
    #[must_use]
    pub fn matches_stream(&self, stream_name: &str) -> bool {
        self.ddp.stream.matches(stream_name)
    }

    /// The attribute indices of `schema` governed by this sp, or `None`
    /// if it covers the whole tuple.
    #[must_use]
    pub fn governed_attrs(&self, schema: &Schema) -> Option<Vec<u16>> {
        if self.ddp.covers_whole_tuple() {
            return None;
        }
        Some(
            schema
                .fields()
                .iter()
                .enumerate()
                .filter(|(_, f)| self.ddp.attrs.matches(&f.name))
                .map(|(i, _)| i as u16)
                .collect(),
        )
    }

    /// Applies this sp to a policy under construction (one step of
    /// sp-batch combination).
    pub fn apply_to(&self, policy: &mut Policy, catalog: &RoleCatalog, schema: &Schema) {
        let roles = self.srp.resolve(catalog);
        policy.immutable |= self.immutable;
        policy.ts = policy.ts.max(self.ts);
        match (self.sign, self.governed_attrs(schema)) {
            (Sign::Positive, None) => policy.grant(&roles),
            (Sign::Negative, None) => policy.revoke(&roles),
            (Sign::Positive, Some(attrs)) => {
                for a in attrs {
                    policy.grant_attr(a, &roles);
                }
            }
            (Sign::Negative, Some(attrs)) => {
                for a in attrs {
                    policy.revoke_attr(a, &roles);
                }
            }
        }
    }

    /// Approximate heap footprint in bytes (memory experiments). Explicit
    /// role sets dominate; pattern sources are counted by length.
    #[must_use]
    pub fn mem_bytes(&self) -> usize {
        let roles = match &self.srp.roles {
            RoleSpec::Explicit(set) => set.mem_bytes(),
            RoleSpec::Pattern(p) => p.source().len(),
        };
        std::mem::size_of::<SecurityPunctuation>()
            + self.ddp.stream.source().len()
            + self.ddp.tuple.source().len()
            + self.ddp.attrs.source().len()
            + roles
    }

    /// Encodes the sp into the compact wire form that data providers ship
    /// inside network messages (§I: "policies can be encoded into a compact
    /// format, and in most cases can be included into the same network
    /// message with the data").
    pub fn encode(&self, buf: &mut impl BufMut) {
        fn put_str(buf: &mut impl BufMut, s: &str) {
            buf.put_u16(s.len() as u16);
            buf.put_slice(s.as_bytes());
        }
        buf.put_u64(self.ts.millis());
        let mut flags = 0u8;
        if self.sign == Sign::Negative {
            flags |= 1;
        }
        if self.immutable {
            flags |= 2;
        }
        buf.put_u8(flags);
        buf.put_u8(match self.srp.model {
            AccessModel::Rbac => 0,
            AccessModel::Dac => 1,
            AccessModel::Mac => 2,
        });
        put_str(buf, self.ddp.stream.source());
        put_str(buf, self.ddp.tuple.source());
        put_str(buf, self.ddp.attrs.source());
        match &self.srp.roles {
            RoleSpec::Explicit(set) => {
                buf.put_u8(0);
                let roles: Vec<u32> = set.iter().map(|r| r.0).collect();
                buf.put_u16(roles.len() as u16);
                for r in roles {
                    buf.put_u32(r);
                }
            }
            RoleSpec::Pattern(p) => {
                buf.put_u8(1);
                put_str(buf, p.source());
            }
        }
    }

    /// Decodes an sp from its wire form.
    ///
    /// # Errors
    ///
    /// Returns a message describing truncation or pattern syntax errors.
    pub fn decode(buf: &mut impl Buf) -> Result<Self, String> {
        fn get_str(buf: &mut impl Buf) -> Result<String, String> {
            if buf.remaining() < 2 {
                return Err("truncated sp: missing string length".into());
            }
            let len = buf.get_u16() as usize;
            if buf.remaining() < len {
                return Err("truncated sp: missing string body".into());
            }
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            String::from_utf8(bytes).map_err(|e| format!("invalid UTF-8 in sp: {e}"))
        }
        fn pat(src: &str) -> Result<Pattern, String> {
            Pattern::compile(src).map_err(|e| e.to_string())
        }
        if buf.remaining() < 10 {
            return Err("truncated sp: missing header".into());
        }
        let ts = Timestamp(buf.get_u64());
        let flags = buf.get_u8();
        let model = match buf.get_u8() {
            0 => AccessModel::Rbac,
            1 => AccessModel::Dac,
            2 => AccessModel::Mac,
            other => return Err(format!("unknown access model tag {other}")),
        };
        let stream = pat(&get_str(buf)?)?;
        let tuple = pat(&get_str(buf)?)?;
        let attrs = pat(&get_str(buf)?)?;
        if buf.remaining() < 1 {
            return Err("truncated sp: missing role spec".into());
        }
        let roles = match buf.get_u8() {
            0 => {
                if buf.remaining() < 2 {
                    return Err("truncated sp: missing role count".into());
                }
                let n = buf.get_u16() as usize;
                if buf.remaining() < n * 4 {
                    return Err("truncated sp: missing role ids".into());
                }
                let mut set = RoleSet::new();
                for _ in 0..n {
                    set.insert(crate::ids::RoleId(buf.get_u32()));
                }
                RoleSpec::Explicit(set)
            }
            1 => RoleSpec::Pattern(pat(&get_str(buf)?)?),
            other => return Err(format!("unknown role spec tag {other}")),
        };
        Ok(Self {
            ddp: DataDescription { stream, tuple, attrs },
            srp: SecurityRestriction { model, roles },
            sign: if flags & 1 != 0 { Sign::Negative } else { Sign::Positive },
            immutable: flags & 2 != 0,
            ts,
        })
    }
}

impl fmt::Display for SecurityPunctuation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let roles = match &self.srp.roles {
            RoleSpec::Explicit(set) => set.to_string(),
            RoleSpec::Pattern(p) => p.to_string(),
        };
        write!(
            f,
            "<({},{},{}) | {}:{} | {} | {} | {}>",
            self.ddp.stream,
            self.ddp.tuple,
            self.ddp.attrs,
            self.srp.model,
            roles,
            self.sign,
            if self.immutable { "T" } else { "F" },
            self.ts
        )
    }
}

/// Combines one **sp-batch** (consecutive sps with equal timestamps,
/// §III-A) into the single [`Policy`] it denotes, using `union()`
/// semantics for positive sps and revocation for negative ones.
#[must_use]
pub fn combine_batch(
    batch: &[Arc<SecurityPunctuation>],
    catalog: &RoleCatalog,
    schema: &Schema,
) -> Policy {
    let ts = batch.first().map_or(Timestamp::ZERO, |sp| sp.ts);
    debug_assert!(batch.iter().all(|sp| sp.ts == ts), "an sp-batch shares one timestamp");
    let mut policy = Policy::deny_all(ts);
    // Positive grants first, then negative revocations: within one policy a
    // denial wins regardless of the order the sps were listed in.
    for sp in batch.iter().filter(|sp| sp.sign == Sign::Positive) {
        sp.apply_to(&mut policy, catalog, schema);
    }
    for sp in batch.iter().filter(|sp| sp.sign == Sign::Negative) {
        sp.apply_to(&mut policy, catalog, schema);
    }
    policy
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::ids::{RoleId, StreamId, TupleId};
    use crate::value::{Value, ValueType};

    fn catalog() -> RoleCatalog {
        let mut c = RoleCatalog::new();
        for r in ["cardiologist", "doctor", "nurse_on_duty", "insurance"] {
            c.register_role(r).unwrap();
        }
        c
    }

    fn schema() -> Arc<Schema> {
        Schema::of(
            "HeartRate",
            &[("Patient_id", ValueType::Int), ("Beats_per_min", ValueType::Int)],
        )
    }

    fn tuple(tid: u64) -> Tuple {
        Tuple::new(
            StreamId(1),
            TupleId(tid),
            Timestamp(100),
            vec![Value::Int(tid as i64), Value::Int(70)],
        )
    }

    #[test]
    fn stream_level_policy_matches() {
        // "Only queries registered by a cardiologist can query HeartRate."
        let sp = SecurityPunctuation::grant_all(RoleSet::single(RoleId(0)), Timestamp(1))
            .with_ddp(DataDescription::stream("HeartRate"));
        assert!(sp.matches_tuple(&tuple(120), &schema()));
        assert!(!sp.matches_stream("BodyTemperature"));
        assert!(sp.governed_attrs(&schema()).is_none());
    }

    #[test]
    fn tuple_level_policy_matches_id_range() {
        // "Only GP can access tuples of patients with ids 120-133."
        let sp = SecurityPunctuation::grant_all(RoleSet::single(RoleId(1)), Timestamp(1))
            .with_ddp(DataDescription::tuple_range(120, 133));
        assert!(sp.matches_tuple(&tuple(120), &schema()));
        assert!(sp.matches_tuple(&tuple(133), &schema()));
        assert!(!sp.matches_tuple(&tuple(134), &schema()));
    }

    #[test]
    fn attribute_level_policy_selects_attrs() {
        // "Only a doctor or nurse-on-duty can query the heart beat."
        let sp = SecurityPunctuation::grant_all(RoleSet::from([1, 2]), Timestamp(1)).with_ddp(
            DataDescription {
                attrs: Pattern::compile("Beats_per_min|Temperature").unwrap(),
                ..DataDescription::everything()
            },
        );
        assert_eq!(sp.governed_attrs(&schema()), Some(vec![1]));
    }

    #[test]
    fn batch_combination_unions_grants() {
        let c = catalog();
        let s = schema();
        let batch = vec![
            Arc::new(SecurityPunctuation::grant_all(RoleSet::single(RoleId(0)), Timestamp(5))),
            Arc::new(SecurityPunctuation::grant_all(RoleSet::single(RoleId(1)), Timestamp(5))),
        ];
        let p = combine_batch(&batch, &c, &s);
        assert!(p.allows(&RoleSet::single(RoleId(0))));
        assert!(p.allows(&RoleSet::single(RoleId(1))));
        assert!(!p.allows(&RoleSet::single(RoleId(3))));
        assert_eq!(p.ts, Timestamp(5));
    }

    #[test]
    fn negative_sp_wins_within_batch_regardless_of_order() {
        let c = catalog();
        let s = schema();
        let deny_first = vec![
            Arc::new(
                SecurityPunctuation::grant_all(RoleSet::single(RoleId(1)), Timestamp(5)).negative(),
            ),
            Arc::new(SecurityPunctuation::grant_all(RoleSet::from([0, 1]), Timestamp(5))),
        ];
        let p = combine_batch(&deny_first, &c, &s);
        assert!(p.allows(&RoleSet::single(RoleId(0))));
        assert!(!p.allows(&RoleSet::single(RoleId(1))), "denial wins");
    }

    #[test]
    fn role_pattern_resolution_in_batch() {
        let c = catalog();
        let s = schema();
        let sp = SecurityPunctuation {
            ddp: DataDescription::everything(),
            srp: SecurityRestriction::role_pattern(
                Pattern::compile("doctor|nurse_on_duty").unwrap(),
            ),
            sign: Sign::Positive,
            immutable: false,
            ts: Timestamp(2),
        };
        let p = combine_batch(&[Arc::new(sp)], &c, &s);
        assert!(p.allows(&RoleSet::single(c.lookup_role("doctor").unwrap())));
        assert!(p.allows(&RoleSet::single(c.lookup_role("nurse_on_duty").unwrap())));
        assert!(!p.allows(&RoleSet::single(c.lookup_role("insurance").unwrap())));
    }

    #[test]
    fn attribute_batch_yields_attr_grants() {
        let c = catalog();
        let s = schema();
        let sp = SecurityPunctuation::grant_all(RoleSet::single(RoleId(2)), Timestamp(1)).with_ddp(
            DataDescription {
                attrs: Pattern::literal("Beats_per_min"),
                ..DataDescription::everything()
            },
        );
        let p = combine_batch(&[Arc::new(sp)], &c, &s);
        assert!(!p.allows(&RoleSet::single(RoleId(2))));
        assert!(p.allows_attr(1, &RoleSet::single(RoleId(2))));
        assert!(!p.allows_attr(0, &RoleSet::single(RoleId(2))));
    }

    #[test]
    fn immutable_flag_propagates() {
        let c = catalog();
        let s = schema();
        let sp =
            SecurityPunctuation::grant_all(RoleSet::single(RoleId(0)), Timestamp(1)).immutable();
        let p = combine_batch(&[Arc::new(sp)], &c, &s);
        assert!(p.immutable);
    }

    #[test]
    fn wire_round_trip_explicit_roles() {
        let sp = SecurityPunctuation::grant_all(RoleSet::from([0, 3, 77]), Timestamp(42))
            .with_ddp(DataDescription::tuple_range(10, 20))
            .negative()
            .immutable();
        let mut buf = Vec::new();
        sp.encode(&mut buf);
        let decoded = SecurityPunctuation::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, sp);
    }

    #[test]
    fn wire_round_trip_pattern_roles() {
        let sp = SecurityPunctuation {
            ddp: DataDescription::stream("HeartRate"),
            srp: SecurityRestriction::role_pattern(Pattern::compile("doc.*|nurse.*").unwrap()),
            sign: Sign::Positive,
            immutable: false,
            ts: Timestamp(7),
        };
        let mut buf = Vec::new();
        sp.encode(&mut buf);
        let decoded = SecurityPunctuation::decode(&mut buf.as_slice()).unwrap();
        assert_eq!(decoded, sp);
    }

    #[test]
    fn wire_is_compact() {
        // A tuple-range sp with a handful of roles fits in well under 100
        // bytes — small enough to ride in the same network message as data.
        let sp = SecurityPunctuation::grant_all(RoleSet::from([1, 2, 3]), Timestamp(1))
            .with_ddp(DataDescription::tuple_range(100, 200));
        let mut buf = Vec::new();
        sp.encode(&mut buf);
        assert!(buf.len() < 100, "wire size {} too large", buf.len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(SecurityPunctuation::decode(&mut &b"xx"[..]).is_err());
        let mut buf = Vec::new();
        SecurityPunctuation::grant_all(RoleSet::new(), Timestamp(0)).encode(&mut buf);
        buf.truncate(buf.len() - 1);
        assert!(SecurityPunctuation::decode(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn display_matches_paper_layout() {
        let sp = SecurityPunctuation::grant_all(RoleSet::single(RoleId(0)), Timestamp(9));
        let s = sp.to_string();
        assert!(s.starts_with("<(*,*,*) | RBAC:{r0} | + | F | 9ms>"), "{s}");
    }
}
