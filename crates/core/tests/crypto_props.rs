//! AEAD hardening properties for the vendored ChaCha20-Poly1305
//! construction: `open ∘ seal` is the identity, and **any** single-bit
//! flip — in the ciphertext, the tag, the nonce, the AAD, or the key —
//! makes authentication fail. Truncation at every length fails too.
//!
//! These are the properties the crypto-enforced mechanism's fail-closed
//! guarantees rest on; the known-answer vectors live in the unit tests
//! of `sp_core::crypto`.

#![allow(clippy::expect_used)]

use proptest::prelude::*;
use sp_core::crypto::{open, seal, KEY_LEN, NONCE_LEN, TAG_LEN};

fn arb_key() -> impl Strategy<Value = [u8; KEY_LEN]> {
    prop::collection::vec(any::<u8>(), KEY_LEN..KEY_LEN + 1).prop_map(|v| {
        let mut k = [0u8; KEY_LEN];
        k.copy_from_slice(&v);
        k
    })
}

fn arb_nonce() -> impl Strategy<Value = [u8; NONCE_LEN]> {
    prop::collection::vec(any::<u8>(), NONCE_LEN..NONCE_LEN + 1).prop_map(|v| {
        let mut n = [0u8; NONCE_LEN];
        n.copy_from_slice(&v);
        n
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip: whatever was sealed opens back, byte-exact.
    #[test]
    fn open_inverts_seal(
        key in arb_key(),
        nonce in arb_nonce(),
        aad in prop::collection::vec(any::<u8>(), 0..48),
        plaintext in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let sealed = seal(&key, &nonce, &aad, &plaintext);
        prop_assert_eq!(sealed.len(), plaintext.len() + TAG_LEN);
        let opened = open(&key, &nonce, &aad, &sealed).expect("clean ciphertext opens");
        prop_assert_eq!(opened, plaintext);
    }

    /// Any single-bit flip anywhere in the sealed blob (ciphertext or
    /// tag) fails authentication — no partial plaintext ever escapes.
    #[test]
    fn any_sealed_bit_flip_fails_auth(
        key in arb_key(),
        nonce in arb_nonce(),
        aad in prop::collection::vec(any::<u8>(), 0..32),
        plaintext in prop::collection::vec(any::<u8>(), 0..128),
        pos_ratio in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut sealed = seal(&key, &nonce, &aad, &plaintext);
        let pos = ((sealed.len() as f64 - 1.0) * pos_ratio) as usize;
        sealed[pos] ^= 1 << bit;
        prop_assert!(open(&key, &nonce, &aad, &sealed).is_none());
    }

    /// A flipped nonce bit fails authentication.
    #[test]
    fn any_nonce_bit_flip_fails_auth(
        key in arb_key(),
        nonce in arb_nonce(),
        aad in prop::collection::vec(any::<u8>(), 0..32),
        plaintext in prop::collection::vec(any::<u8>(), 0..128),
        pos in 0usize..NONCE_LEN,
        bit in 0u8..8,
    ) {
        let sealed = seal(&key, &nonce, &aad, &plaintext);
        let mut bad = nonce;
        bad[pos] ^= 1 << bit;
        prop_assert!(open(&key, &bad, &aad, &sealed).is_none());
    }

    /// A flipped AAD bit fails authentication (position binding).
    #[test]
    fn any_aad_bit_flip_fails_auth(
        key in arb_key(),
        nonce in arb_nonce(),
        aad in prop::collection::vec(any::<u8>(), 1..32),
        plaintext in prop::collection::vec(any::<u8>(), 0..128),
        pos_ratio in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let sealed = seal(&key, &nonce, &aad, &plaintext);
        let mut bad = aad.clone();
        let pos = ((bad.len() as f64 - 1.0) * pos_ratio) as usize;
        bad[pos] ^= 1 << bit;
        prop_assert!(open(&key, &nonce, &bad, &sealed).is_none());
    }

    /// A flipped key bit fails authentication (wrong role, no tuple).
    #[test]
    fn any_key_bit_flip_fails_auth(
        key in arb_key(),
        nonce in arb_nonce(),
        aad in prop::collection::vec(any::<u8>(), 0..32),
        plaintext in prop::collection::vec(any::<u8>(), 0..128),
        pos in 0usize..KEY_LEN,
        bit in 0u8..8,
    ) {
        let sealed = seal(&key, &nonce, &aad, &plaintext);
        let mut bad = key;
        bad[pos] ^= 1 << bit;
        prop_assert!(open(&bad, &nonce, &aad, &sealed).is_none());
    }

    /// Truncating the sealed blob at any length fails closed — including
    /// below the tag length, which must not panic.
    #[test]
    fn truncation_fails_auth_at_every_length(
        key in arb_key(),
        nonce in arb_nonce(),
        aad in prop::collection::vec(any::<u8>(), 0..32),
        plaintext in prop::collection::vec(any::<u8>(), 1..64),
        cut_ratio in 0.0f64..1.0,
    ) {
        let sealed = seal(&key, &nonce, &aad, &plaintext);
        let cut = ((sealed.len() as f64 - 1.0) * cut_ratio) as usize;
        prop_assert!(open(&key, &nonce, &aad, &sealed[..cut]).is_none());
    }
}
