//! Property tests for the core data model.
//!
//! * `RoleSet` bitmap algebra is checked against `BTreeSet<u32>` semantics.
//! * `Policy` combination laws (union/intersect monotonicity, override) are
//!   checked on random role sets.
//! * Punctuation wire encoding round-trips.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use sp_core::{
    combine_batch, DataDescription, Policy, RoleCatalog, RoleId, RoleSet, Schema,
    SecurityPunctuation, Timestamp, ValueType,
};

fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..320, 0..24)
}

fn to_roleset(ids: &[u32]) -> RoleSet {
    ids.iter().map(|&i| RoleId(i)).collect()
}

fn to_btree(ids: &[u32]) -> BTreeSet<u32> {
    ids.iter().copied().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roleset_matches_btreeset(a in arb_ids(), b in arb_ids()) {
        let (ra, rb) = (to_roleset(&a), to_roleset(&b));
        let (ba, bb) = (to_btree(&a), to_btree(&b));

        prop_assert_eq!(ra.len(), ba.len());
        prop_assert_eq!(ra.is_empty(), ba.is_empty());
        prop_assert_eq!(
            ra.union(&rb).iter().map(|r| r.raw()).collect::<Vec<_>>(),
            ba.union(&bb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            ra.intersect(&rb).iter().map(|r| r.raw()).collect::<Vec<_>>(),
            ba.intersection(&bb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            ra.minus(&rb).iter().map(|r| r.raw()).collect::<Vec<_>>(),
            ba.difference(&bb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(ra.intersects(&rb), !ba.is_disjoint(&bb));
        prop_assert_eq!(ra.is_subset(&rb), ba.is_subset(&bb));
        prop_assert_eq!(ra.first().map(|r| r.raw()), ba.first().copied());
    }

    #[test]
    fn roleset_equality_is_semantic(a in arb_ids()) {
        // Building the same set in different insertion orders, or with
        // removed high bits, yields equal values with equal hashes.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn hash_of(s: &RoleSet) -> u64 {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        }
        let fwd = to_roleset(&a);
        let mut rev: RoleSet = a.iter().rev().map(|&i| RoleId(i)).collect();
        rev.insert(RoleId(400));
        rev.remove(RoleId(400));
        prop_assert_eq!(&fwd, &rev);
        prop_assert_eq!(hash_of(&fwd), hash_of(&rev));
    }

    #[test]
    fn policy_union_is_monotone(a in arb_ids(), b in arb_ids(), probe in arb_ids()) {
        let pa = Policy::tuple_level(to_roleset(&a), Timestamp(1));
        let pb = Policy::tuple_level(to_roleset(&b), Timestamp(1));
        let u = pa.union(&pb);
        let probe = to_roleset(&probe);
        // union grants at least what either granted
        prop_assert!(!pa.allows(&probe) || u.allows(&probe));
        prop_assert!(!pb.allows(&probe) || u.allows(&probe));
        // and nothing more than their sum
        prop_assert_eq!(u.allows(&probe), pa.allows(&probe) || pb.allows(&probe));
    }

    #[test]
    fn policy_intersect_never_broadens(a in arb_ids(), b in arb_ids(), probe in arb_ids()) {
        let pa = Policy::tuple_level(to_roleset(&a), Timestamp(1));
        let pb = Policy::tuple_level(to_roleset(&b), Timestamp(1));
        let c = pa.intersect(&pb);
        let probe = to_roleset(&probe);
        prop_assert!(!c.allows(&probe) || pa.allows(&probe));
        // For pure tuple-level policies intersection is exact.
        prop_assert_eq!(
            c.allows(&probe),
            to_btree(&a).intersection(&to_btree(&b)).any(|r| probe.contains(RoleId(*r)))
        );
    }

    #[test]
    fn policy_override_picks_newer(a in arb_ids(), b in arb_ids(), ta in 0u64..10, tb in 0u64..10) {
        let pa = Policy::tuple_level(to_roleset(&a), Timestamp(ta));
        let pb = Policy::tuple_level(to_roleset(&b), Timestamp(tb));
        let o = pa.override_with(&pb);
        if tb > ta {
            prop_assert_eq!(o, pb);
        } else {
            prop_assert_eq!(o, pa);
        }
    }

    #[test]
    fn punctuation_wire_round_trip(
        roles in arb_ids(),
        lo in 0u64..1000,
        span in 0u64..1000,
        ts in 0u64..u64::MAX,
        negative: bool,
        immutable: bool,
    ) {
        let mut sp = SecurityPunctuation::grant_all(to_roleset(&roles), Timestamp(ts))
            .with_ddp(DataDescription::tuple_range(lo, lo + span));
        if negative {
            sp = sp.negative();
        }
        if immutable {
            sp = sp.immutable();
        }
        let mut buf = Vec::new();
        sp.encode(&mut buf);
        let decoded = SecurityPunctuation::decode(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(decoded, sp);
    }

    /// Batch combination is insensitive to the order of same-sign sps.
    #[test]
    fn batch_combination_is_order_insensitive(
        sets in prop::collection::vec(arb_ids(), 1..5),
        probe in arb_ids(),
    ) {
        let catalog = RoleCatalog::new();
        let schema = Schema::of("s", &[("a", ValueType::Int)]);
        let batch: Vec<_> = sets
            .iter()
            .map(|ids| Arc::new(SecurityPunctuation::grant_all(to_roleset(ids), Timestamp(1))))
            .collect();
        let mut reversed = batch.clone();
        reversed.reverse();
        let p1 = combine_batch(&batch, &catalog, &schema);
        let p2 = combine_batch(&reversed, &catalog, &schema);
        prop_assert_eq!(&p1, &p2);
        let probe = to_roleset(&probe);
        let expect = sets.iter().any(|ids| to_roleset(ids).intersects(&probe));
        prop_assert_eq!(p1.allows(&probe), expect);
    }
}
