//! Wire-decoder hardening properties: `Message::decode` and
//! [`FrameDecoder`] must never panic, must round-trip clean frames
//! exactly, and must resynchronize past corruption without ever producing
//! a frame that was not sent (CRC-32 protects every body).

use proptest::prelude::*;
use sp_core::wire::{FrameDecoder, Message};
use sp_core::{
    RoleId, RoleSet, SecurityPunctuation, StreamElement, StreamId, Timestamp, Tuple, TupleId, Value,
};

fn arb_element() -> impl Strategy<Value = StreamElement> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), prop::collection::vec(any::<i64>(), 0..4)).prop_map(
            |(tid, ts, vals)| {
                StreamElement::tuple(Tuple::new(
                    StreamId(1),
                    TupleId(tid),
                    Timestamp(ts),
                    vals.into_iter().map(Value::Int).collect::<Vec<_>>(),
                ))
            }
        ),
        (prop::collection::vec(0u32..64, 0..6), any::<u64>()).prop_map(|(roles, ts)| {
            StreamElement::punctuation(SecurityPunctuation::grant_all(
                roles.into_iter().map(RoleId).collect::<RoleSet>(),
                Timestamp(ts),
            ))
        }),
    ]
}

/// A few frames, each tagged with a distinct stream id so decoded frames
/// can be matched back to what was sent.
fn arb_frames() -> impl Strategy<Value = Vec<Message>> {
    prop::collection::vec(prop::collection::vec(arb_element(), 0..6), 1..6).prop_map(|batches| {
        batches
            .into_iter()
            .enumerate()
            .map(|(i, elems)| Message::new(StreamId(i as u32), elems))
            .collect()
    })
}

fn encode_all(frames: &[Message]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for f in frames {
        f.encode(&mut bytes);
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Clean input: every frame decodes back, in order, with no losses.
    #[test]
    fn clean_streams_round_trip(frames in arb_frames()) {
        let bytes = encode_all(&frames);
        let mut dec = FrameDecoder::new();
        let decoded = dec.decode_stream(&bytes);
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(dec.corrupted_frames, 0);
        prop_assert_eq!(dec.skipped_bytes, 0);
    }

    /// Any single bit flip anywhere in the stream: no panic, and every
    /// decoded frame is one that was actually sent — corruption may lose
    /// frames but must never fabricate or alter one.
    #[test]
    fn single_bit_flip_never_fabricates_frames(
        frames in arb_frames(),
        pos_ratio in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_all(&frames);
        let pos = ((bytes.len() as f64 - 1.0) * pos_ratio) as usize;
        bytes[pos] ^= 1 << bit;
        let mut dec = FrameDecoder::new();
        let decoded = dec.decode_stream(&bytes);
        prop_assert!(decoded.len() <= frames.len());
        for d in &decoded {
            prop_assert!(frames.contains(d), "decoder fabricated a frame");
        }
        // At most one frame is hit by one flipped bit.
        prop_assert!(decoded.len() + 1 >= frames.len());
    }

    /// Truncation at any point yields a clean prefix, never a panic.
    #[test]
    fn truncation_yields_prefix(frames in arb_frames(), cut_ratio in 0.0f64..1.0) {
        let bytes = encode_all(&frames);
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        let mut dec = FrameDecoder::new();
        let decoded = dec.decode_stream(&bytes[..cut]);
        prop_assert!(decoded.len() <= frames.len());
        prop_assert_eq!(&decoded[..], &frames[..decoded.len()], "prefix property");
    }

    /// Arbitrary byte soup never panics the decoder, and everything not
    /// decoded is accounted for in `skipped_bytes`.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = FrameDecoder::new();
        let decoded = dec.decode_stream(&bytes);
        // Random bytes essentially never satisfy a CRC-32 check.
        prop_assert!(decoded.is_empty());
        prop_assert_eq!(dec.skipped_bytes as usize, bytes.len());
    }

    /// Garbage *between* valid frames: both frames still decode.
    #[test]
    fn interleaved_garbage_is_skipped(
        frames in arb_frames(),
        garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&garbage);
            f.encode(&mut bytes);
        }
        let mut dec = FrameDecoder::new();
        let decoded = dec.decode_stream(&bytes);
        prop_assert_eq!(&decoded, &frames);
    }
}
