//! Wire-decoder hardening properties: `Message::decode` and
//! [`FrameDecoder`] must never panic, must round-trip clean frames
//! exactly, and must resynchronize past corruption without ever producing
//! a frame that was not sent (CRC-32 protects every body).

#![allow(clippy::expect_used)]

use proptest::prelude::*;
use sp_core::wire::{Control, FrameDecoder, Message, StreamDecoder, WireFrame};
use sp_core::{
    RoleId, RoleSet, SecurityPunctuation, StreamElement, StreamId, Timestamp, Tuple, TupleId, Value,
};

fn arb_element() -> impl Strategy<Value = StreamElement> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), prop::collection::vec(any::<i64>(), 0..4)).prop_map(
            |(tid, ts, vals)| {
                StreamElement::tuple(Tuple::new(
                    StreamId(1),
                    TupleId(tid),
                    Timestamp(ts),
                    vals.into_iter().map(Value::Int).collect::<Vec<_>>(),
                ))
            }
        ),
        (prop::collection::vec(0u32..64, 0..6), any::<u64>()).prop_map(|(roles, ts)| {
            StreamElement::punctuation(SecurityPunctuation::grant_all(
                roles.into_iter().map(RoleId).collect::<RoleSet>(),
                Timestamp(ts),
            ))
        }),
    ]
}

/// A few frames, each tagged with a distinct stream id so decoded frames
/// can be matched back to what was sent.
fn arb_frames() -> impl Strategy<Value = Vec<Message>> {
    prop::collection::vec(prop::collection::vec(arb_element(), 0..6), 1..6).prop_map(|batches| {
        batches
            .into_iter()
            .enumerate()
            .map(|(i, elems)| Message::new(StreamId(i as u32), elems))
            .collect()
    })
}

fn encode_all(frames: &[Message]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for f in frames {
        f.encode(&mut bytes);
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Clean input: every frame decodes back, in order, with no losses.
    #[test]
    fn clean_streams_round_trip(frames in arb_frames()) {
        let bytes = encode_all(&frames);
        let mut dec = FrameDecoder::new();
        let decoded = dec.decode_stream(&bytes);
        prop_assert_eq!(&decoded, &frames);
        prop_assert_eq!(dec.corrupted_frames, 0);
        prop_assert_eq!(dec.skipped_bytes, 0);
    }

    /// Any single bit flip anywhere in the stream: no panic, and every
    /// decoded frame is one that was actually sent — corruption may lose
    /// frames but must never fabricate or alter one.
    #[test]
    fn single_bit_flip_never_fabricates_frames(
        frames in arb_frames(),
        pos_ratio in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_all(&frames);
        let pos = ((bytes.len() as f64 - 1.0) * pos_ratio) as usize;
        bytes[pos] ^= 1 << bit;
        let mut dec = FrameDecoder::new();
        let decoded = dec.decode_stream(&bytes);
        prop_assert!(decoded.len() <= frames.len());
        for d in &decoded {
            prop_assert!(frames.contains(d), "decoder fabricated a frame");
        }
        // At most one frame is hit by one flipped bit.
        prop_assert!(decoded.len() + 1 >= frames.len());
    }

    /// Truncation at any point yields a clean prefix, never a panic.
    #[test]
    fn truncation_yields_prefix(frames in arb_frames(), cut_ratio in 0.0f64..1.0) {
        let bytes = encode_all(&frames);
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        let mut dec = FrameDecoder::new();
        let decoded = dec.decode_stream(&bytes[..cut]);
        prop_assert!(decoded.len() <= frames.len());
        prop_assert_eq!(&decoded[..], &frames[..decoded.len()], "prefix property");
    }

    /// Arbitrary byte soup never panics the decoder, and everything not
    /// decoded is accounted for in `skipped_bytes`.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = FrameDecoder::new();
        let decoded = dec.decode_stream(&bytes);
        // Random bytes essentially never satisfy a CRC-32 check.
        prop_assert!(decoded.is_empty());
        prop_assert_eq!(dec.skipped_bytes as usize, bytes.len());
    }

    /// Garbage *between* valid frames: both frames still decode.
    #[test]
    fn interleaved_garbage_is_skipped(
        frames in arb_frames(),
        garbage in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&garbage);
            f.encode(&mut bytes);
        }
        let mut dec = FrameDecoder::new();
        let decoded = dec.decode_stream(&bytes);
        prop_assert_eq!(&decoded, &frames);
    }
}

// ------------------------------------------------------------------------
// The incremental [`StreamDecoder`] under adversarial socket delivery:
// frames arrive torn into arbitrary 1..N-byte chunks, interleaved with
// line noise. Resynchronization must never emit a frame that was not
// sent, and must recover every intact frame when the noise cannot be
// mistaken for a frame header.

/// Splits `bytes` into chunks whose sizes cycle through `sizes`
/// (each clamped to 1..), mimicking arbitrary TCP segmentation.
fn feed_in_chunks(dec: &mut StreamDecoder, bytes: &[u8], sizes: &[usize]) -> Vec<WireFrame> {
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < bytes.len() {
        let n = sizes.get(i % sizes.len()).copied().unwrap_or(1).max(1).min(bytes.len() - pos);
        out.extend(dec.feed(&bytes[pos..pos + n]));
        pos += n;
        i += 1;
    }
    out
}

/// Every [`Control`] variant, including the quarantine notice, the
/// four replication frames (`ReplHello`, `CheckpointSegment`,
/// `CheckpointCommit`, `Fence`), and the sp-trace context frame.
fn arb_control() -> impl Strategy<Value = Control> {
    prop_oneof![
        (any::<u32>(), any::<u64>()).prop_map(|(tenant, acked)| Control::Hello { tenant, acked }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(trace_id, parent_span)| Control::Trace { trace_id, parent_span }),
        any::<u64>().prop_map(|resume_from| Control::HelloAck { resume_from }),
        any::<u64>().prop_map(|pos| Control::Ack { pos }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(retry_after_ms, pos)| Control::Overloaded { retry_after_ms, pos }),
        (0u8..3).prop_map(|c| Control::Quarantined {
            code: sp_core::QuarantineCode::from_u8(c).expect("assigned code"),
        }),
        any::<u64>().prop_map(|pos| Control::Draining { pos }),
        any::<u64>().prop_map(|fencing_epoch| Control::ReplHello { fencing_epoch }),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..64),
        )
            .prop_map(|(tenant, epoch, fencing_epoch, seq, total, bytes)| {
                Control::CheckpointSegment { tenant, epoch, fencing_epoch, seq, total, bytes }
            }),
        (any::<u32>(), any::<u64>(), any::<u64>(), any::<u32>(), any::<u32>()).prop_map(
            |(tenant, epoch, fencing_epoch, len, crc)| Control::CheckpointCommit {
                tenant,
                epoch,
                fencing_epoch,
                len,
                crc,
            }
        ),
        any::<u64>().prop_map(|fencing_epoch| Control::Fence { fencing_epoch }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Clean frames (data and control interleaved) torn into arbitrary
    /// 1..N-byte chunks reassemble exactly, in order, with no losses.
    #[test]
    fn stream_decoder_reassembles_arbitrary_chunking(
        frames in arb_frames(),
        ctrls in prop::collection::vec(arb_control(), 0..4),
        sizes in prop::collection::vec(1usize..40, 1..8),
    ) {
        let mut bytes = Vec::new();
        let mut want = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            f.encode(&mut bytes);
            want.push(WireFrame::Message(f.clone()));
            if let Some(c) = ctrls.get(i) {
                c.encode(&mut bytes);
                want.push(WireFrame::Control(c.clone()));
            }
        }
        let mut dec = StreamDecoder::new(1 << 20);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        prop_assert_eq!(got, want);
        prop_assert_eq!(dec.corrupted_frames, 0);
        prop_assert_eq!(dec.buffered(), 0, "nothing may linger after clean delivery");
    }

    /// Chunked delivery with magic-free garbage between frames: every
    /// frame is recovered exactly (the noise can never look like a frame
    /// start, so resync always finds the next real frame).
    #[test]
    fn stream_decoder_recovers_every_frame_past_plain_garbage(
        frames in arb_frames(),
        garbage in prop::collection::vec(any::<u8>(), 1..48),
        sizes in prop::collection::vec(1usize..24, 1..8),
    ) {
        let garbage: Vec<u8> =
            garbage.into_iter().filter(|&b| b != 0xA5 && b != 0x5A).collect();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&garbage);
            f.encode(&mut bytes);
        }
        let want: Vec<WireFrame> = frames.iter().cloned().map(WireFrame::Message).collect();
        let mut dec = StreamDecoder::new(1 << 20);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        prop_assert_eq!(got, want);
    }

    /// Chunked delivery with *arbitrary* garbage (which may contain fake
    /// magics and lying length fields): the decoder must never emit a
    /// frame that was not sent, and decoded frames keep their relative
    /// order. CRC-32 is the last line of defense.
    #[test]
    fn stream_decoder_never_fabricates_under_arbitrary_garbage(
        frames in arb_frames(),
        garbage in prop::collection::vec(any::<u8>(), 1..48),
        sizes in prop::collection::vec(1usize..24, 1..8),
    ) {
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&garbage);
            f.encode(&mut bytes);
        }
        let mut dec = StreamDecoder::new(1 << 20);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        // Every decoded frame was sent…
        let mut cursor = 0;
        for frame in &got {
            prop_assert!(
                matches!(frame, WireFrame::Message(_)),
                "fabricated a control frame"
            );
            let WireFrame::Message(m) = frame else { continue };
            // …and appears at or after the previous match (order kept).
            let found = frames[cursor..].iter().position(|f| f == m);
            prop_assert!(found.is_some(), "decoder fabricated or reordered a frame");
            cursor += found.unwrap_or(0);
        }
    }

    /// A corrupted frame mid-stream under chunked delivery: the decoder
    /// resynchronizes and still recovers the subsequent intact frames.
    #[test]
    fn stream_decoder_resyncs_after_mid_stream_corruption(
        frames in arb_frames(),
        flip in any::<u8>(),
        sizes in prop::collection::vec(1usize..24, 1..8),
    ) {
        if frames.len() < 2 {
            return; // need an intact tail to assert about
        }
        let mut first = Vec::new();
        frames[0].encode(&mut first);
        // Corrupt one byte of the first frame's body region.
        let pos = 9 + (usize::from(flip) % frames[0].encode_to_vec().len().saturating_sub(9).max(1));
        if pos < first.len() {
            first[pos] ^= 0x40;
        }
        let mut bytes = first;
        for f in &frames[1..] {
            f.encode(&mut bytes);
        }
        // Corrupted bytes can contain a fake magic whose length field
        // promises data still "in flight" — a stall the server resolves
        // with its idle deadline. Here, magic-free padding forces every
        // such fake frame to complete, fail its CRC, and resync.
        let max_frame = 4096;
        bytes.extend(std::iter::repeat_n(0u8, max_frame + 16));
        let mut dec = StreamDecoder::new(max_frame);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        let want_tail: Vec<WireFrame> =
            frames[1..].iter().cloned().map(WireFrame::Message).collect();
        prop_assert!(got.len() >= want_tail.len(), "resync lost intact frames");
        prop_assert_eq!(
            &got[got.len() - want_tail.len()..],
            &want_tail[..],
            "intact tail must survive resync"
        );
    }

    /// Every control variant — session protocol and replication frames
    /// alike — round-trips through the incremental decoder under
    /// adversarial 1..N-byte chunking.
    #[test]
    fn every_control_variant_round_trips_chunked(
        ctrls in prop::collection::vec(arb_control(), 1..12),
        sizes in prop::collection::vec(1usize..16, 1..8),
    ) {
        let mut bytes = Vec::new();
        for c in &ctrls {
            c.encode(&mut bytes);
        }
        let want: Vec<WireFrame> = ctrls.iter().cloned().map(WireFrame::Control).collect();
        let mut dec = StreamDecoder::new(1 << 20);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        prop_assert_eq!(got, want);
        prop_assert_eq!(dec.corrupted_frames, 0);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Sp-trace contexts ride the wire immediately ahead of their data
    /// frames: under arbitrary 1..N-byte chunking every `Trace` frame
    /// decodes exactly and stays directly before its `Message` — the
    /// pairing the server's `pending_trace` handoff relies on.
    #[test]
    fn trace_contexts_stay_paired_with_their_frames_chunked(
        frames in arb_frames(),
        sizes in prop::collection::vec(1usize..24, 1..8),
    ) {
        let mut bytes = Vec::new();
        let mut want = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            let ctx = sp_core::TraceContext::derive(7, i as u32, i as u64);
            let t = Control::Trace { trace_id: ctx.trace_id, parent_span: ctx.parent_span };
            t.encode(&mut bytes);
            want.push(WireFrame::Control(t));
            f.encode(&mut bytes);
            want.push(WireFrame::Message(f.clone()));
        }
        let mut dec = StreamDecoder::new(1 << 20);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        prop_assert_eq!(got, want);
        prop_assert_eq!(dec.corrupted_frames, 0);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Magic-free garbage between trace+frame pairs under chunked
    /// delivery: resync recovers every pair intact and in order — noise
    /// may delay a pair but can never split or reorder one.
    #[test]
    fn trace_pairing_survives_resync_past_garbage(
        frames in arb_frames(),
        garbage in prop::collection::vec(any::<u8>(), 1..48),
        sizes in prop::collection::vec(1usize..24, 1..8),
    ) {
        let garbage: Vec<u8> = garbage
            .into_iter()
            .filter(|&b| b != 0xA5 && b != 0x5A && b != MAGIC_CIPHER)
            .collect();
        let mut bytes = Vec::new();
        let mut want = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            bytes.extend_from_slice(&garbage);
            let ctx = sp_core::TraceContext::derive(3, 1, i as u64);
            let t = Control::Trace { trace_id: ctx.trace_id, parent_span: ctx.parent_span };
            t.encode(&mut bytes);
            want.push(WireFrame::Control(t));
            bytes.extend_from_slice(&garbage);
            f.encode(&mut bytes);
            want.push(WireFrame::Message(f.clone()));
        }
        let mut dec = StreamDecoder::new(1 << 20);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        prop_assert_eq!(got, want);
    }

    /// A control frame with an *unassigned* variant tag but a valid CRC
    /// envelope: the decoder must refuse it as corruption (never panic,
    /// never emit a frame), and still recover the intact frame behind it.
    #[test]
    fn unknown_control_variant_fails_decode_not_panic(
        tag in 11u8..=255,
        payload in prop::collection::vec(any::<u8>(), 0..48),
        good in arb_control(),
        sizes in prop::collection::vec(1usize..16, 1..8),
    ) {
        let mut body = vec![tag];
        body.extend_from_slice(&payload);
        let mut bytes = Vec::new();
        bytes.push(sp_core::wire::MAGIC_CTRL);
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&sp_core::wire::crc32(&body).to_be_bytes());
        bytes.extend_from_slice(&body);
        good.encode(&mut bytes);
        let mut dec = StreamDecoder::new(1 << 20);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        prop_assert!(dec.corrupted_frames >= 1, "unknown tag must count as corruption");
        // Resync past an unknown-variant frame can nibble into the next
        // frame's bytes, so recovering `good` is best-effort — but the
        // decoder must never emit the unknown frame or fabricate one.
        for frame in &got {
            prop_assert_eq!(frame, &WireFrame::Control(good.clone()), "fabricated a frame");
        }
    }
}

// ------------------------------------------------------------------------
// Cipher frames (MAGIC_CIPHER) under the same adversarial delivery: the
// crypto-enforced path's framing must reassemble under arbitrary
// chunking, refuse unknown tags as counted corruption, and never panic
// or fabricate — the decoder is the first fail-closed line of the
// outsourced-enforcement client.

use sp_core::crypto::{frame::MAGIC_CIPHER, CipherFrame, KeyCapsule};

fn arb_cipher_frame() -> impl Strategy<Value = CipherFrame> {
    prop_oneof![
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            prop::collection::vec((any::<u32>(), prop::collection::vec(any::<u8>(), 0..64)), 0..4),
        )
            .prop_map(|(stream, seg, key_epoch, sp_ts, caps)| CipherFrame::Header {
                stream,
                seg,
                key_epoch,
                sp_ts,
                capsules: caps
                    .into_iter()
                    .map(|(role, wrapped)| KeyCapsule { role, wrapped })
                    .collect(),
            }),
        (any::<u32>(), any::<u64>(), any::<u32>(), prop::collection::vec(any::<u8>(), 0..128))
            .prop_map(|(stream, seg, idx, sealed)| CipherFrame::Data { stream, seg, idx, sealed }),
        (any::<u32>(), any::<u64>(), any::<u32>(), prop::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(stream, seg, count, sealed_digest)| CipherFrame::Digest {
                stream,
                seg,
                count,
                sealed_digest,
            }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(stream, seg)| CipherFrame::Terminator { stream, seg }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(stream, epoch)| CipherFrame::KeyEpoch { stream, epoch }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Cipher frames interleaved with data and control frames reassemble
    /// exactly under arbitrary 1..N-byte chunking.
    #[test]
    fn cipher_frames_round_trip_chunked(
        cipher in prop::collection::vec(arb_cipher_frame(), 1..8),
        frames in arb_frames(),
        ctrls in prop::collection::vec(arb_control(), 0..3),
        sizes in prop::collection::vec(1usize..24, 1..8),
    ) {
        let mut bytes = Vec::new();
        let mut want = Vec::new();
        for (i, c) in cipher.iter().enumerate() {
            c.encode(&mut bytes);
            want.push(WireFrame::Cipher(c.clone()));
            if let Some(m) = frames.get(i) {
                m.encode(&mut bytes);
                want.push(WireFrame::Message(m.clone()));
            }
            if let Some(ct) = ctrls.get(i) {
                ct.encode(&mut bytes);
                want.push(WireFrame::Control(ct.clone()));
            }
        }
        let mut dec = StreamDecoder::new(1 << 20);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        prop_assert_eq!(got, want);
        prop_assert_eq!(dec.corrupted_frames, 0);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// A cipher envelope with an *unassigned* frame tag but a valid CRC:
    /// counted corruption, never a panic, never an emitted frame — and
    /// the decoder keeps working afterwards.
    #[test]
    fn unknown_cipher_tag_is_counted_corruption(
        tag in 5u8..=255,
        payload in prop::collection::vec(any::<u8>(), 0..48),
        good in arb_cipher_frame(),
        sizes in prop::collection::vec(1usize..16, 1..8),
    ) {
        let mut body = vec![tag];
        body.extend_from_slice(&payload);
        let mut bytes = Vec::new();
        bytes.push(MAGIC_CIPHER);
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&sp_core::wire::crc32(&body).to_be_bytes());
        bytes.extend_from_slice(&body);
        good.encode(&mut bytes);
        let mut dec = StreamDecoder::new(1 << 20);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        prop_assert!(dec.corrupted_frames >= 1, "unknown tag must count as corruption");
        for frame in &got {
            prop_assert_eq!(frame, &WireFrame::Cipher(good.clone()), "fabricated a frame");
        }
    }

    /// Any single-bit flip in a chunked cipher stream: no panic, and no
    /// frame is emitted that was not sent.
    #[test]
    fn cipher_bit_flip_never_fabricates_chunked(
        cipher in prop::collection::vec(arb_cipher_frame(), 1..6),
        pos_ratio in 0.0f64..1.0,
        bit in 0u8..8,
        sizes in prop::collection::vec(1usize..24, 1..8),
    ) {
        let mut bytes = Vec::new();
        for c in &cipher {
            c.encode(&mut bytes);
        }
        let pos = ((bytes.len() as f64 - 1.0) * pos_ratio) as usize;
        bytes[pos] ^= 1 << bit;
        // Magic-free padding flushes any fake in-flight frame the flip
        // manufactured (same trick as the mid-stream corruption test).
        bytes.extend(std::iter::repeat_n(0u8, (1 << 16) + 16));
        let mut dec = StreamDecoder::new(1 << 16);
        let got = feed_in_chunks(&mut dec, &bytes, &sizes);
        let want: Vec<WireFrame> = cipher.iter().cloned().map(WireFrame::Cipher).collect();
        prop_assert!(got.len() <= want.len());
        for g in &got {
            prop_assert!(want.contains(g), "decoder fabricated a cipher frame");
        }
    }
}
