//! Criterion microbenches for the three access-control enforcement
//! mechanisms end-to-end — the statistically robust companion of the fig7
//! harness.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sp_bench::mechanisms::{all_mechanisms, catalog, probe_roles};
use sp_bench::workloads::fig7_workload;

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanisms");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let catalog = catalog(128);
    for sp_every in [1usize, 50] {
        let workload = fig7_workload(sp_every, 3, 0.5, 5);
        group.throughput(Throughput::Elements(workload.tuples as u64));
        // Enumerate mechanisms by index so each iteration gets a fresh one.
        for idx in 0..3usize {
            let name = ["store_and_probe", "tuple_embedded", "security_punctuations"][idx];
            group.bench_with_input(BenchmarkId::new(name, sp_every), &workload, |b, workload| {
                b.iter(|| {
                    let mut mechs = all_mechanisms(&catalog, &workload.schema, &probe_roles());
                    let mut mech = mechs.swap_remove(idx);
                    let mut out = Vec::with_capacity(256);
                    for elem in &workload.elements {
                        mech.process(elem.clone(), &mut out);
                        out.clear();
                    }
                    mech.released()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mechanisms);
criterion_main!(benches);
