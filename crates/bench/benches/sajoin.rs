//! Criterion microbenches for the SAJoin variants at the extreme sp
//! selectivities — the statistically robust companion of the fig9 harness.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sp_bench::workloads::fig9_workload;
use sp_engine::{Element, Emitter, JoinVariant, Operator, SAJoin, SpAnalyzer};

fn resolved_feed(sigma: f64) -> Vec<(usize, Element)> {
    let workload = fig9_workload(sigma, 600, 3);
    let mut catalog = sp_core::RoleCatalog::new();
    catalog.register_synthetic_roles(128);
    let catalog = Arc::new(catalog);
    let mut analyzers = [
        SpAnalyzer::new(workload.schema.clone(), catalog.clone()),
        SpAnalyzer::new(workload.schema.clone(), catalog),
    ];
    let mut feed = Vec::new();
    let mut staged = Vec::new();
    for (port, elem) in &workload.feed {
        staged.clear();
        analyzers[*port].push(elem.clone(), &mut staged);
        for e in staged.drain(..) {
            feed.push((*port, e));
        }
    }
    feed
}

fn bench_sajoin(c: &mut Criterion) {
    let mut group = c.benchmark_group("sajoin");
    group
        .sample_size(15)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for sigma in [0.1f64, 1.0] {
        let feed = resolved_feed(sigma);
        group.throughput(Throughput::Elements(feed.len() as u64));
        for (name, variant) in [
            ("nested_pf", JoinVariant::NestedLoopPF),
            ("nested_fp", JoinVariant::NestedLoopFP),
            ("index", JoinVariant::Index),
        ] {
            group.bench_with_input(BenchmarkId::new(name, sigma), &feed, |b, feed| {
                b.iter(|| {
                    let mut join = SAJoin::new(variant, 2000, 1, 1, 2);
                    let mut emitter = Emitter::new();
                    let mut out = 0usize;
                    for (port, elem) in feed {
                        join.process(*port, elem.clone(), &mut emitter).expect("bench join failed");
                        out += emitter.take().len();
                    }
                    out
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sajoin);
criterion_main!(benches);
