//! Criterion microbenches for the unary security-aware operators:
//! Security Shield (both match modes), select and project, at two policy
//! sharing levels. Complements the fig8 harness with statistically robust
//! per-element timings.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sp_bench::workloads::fig8_workload;
use sp_core::{RoleSet, Value};
use sp_engine::{
    CmpOp, Element, Emitter, Expr, MatchMode, Operator, Project, SecurityShield, Select, SpAnalyzer,
};

fn resolved_elements(sp_every: usize) -> Vec<Element> {
    let workload = fig8_workload(sp_every, 3);
    let mut catalog = sp_core::RoleCatalog::new();
    catalog.register_synthetic_roles(600);
    let mut analyzer = SpAnalyzer::new(workload.schema.clone(), Arc::new(catalog));
    let mut out = Vec::new();
    for e in &workload.elements {
        analyzer.push(e.clone(), &mut out);
    }
    out
}

fn run(op: &mut dyn Operator, elements: &[Element]) -> usize {
    let mut emitter = Emitter::new();
    let mut produced = 0;
    for e in elements {
        op.process(0, e.clone(), &mut emitter).expect("bench operator failed");
        produced += emitter.take().len();
    }
    produced
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("unary_operators");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    for sp_every in [1usize, 25] {
        let elements = resolved_elements(sp_every);
        group.throughput(Throughput::Elements(elements.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("security_shield", sp_every),
            &elements,
            |b, elems| {
                b.iter(|| {
                    let mut ss = SecurityShield::new(RoleSet::from([0]));
                    run(&mut ss, elems)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("security_shield_scan_r100", sp_every),
            &elements,
            |b, elems| {
                b.iter(|| {
                    let mut ss =
                        SecurityShield::new(RoleSet::all_below(100)).with_mode(MatchMode::Scan);
                    run(&mut ss, elems)
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("select", sp_every), &elements, |b, elems| {
            b.iter(|| {
                let mut sel = Select::new(Expr::cmp(
                    CmpOp::Ge,
                    Expr::Attr(1),
                    Expr::Const(Value::Float(500.0)),
                ));
                run(&mut sel, elems)
            });
        });
        group.bench_with_input(BenchmarkId::new("project", sp_every), &elements, |b, elems| {
            b.iter(|| {
                let mut proj = Project::new(vec![0, 1]);
                run(&mut proj, elems)
            });
        });
    }
    group.finish();
}

/// §V-A grouped-filter ablation: answering "which of N queries does this
/// policy authorize?" via the inverted PredicateIndex vs N per-query
/// intersections.
fn bench_predicate_index(c: &mut Criterion) {
    use sp_core::{Policy, Timestamp};
    use sp_engine::PredicateIndex;

    let mut group = c.benchmark_group("predicate_index");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for n_queries in [16u32, 256] {
        let mut index = PredicateIndex::new();
        for q in 0..n_queries {
            index.register(RoleSet::from([q % 64, (q * 7 + 3) % 64]));
        }
        let policies: Vec<Policy> = (0..64u32)
            .map(|r| Policy::tuple_level(RoleSet::from([r, (r + 13) % 64]), Timestamp(0)))
            .collect();
        group.bench_with_input(BenchmarkId::new("indexed", n_queries), &policies, |b, policies| {
            b.iter(|| policies.iter().map(|p| index.matching_queries(p).len()).sum::<usize>());
        });
        group.bench_with_input(BenchmarkId::new("naive", n_queries), &policies, |b, policies| {
            b.iter(|| {
                policies.iter().map(|p| index.matching_queries_naive(p).len()).sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators, bench_predicate_index);
criterion_main!(benches);
