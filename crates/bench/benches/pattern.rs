//! Criterion microbenches for the DDP pattern engine: compile cost and
//! match cost per shape (match-all, literal, literal alternation, numeric
//! range, general VM), including the numeric fast path.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_pattern::Pattern;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_compile");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    for (name, src) in [
        ("match_all", "*"),
        ("literal", "HeartRate"),
        ("alternation", "doctor|nurse_on_duty|cardiologist"),
        ("numeric_range", "<120-133>"),
        ("vm", "patient-(<100-199>|vip.*)"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| Pattern::compile(std::hint::black_box(src)).expect("compiles"))
        });
    }
    group.finish();
}

fn bench_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("pattern_match");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    let cases = [
        ("match_all", "*", "HeartRate"),
        ("literal", "HeartRate", "HeartRate"),
        ("alternation", "doctor|nurse_on_duty|cardiologist", "nurse_on_duty"),
        ("numeric_range", "<120-133>", "127"),
        ("vm", "patient-(<100-199>|vip.*)", "patient-vip-007"),
    ];
    for (name, src, input) in cases {
        let pattern = Pattern::compile(src).expect("compiles");
        group.bench_with_input(BenchmarkId::new("str", name), &pattern, |b, p| {
            b.iter(|| p.matches(std::hint::black_box(input)))
        });
    }
    // The allocation-free integer fast path used on tuple ids.
    let range = Pattern::numeric_range(100, 10_000);
    group.bench_function("u64_range_fast_path", |b| {
        b.iter(|| range.matches_u64(std::hint::black_box(1234)))
    });
    group.finish();
}

criterion_group!(benches, bench_compile, bench_match);
criterion_main!(benches);
