//! Sequential vs pipeline-parallel executor over a shielded multi-query
//! plan. The parallel runner trades per-element channel overhead for
//! overlap between pipeline stages; this bench measures where that trade
//! lands for a plan with several moderately expensive stages.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sp_bench::workloads::fig8_workload;
use sp_core::{RoleId, RoleSet, StreamElement, StreamId, Value};
use sp_engine::{run_parallel, CmpOp, Expr, PlanBuilder, SecurityShield, Select};

fn build(n_queries: u32, schema: &Arc<sp_core::Schema>) -> PlanBuilder {
    let mut catalog = sp_core::RoleCatalog::new();
    catalog.register_synthetic_roles(600);
    let mut b = PlanBuilder::new(Arc::new(catalog));
    let src = b.source(StreamId(1), schema.clone());
    let sel = b.add(
        Select::new(Expr::and(
            Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Float(100.0))),
            Expr::cmp(CmpOp::Le, Expr::Attr(2), Expr::Const(Value::Float(1400.0))),
        )),
        src,
    );
    for q in 0..n_queries {
        let ss = b.add(SecurityShield::new(RoleSet::single(RoleId(q))), sel);
        let _ = b.sink(ss);
    }
    b
}

fn bench_runners(c: &mut Criterion) {
    let mut group = c.benchmark_group("executors");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let workload = fig8_workload(10, 31);
    let input: Vec<(StreamId, StreamElement)> =
        workload.elements.iter().map(|e| (StreamId(1), e.clone())).collect();
    group.throughput(Throughput::Elements(workload.tuples as u64));
    for n_queries in [1u32, 8] {
        group.bench_with_input(BenchmarkId::new("sequential", n_queries), &input, |b, input| {
            b.iter(|| {
                let mut exec = build(n_queries, &workload.schema).build();
                exec.push_all(input.iter().cloned()).expect("bench plan failed");
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel", n_queries), &input, |b, input| {
            b.iter(|| {
                let builder = build(n_queries, &workload.schema);
                let _ = run_parallel(builder, input.iter().cloned());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runners);
criterion_main!(benches);
