//! A small lint for the Prometheus text exposition format.
//!
//! The engine's `MetricsRegistry` renders its snapshot in text exposition
//! format (version 0.0.4); CI scrapes nothing, so a malformed exposition
//! would otherwise only surface when someone points a real Prometheus at
//! the endpoint. This module parses an exposition the way a scraper
//! would, strictly enough to catch the mistakes a renderer can make:
//!
//! * malformed `# HELP` / `# TYPE` lines or unknown metric types;
//! * metric and label names outside the legal character set;
//! * unparseable sample values, broken label quoting;
//! * duplicate series (same name and label set twice);
//! * `# TYPE` declared *after* a sample of the family;
//! * histogram families missing the `+Inf` bucket, `_sum` or `_count`,
//!   non-cumulative buckets, or `_count` disagreeing with `+Inf`.
//!
//! `lint` returns every violation with its 1-based line number; the
//! `promlint` binary exits nonzero if any are found.

use std::collections::{BTreeMap, HashMap, HashSet};

/// One lint violation, located by its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// 1-based line the violation was found on (0 = whole document).
    pub line: usize,
    /// Human-readable description of what is wrong.
    pub message: String,
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        other => other.parse().ok(),
    }
}

/// Parses `name{label="v",...} value` into its parts. Labels come back as
/// a sorted map so identical label sets normalize identically.
fn parse_sample(line: &str) -> Result<(String, BTreeMap<String, String>, f64), String> {
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or("unclosed label block")?;
            if close < open {
                return Err("mismatched braces".into());
            }
            (&line[..open], {
                let labels = &line[open + 1..close];
                let tail = line[close + 1..].trim();
                (labels, tail)
            })
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let name = it.next().unwrap_or("");
            (name, ("", it.next().unwrap_or("").trim()))
        }
    };
    let (label_text, value_text) = rest;
    if !valid_metric_name(name_part) {
        return Err(format!("invalid metric name {name_part:?}"));
    }
    let mut labels = BTreeMap::new();
    let mut chars = label_text.chars().peekable();
    while chars.peek().is_some() {
        let mut lname = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            lname.push(c);
            chars.next();
        }
        let lname = lname.trim().to_string();
        if chars.next() != Some('=') {
            return Err(format!("label {lname:?} missing '='"));
        }
        if !valid_label_name(&lname) {
            return Err(format!("invalid label name {lname:?}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label {lname:?} value not quoted"));
        }
        let mut lvalue = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => lvalue.push('\\'),
                    Some('"') => lvalue.push('"'),
                    Some('n') => lvalue.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {lname:?}")),
                },
                Some('"') => break,
                Some(c) => lvalue.push(c),
                None => return Err(format!("unterminated value for label {lname:?}")),
            }
        }
        if labels.insert(lname.clone(), lvalue).is_some() {
            return Err(format!("duplicate label {lname:?}"));
        }
        match chars.peek() {
            Some(',') => {
                chars.next();
            }
            Some(c) => return Err(format!("expected ',' between labels, found {c:?}")),
            None => {}
        }
    }
    // A trailing timestamp (second whitespace-separated field) is legal;
    // the value is the first field.
    let mut fields = value_text.split_whitespace();
    let value = fields.next().ok_or("missing sample value")?;
    let value = parse_value(value).ok_or_else(|| format!("unparseable value {value:?}"))?;
    if let Some(ts) = fields.next() {
        ts.parse::<i64>().map_err(|_| format!("unparseable timestamp {ts:?}"))?;
    }
    if fields.next().is_some() {
        return Err("trailing garbage after sample".into());
    }
    Ok((name_part.to_string(), labels, value))
}

/// The base family a histogram sample belongs to, if its name carries a
/// histogram series suffix.
fn histogram_family(name: &str) -> Option<(&str, &'static str)> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return Some((base, suffix));
        }
    }
    None
}

#[derive(Default)]
struct HistogramSeries {
    buckets: Vec<(f64, f64)>,
    sum: bool,
    count: Option<f64>,
    line: usize,
}

/// Lints a full text exposition; returns every violation found.
#[must_use]
#[allow(clippy::too_many_lines)] // one pass over the document, kept linear
pub fn lint(text: &str) -> Vec<LintError> {
    let mut errors = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut sampled: HashSet<String> = HashSet::new();
    let mut seen_series: HashSet<String> = HashSet::new();
    // (family, labels-without-le) -> accumulated histogram shape
    let mut histograms: HashMap<(String, String), HistogramSeries> = HashMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let mut err = |message: String| errors.push(LintError { line: lineno, message });
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let ty = it.next().unwrap_or("").trim();
                if !valid_metric_name(name) {
                    err(format!("TYPE for invalid metric name {name:?}"));
                    continue;
                }
                if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty) {
                    err(format!("unknown metric type {ty:?}"));
                }
                if sampled.contains(name) {
                    err(format!("TYPE for {name} declared after its samples"));
                }
                if types.insert(name.to_string(), ty.to_string()).is_some() {
                    err(format!("duplicate TYPE for {name}"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    err(format!("HELP for invalid metric name {name:?}"));
                }
            }
            // Any other comment is legal and ignored.
            continue;
        }

        let (name, labels, value) = match parse_sample(line) {
            Ok(parsed) => parsed,
            Err(message) => {
                err(message);
                continue;
            }
        };
        let family = match histogram_family(&name) {
            Some((base, _)) if types.get(base).is_some_and(|t| t == "histogram") => {
                base.to_string()
            }
            _ => name.clone(),
        };
        sampled.insert(family.clone());

        let series_key = format!(
            "{name}{{{}}}",
            labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect::<Vec<_>>().join(",")
        );
        if !seen_series.insert(series_key) {
            err(format!("duplicate series {name} with identical labels"));
        }

        if family != name {
            // Histogram component sample: accumulate its shape.
            let mut without_le = labels.clone();
            let le = without_le.remove("le");
            let group =
                without_le.iter().map(|(k, v)| format!("{k}={v:?}")).collect::<Vec<_>>().join(",");
            let entry = histograms.entry((family.clone(), group)).or_default();
            entry.line = lineno;
            match name.strip_prefix(family.as_str()) {
                Some("_bucket") => match le.as_deref().map(parse_value) {
                    Some(Some(bound)) => entry.buckets.push((bound, value)),
                    Some(None) => err("bucket with unparseable le".into()),
                    None => err("histogram _bucket sample without an le label".into()),
                },
                Some("_sum") => entry.sum = true,
                Some("_count") => entry.count = Some(value),
                _ => {}
            }
        }
    }

    for ((family, group), series) in &histograms {
        let at = |message: String| LintError { line: series.line, message };
        let label = if group.is_empty() { family.clone() } else { format!("{family}{{{group}}}") };
        let mut buckets = series.buckets.clone();
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        if buckets.last().is_none_or(|&(le, _)| le != f64::INFINITY) {
            errors.push(at(format!("histogram {label} has no +Inf bucket")));
            continue;
        }
        if buckets.windows(2).any(|w| w[1].1 < w[0].1) {
            errors.push(at(format!("histogram {label} buckets are not cumulative")));
        }
        if !series.sum {
            errors.push(at(format!("histogram {label} is missing _sum")));
        }
        match series.count {
            None => errors.push(at(format!("histogram {label} is missing _count"))),
            Some(count) => {
                let inf = buckets.last().map_or(0.0, |&(_, v)| v);
                if (count - inf).abs() > f64::EPSILON {
                    errors
                        .push(at(format!("histogram {label} _count {count} != +Inf bucket {inf}")));
                }
            }
        }
    }

    errors.sort_by_key(|e| e.line);
    errors
}

/// Lints the precomputed quantile gauges that must accompany every
/// histogram family in the engine's exposition: for each histogram
/// series (per label set), a `{family}_p50`, `{family}_p90` and
/// `{family}_p99` gauge series with the same labels must exist, typed
/// `gauge`, with p50 ≤ p90 ≤ p99.
///
/// Kept separate from [`lint`]: plain format validity does not require
/// quantile gauges (third-party expositions lint clean without them);
/// this check encodes the *engine's* contract, and the `promlint` binary
/// runs both.
#[must_use]
pub fn lint_quantiles(text: &str) -> Vec<LintError> {
    const SUFFIXES: [&str; 3] = ["_p50", "_p90", "_p99"];
    let mut errors = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    // (family, labels-without-le) -> line of first histogram sample
    let mut groups: BTreeMap<(String, String), usize> = BTreeMap::new();
    // (family, suffix, labels) -> gauge value
    let mut quantiles: HashMap<(String, &'static str, String), f64> = HashMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if let Some(rest) = comment.trim_start().strip_prefix("TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let ty = it.next().unwrap_or("").trim();
                types.insert(name.to_string(), ty.to_string());
            }
            continue;
        }
        let Ok((name, labels, value)) = parse_sample(line) else { continue };
        let group_of = |labels: &BTreeMap<String, String>| {
            labels
                .iter()
                .filter(|(k, _)| k.as_str() != "le")
                .map(|(k, v)| format!("{k}={v:?}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        if let Some((base, _)) = histogram_family(&name) {
            if types.get(base).is_some_and(|t| t == "histogram") {
                groups.entry((base.to_string(), group_of(&labels))).or_insert(lineno);
                continue;
            }
        }
        for suffix in SUFFIXES {
            if let Some(base) = name.strip_suffix(suffix) {
                if types.get(base).is_some_and(|t| t == "histogram") {
                    if types.get(&name).is_none_or(|t| t != "gauge") {
                        errors.push(LintError {
                            line: lineno,
                            message: format!("quantile series {name} is not typed gauge"),
                        });
                    }
                    quantiles.insert((base.to_string(), suffix, group_of(&labels)), value);
                }
            }
        }
    }

    for ((family, group), &line) in &groups {
        let label = if group.is_empty() { family.clone() } else { format!("{family}{{{group}}}") };
        let mut vals = Vec::new();
        for suffix in SUFFIXES {
            match quantiles.get(&(family.clone(), suffix, group.clone())) {
                Some(&v) => vals.push(v),
                None => errors.push(LintError {
                    line,
                    message: format!("histogram {label} has no {family}{suffix} gauge"),
                }),
            }
        }
        if vals.len() == SUFFIXES.len() && vals.windows(2).any(|w| w[1] < w[0]) {
            errors.push(LintError {
                line,
                message: format!(
                    "histogram {label} quantiles are not monotone (p50={} p90={} p99={})",
                    vals[0], vals[1], vals[2]
                ),
            });
        }
    }

    errors.sort_by_key(|e| e.line);
    errors
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    const GOOD: &str = "\
# HELP sp_tuples_in_total Tuples entering an operator.
# TYPE sp_tuples_in_total counter
sp_tuples_in_total{op=\"ss\",node=\"0\"} 120
sp_tuples_in_total{op=\"select\",node=\"1\"} 120
# HELP sp_operator_latency_ns Per-call operator latency.
# TYPE sp_operator_latency_ns histogram
sp_operator_latency_ns_bucket{node=\"0\",le=\"1024\"} 3
sp_operator_latency_ns_bucket{node=\"0\",le=\"2048\"} 7
sp_operator_latency_ns_bucket{node=\"0\",le=\"+Inf\"} 9
sp_operator_latency_ns_sum{node=\"0\"} 13000
sp_operator_latency_ns_count{node=\"0\"} 9
";

    #[test]
    fn clean_exposition_passes() {
        assert_eq!(lint(GOOD), vec![]);
    }

    #[test]
    fn engine_rendered_exposition_passes() {
        // The real renderer under test: whatever the engine emits for a
        // live plan must satisfy the same lint CI runs.
        use sp_core::{RoleSet, SecurityPunctuation, StreamElement, StreamId, Timestamp};
        let mut catalog = sp_core::RoleCatalog::new();
        catalog.register_synthetic_roles(4);
        let mut b = sp_engine::PlanBuilder::new(std::sync::Arc::new(catalog));
        let src = b.source(StreamId(1), crate::workloads::fig7_workload(10, 2, 0.5, 1).schema);
        let ss = b.add(sp_engine::SecurityShield::new(RoleSet::from([0])), src);
        let _sink = b.sink(ss);
        b.enable_telemetry(sp_engine::TelemetryConfig::enabled());
        let mut exec = b.build();
        let sp = SecurityPunctuation::grant_all(RoleSet::from([0]), Timestamp(1));
        exec.push(StreamId(1), StreamElement::punctuation(sp)).unwrap();
        let prom = exec.metrics_prometheus();
        let errors = lint(&prom);
        assert_eq!(errors, vec![], "engine exposition must lint clean");
        let errors = lint_quantiles(&prom);
        assert_eq!(errors, vec![], "engine exposition must carry quantile gauges");
    }

    #[test]
    fn missing_quantile_gauges_are_flagged() {
        // GOOD is format-valid but carries no quantile gauges: the plain
        // lint accepts it, the quantile lint names every missing series.
        assert_eq!(lint(GOOD), vec![]);
        let errors = lint_quantiles(GOOD);
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(errors[0].message.contains("_p50"));
    }

    #[test]
    fn non_monotone_quantiles_are_flagged() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 5
# TYPE h_p50 gauge
h_p50 8
# TYPE h_p90 gauge
h_p90 4
# TYPE h_p99 gauge
h_p99 9
";
        let errors = lint_quantiles(text);
        assert!(errors.iter().any(|e| e.message.contains("not monotone")), "{errors:?}");
    }

    #[test]
    fn quantile_gauges_must_be_typed_gauge() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 1
h_sum 1
h_count 1
# TYPE h_p50 counter
h_p50 1
# TYPE h_p90 gauge
h_p90 1
# TYPE h_p99 gauge
h_p99 1
";
        let errors = lint_quantiles(text);
        assert!(errors.iter().any(|e| e.message.contains("not typed gauge")), "{errors:?}");
    }

    #[test]
    fn bad_names_and_values_are_flagged() {
        let errors = lint("9bad_name 1\nok_name not_a_number\n");
        assert_eq!(errors.len(), 2);
        assert!(errors[0].message.contains("invalid metric name"));
        assert!(errors[1].message.contains("unparseable value"));
    }

    #[test]
    fn duplicate_series_is_flagged() {
        let text = "a_total{x=\"1\"} 1\na_total{x=\"1\"} 2\n";
        let errors = lint(text);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("duplicate series"));
    }

    #[test]
    fn type_after_samples_is_flagged() {
        let text = "a_total 1\n# TYPE a_total counter\n";
        let errors = lint(text);
        assert!(errors.iter().any(|e| e.message.contains("after its samples")), "{errors:?}");
    }

    #[test]
    fn histogram_without_inf_bucket_is_flagged() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 1
h_sum 1
h_count 1
";
        let errors = lint(text);
        assert!(errors.iter().any(|e| e.message.contains("no +Inf bucket")), "{errors:?}");
    }

    #[test]
    fn non_cumulative_histogram_is_flagged() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 5
";
        let errors = lint(text);
        assert!(errors.iter().any(|e| e.message.contains("not cumulative")), "{errors:?}");
    }

    #[test]
    fn count_must_match_inf_bucket() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 4
";
        let errors = lint(text);
        assert!(errors.iter().any(|e| e.message.contains("!= +Inf bucket")), "{errors:?}");
    }

    #[test]
    fn quoting_and_escapes_parse() {
        let text = "a_total{msg=\"he said \\\"hi\\\",\\nbye\\\\\"} 1\n";
        assert_eq!(lint(text), vec![]);
        let errors = lint("a_total{msg=\"unterminated} 1\n");
        assert_eq!(errors.len(), 1, "{errors:?}");
    }

    #[test]
    fn unknown_type_is_flagged() {
        let errors = lint("# TYPE a_total counterz\n");
        assert!(errors.iter().any(|e| e.message.contains("unknown metric type")), "{errors:?}");
    }
}
