//! Mechanism construction and measurement helpers for the Fig. 7
//! comparison.

use std::sync::Arc;
use std::time::Duration;

use sp_baselines::{
    CryptoEnforced, EnforcementMechanism, SpMechanism, StoreAndProbe, TupleEmbedded,
};
use sp_core::{RoleCatalog, RoleId, RoleSet, Schema, StreamElement};

/// In-flight buffer capacity: tuples concurrently inside each mechanism
/// (the policy-memory metric counts the policies attached to them).
pub const IN_FLIGHT: usize = 512;

/// The four mechanisms — the three of §I-C plus outsourced crypto
/// enforcement — over the same catalog/schema/roles.
pub fn all_mechanisms(
    catalog: &Arc<RoleCatalog>,
    schema: &Arc<Schema>,
    query_roles: &RoleSet,
) -> Vec<Box<dyn EnforcementMechanism>> {
    vec![
        Box::new(StoreAndProbe::new(
            catalog.clone(),
            schema.clone(),
            query_roles.clone(),
            IN_FLIGHT,
        )),
        Box::new(TupleEmbedded::new(
            catalog.clone(),
            schema.clone(),
            query_roles.clone(),
            IN_FLIGHT,
        )),
        Box::new(SpMechanism::new(catalog.clone(), schema.clone(), query_roles.clone(), IN_FLIGHT)),
        Box::new(CryptoEnforced::new(
            catalog.clone(),
            schema.clone(),
            query_roles.clone(),
            IN_FLIGHT,
        )),
    ]
}

/// The probe query's roles: role 0 (the workload generator's grant target).
#[must_use]
pub fn probe_roles() -> RoleSet {
    RoleSet::single(RoleId(0))
}

/// A catalog with the full synthetic role universe registered.
#[must_use]
pub fn catalog(universe: u32) -> Arc<RoleCatalog> {
    let mut c = RoleCatalog::new();
    c.register_synthetic_roles(universe);
    Arc::new(c)
}

/// Measurement outcome for one mechanism over one workload.
#[derive(Debug, Clone)]
pub struct MechRun {
    /// Mechanism name.
    pub name: &'static str,
    /// Wall time inside the mechanism.
    pub elapsed: Duration,
    /// Tuples released.
    pub released: u64,
    /// Tuples denied.
    pub denied: u64,
    /// Policy-related memory at end of run (bytes).
    pub policy_mem: usize,
}

/// Drives a mechanism over a workload, collecting the Fig. 7 metrics.
/// Ends with [`EnforcementMechanism::finish`] so the crypto-enforced
/// mechanism's final ciphertext segment is closed and counted.
pub fn drive(mech: &mut dyn EnforcementMechanism, elements: &[StreamElement]) -> MechRun {
    let mut out = Vec::with_capacity(1024);
    // Policy memory is sampled at peak (right before the final flush
    // empties the crypto journal), mirroring what Fig. 7c measures.
    let mut peak_mem = 0usize;
    for elem in elements {
        mech.process(elem.clone(), &mut out);
        out.clear();
    }
    peak_mem = peak_mem.max(mech.policy_mem_bytes());
    mech.finish(&mut out);
    MechRun {
        name: match mech.name() {
            "store-and-probe" => "store-and-probe",
            "tuple-embedded" => "tuple-embedded",
            "crypto-enforced" => "crypto-enforced",
            _ => "security-punctuations",
        },
        elapsed: mech.elapsed(),
        released: mech.released(),
        denied: mech.denied(),
        policy_mem: peak_mem,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;

    #[test]
    fn mechanisms_agree_on_released_counts() {
        let w = workloads::fig7_workload(10, 3, 0.5, 11);
        let catalog = catalog(128);
        let mut counts = Vec::new();
        for mut mech in all_mechanisms(&catalog, &w.schema, &probe_roles()) {
            let run = drive(mech.as_mut(), &w.elements);
            counts.push(run.released);
            assert_eq!(run.released + run.denied, w.tuples as u64, "{}", run.name);
        }
        assert_eq!(counts[0], counts[1], "store-and-probe vs tuple-embedded");
        assert_eq!(counts[1], counts[2], "tuple-embedded vs punctuations");
        assert_eq!(counts[2], counts[3], "punctuations vs crypto-enforced");
        assert!(counts[0] > 0, "some tuples must be released");
    }
}
