//! # sp-bench — the evaluation harness
//!
//! Regenerates every figure of the paper's evaluation (§VII). One binary
//! per figure:
//!
//! * `fig7 [a|b|c|d|all]` — the three enforcement mechanisms compared on
//!   output rate, processing cost, memory and policy-size sensitivity;
//! * `fig8 [a|b|all]` — Security Shield overhead vs select and project;
//! * `fig9` — nested-loop vs index SAJoin across sp selectivities.
//!
//! Numbers are machine-specific; the *shapes* (who wins, by what factor,
//! where the crossovers sit) are what reproduce the paper. Run in release
//! mode. Each binary prints an aligned table and appends JSON-lines rows to
//! `target/bench-results.jsonl` for EXPERIMENTS.md bookkeeping.

#![warn(missing_docs)]

use std::io::Write as _;
use std::time::Duration;

pub mod mechanisms;
pub mod prom;
pub mod workloads;

/// One measured table row, serialized to the results log.
#[derive(Debug, Clone)]
pub struct Row {
    /// Experiment id, e.g. "fig7a".
    pub experiment: &'static str,
    /// Sweep parameter name, e.g. "sp_ratio".
    pub param: &'static str,
    /// Sweep parameter value rendered as text.
    pub value: String,
    /// Series name, e.g. "security-punctuations".
    pub series: String,
    /// The measured metric.
    pub metric: &'static str,
    /// The measurement.
    pub measured: f64,
}

impl Row {
    /// Renders the row as one JSON object. Hand-rolled (the build
    /// environment has no crates.io access for serde); fields are flat
    /// strings and one float, so escaping strings suffices.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"experiment":{},"param":{},"value":{},"series":{},"metric":{},"measured":{}}}"#,
            json_str(self.experiment),
            json_str(self.param),
            json_str(&self.value),
            json_str(&self.series),
            json_str(self.metric),
            json_f64(self.measured),
        )
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/Infinity; null keeps the line parseable.
        "null".to_string()
    }
}

/// Appends rows to `target/bench-results.jsonl` (best-effort).
pub fn log_rows(rows: &[Row]) {
    let path = std::path::Path::new("target");
    if std::fs::create_dir_all(path).is_err() {
        return;
    }
    let Ok(mut file) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path.join("bench-results.jsonl"))
    else {
        return;
    };
    for row in rows {
        let _ = writeln!(file, "{}", row.to_json());
    }
}

/// Microseconds per unit, guarding against div-by-zero.
#[must_use]
pub fn us_per(elapsed: Duration, units: u64) -> f64 {
    if units == 0 {
        0.0
    } else {
        elapsed.as_secs_f64() * 1e6 / units as f64
    }
}

/// Prints a header plus aligned rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut line = format!("{:<14}", header.first().copied().unwrap_or(""));
    for h in &header[1..] {
        line.push_str(&format!("{h:>18}"));
    }
    println!("{line}");
    println!("{}", "-".repeat(line.len()));
    for row in rows {
        let mut line = format!("{:<14}", row.first().cloned().unwrap_or_default());
        for cell in &row[1..] {
            line.push_str(&format!("{cell:>18}"));
        }
        println!("{line}");
    }
}

/// Warns when measuring without optimizations.
pub fn warn_if_debug() {
    #[cfg(debug_assertions)]
    eprintln!(
        "WARNING: running a measurement binary in debug mode; use --release for meaningful numbers"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_per_guards_zero() {
        assert_eq!(us_per(Duration::from_secs(1), 0), 0.0);
        assert!((us_per(Duration::from_millis(1), 1000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rows_serialize() {
        let row = Row {
            experiment: "fig7a",
            param: "sp_ratio",
            value: "1/10".into(),
            series: "sp \"quoted\"\\".into(),
            metric: "tuples_per_ms",
            measured: 12.5,
        };
        let json = row.to_json();
        assert!(json.contains(r#""experiment":"fig7a""#), "{json}");
        assert!(json.contains(r#""series":"sp \"quoted\"\\""#), "{json}");
        assert!(json.contains(r#""measured":12.5"#), "{json}");
    }
}
