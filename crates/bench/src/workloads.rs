//! Workload construction for the evaluation binaries.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use sp_core::{
    RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, Timestamp, Tuple,
    TupleId, Value, ValueType,
};
use sp_mog::{location_stream, Workload, WorkloadConfig};

/// The Fig. 7 workload: moving-object location updates with
/// tuple-granularity (object-block-scoped) policies at the given sp:tuple
/// ratio and policy size. 200 objects so that every paper ratio (1/1 …
/// 1/100) divides the object count, keeping segment blocks contiguous.
#[must_use]
pub fn fig7_workload(sp_every: usize, policy_roles: u32, selectivity: f64, seed: u64) -> Workload {
    location_stream(&WorkloadConfig {
        objects: 200,
        ticks: 50,
        sp_every,
        policy_roles,
        role_universe: (policy_roles * 4).max(128),
        grant_selectivity: selectivity,
        scoped_sps: true,
        tick_ms: 50,
        burst: None,
        seed,
    })
}

/// A smaller workload for the Fig. 8 operator comparison.
#[must_use]
pub fn fig8_workload(sp_every: usize, seed: u64) -> Workload {
    location_stream(&WorkloadConfig {
        objects: 200,
        ticks: 50,
        sp_every,
        policy_roles: 3,
        role_universe: 600,
        grant_selectivity: 0.5,
        scoped_sps: false,
        tick_ms: 50,
        burst: None,
        seed,
    })
}

/// The Fig. 9 join workload: two streams of `(obj_id, region)` tuples whose
/// segment policies are pairwise compatible with probability `sigma_sp`.
///
/// Left segments always carry the probe role 0 plus private roles from
/// `1..50`; right segments carry role 0 with probability `sigma_sp` plus
/// private roles from `50..100`. A left/right pair is therefore compatible
/// exactly when the right segment drew role 0.
pub struct JoinWorkload {
    /// Interleaved `(port, element)` feed, timestamp-ordered.
    pub feed: Vec<(usize, StreamElement)>,
    /// Total data tuples (both streams).
    pub tuples: usize,
    /// Schema shared by both streams.
    pub schema: Arc<Schema>,
}

/// Builds the Fig. 9 workload.
#[must_use]
pub fn fig9_workload(sigma_sp: f64, tuples_per_side: usize, seed: u64) -> JoinWorkload {
    let schema =
        Schema::of("RegionUpdates", &[("obj_id", ValueType::Int), ("region", ValueType::Int)]);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut feed = Vec::with_capacity(tuples_per_side * 2 + tuples_per_side / 4);
    let sp_every = 10usize;
    let mut since = [usize::MAX, usize::MAX];
    for i in 0..tuples_per_side * 2 {
        let port = i % 2;
        let ts = Timestamp(i as u64 * 10);
        if since[port] >= sp_every {
            let mut roles = RoleSet::new();
            if port == 0 {
                roles.insert(RoleId(0));
                roles.insert(RoleId(rng.gen_range(1..50)));
            } else {
                if rng.gen_bool(sigma_sp.clamp(0.0, 1.0)) {
                    roles.insert(RoleId(0));
                }
                roles.insert(RoleId(rng.gen_range(50..100)));
            }
            feed.push((
                port,
                StreamElement::punctuation(SecurityPunctuation::grant_all(
                    roles,
                    Timestamp(ts.millis().saturating_sub(1)),
                )),
            ));
            since[port] = 0;
        }
        let obj = rng.gen_range(0..500u64);
        let region = (obj % 25) as i64;
        feed.push((
            port,
            StreamElement::tuple(Tuple::new(
                StreamId(1 + port as u32),
                TupleId(obj),
                ts,
                vec![Value::Int(obj as i64), Value::Int(region)],
            )),
        ));
        since[port] += 1;
    }
    JoinWorkload { feed, tuples: tuples_per_side * 2, schema }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_ratios_hold() {
        let w = fig7_workload(25, 3, 0.5, 1);
        assert_eq!(w.tuples, 10_000);
        assert_eq!(w.sps, 400);
    }

    #[test]
    fn fig9_extremes() {
        let zero = fig9_workload(0.0, 200, 2);
        let one = fig9_workload(1.0, 200, 2);
        assert_eq!(zero.tuples, 400);
        // σ=0: no right punctuation carries role 0.
        let right_has_probe = |w: &JoinWorkload| {
            w.feed.iter().any(|(port, e)| {
                *port == 1
                    && e.as_punctuation().is_some_and(|sp| {
                        sp.srp.resolve(&sp_core::RoleCatalog::new()).contains(RoleId(0))
                    })
            })
        };
        assert!(!right_has_probe(&zero));
        assert!(right_has_probe(&one));
    }
}
