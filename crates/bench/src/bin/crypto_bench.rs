//! Four-way mechanism comparison with the crypto-enforced path included
//! (the outsourced-enforcement cost table), writing a machine-readable
//! summary to `target/BENCH_crypto.json`.
//!
//! Doubles as a **release lint**: on a clean workload the crypto-enforced
//! mechanism must release exactly the same tuple multiset as the
//! security-punctuation mechanism — release is a cryptographic fact, and
//! any divergence from the plaintext shield's decisions means a broken
//! capsule schedule or an unsound client. Divergence exits nonzero,
//! failing CI.
//!
//! Usage: `cargo run --release -p sp-bench --bin crypto_bench`

use std::collections::HashMap;
use std::sync::Arc;

use sp_baselines::{run_mechanism, CryptoEnforced, SpMechanism};
use sp_bench::mechanisms::{all_mechanisms, catalog, drive, probe_roles, MechRun, IN_FLIGHT};
use sp_bench::workloads::fig7_workload;
use sp_bench::{log_rows, print_table, us_per, warn_if_debug, Row};
use sp_core::Tuple;

/// sp:tuple = 1/25, 3-role policies, 50% selectivity — the paper's
/// middle-of-the-road Fig. 7 point.
const SP_EVERY: usize = 25;
const POLICY_ROLES: u32 = 3;
const SELECTIVITY: f64 = 0.5;
const SEED: u64 = 0xC1F4;

fn multiset(tuples: &[Arc<Tuple>]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for t in tuples {
        *m.entry(t.tid.raw()).or_insert(0u64) += 1;
    }
    m
}

fn main() {
    warn_if_debug();
    let workload = fig7_workload(SP_EVERY, POLICY_ROLES, SELECTIVITY, SEED);
    let catalog = catalog(128);

    // -- timing sweep: best of 3 per mechanism, fresh instance each run --
    let n = all_mechanisms(&catalog, &workload.schema, &probe_roles()).len();
    let mut best: Vec<MechRun> = Vec::with_capacity(n);
    for idx in 0..n {
        let mut fastest: Option<MechRun> = None;
        for _ in 0..3 {
            let mut mechs = all_mechanisms(&catalog, &workload.schema, &probe_roles());
            let mut mech = mechs.swap_remove(idx);
            let run = drive(mech.as_mut(), &workload.elements);
            if fastest.as_ref().is_none_or(|b| run.elapsed < b.elapsed) {
                fastest = Some(run);
            }
        }
        best.push(fastest.expect("three runs"));
    }

    let rows: Vec<Vec<String>> = best
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{:.3}", us_per(r.elapsed, workload.tuples as u64)),
                r.released.to_string(),
                r.denied.to_string(),
                format!("{:.1}", r.policy_mem as f64 / 1024.0),
            ]
        })
        .collect();
    print_table(
        "crypto bench: four-way mechanism comparison",
        &["mechanism", "us/tuple", "released", "denied", "policy KB"],
        &rows,
    );

    log_rows(
        &best
            .iter()
            .map(|r| Row {
                experiment: "crypto_bench",
                param: "mechanism",
                value: r.name.into(),
                series: "clean".into(),
                metric: "us_per_tuple",
                measured: us_per(r.elapsed, workload.tuples as u64),
            })
            .collect::<Vec<_>>(),
    );

    // -- release lint: crypto-enforced vs security-punctuations multiset --
    let mut sp_mech =
        SpMechanism::new(catalog.clone(), workload.schema.clone(), probe_roles(), IN_FLIGHT);
    let sp_out = run_mechanism(&mut sp_mech, workload.elements.iter().cloned());
    let mut crypto =
        CryptoEnforced::new(catalog.clone(), workload.schema.clone(), probe_roles(), IN_FLIGHT);
    let crypto_out = run_mechanism(&mut crypto, workload.elements.iter().cloned());
    let sp_set = multiset(&sp_out);
    let crypto_set = multiset(&crypto_out);
    let multiset_ok = sp_set == crypto_set;
    let unauth = crypto.client().released_unauthenticated();

    let crypto_run = best.iter().find(|r| r.name == "crypto-enforced").expect("crypto run");
    let sp_run = best.iter().find(|r| r.name == "security-punctuations").expect("sp run");
    let overhead = crypto_run.elapsed.as_secs_f64() / sp_run.elapsed.as_secs_f64().max(1e-9);

    println!("\n  sp released            {:>10}", sp_out.len());
    println!("  crypto released        {:>10}", crypto_out.len());
    println!("  multiset identical     {multiset_ok:>10}");
    println!("  unauthenticated rel.   {unauth:>10}");
    println!("  crypto/sp cost ratio   {overhead:>9.2}x");
    println!("  relay frames           {:>10}", crypto.relay().forwarded);
    println!("  relay ciphertext KB    {:>10.1}", crypto.relay().bytes as f64 / 1024.0);

    if std::fs::create_dir_all("target").is_ok() {
        let mut per_mech = String::new();
        for (i, r) in best.iter().enumerate() {
            if i > 0 {
                per_mech.push_str(",\n");
            }
            per_mech.push_str(&format!(
                concat!(
                    "    {{\"mechanism\": \"{}\", \"us_per_tuple\": {:.3}, ",
                    "\"released\": {}, \"denied\": {}, \"policy_mem_bytes\": {}}}"
                ),
                r.name,
                us_per(r.elapsed, workload.tuples as u64),
                r.released,
                r.denied,
                r.policy_mem,
            ));
        }
        let json = format!(
            concat!(
                "{{\n  \"experiment\": \"crypto_bench\",\n",
                "  \"tuples\": {},\n  \"sp_every\": {},\n",
                "  \"mechanisms\": [\n{}\n  ],\n",
                "  \"multiset_identical\": {},\n",
                "  \"released_unauthenticated\": {},\n",
                "  \"crypto_over_sp_cost\": {:.3},\n",
                "  \"relay_frames\": {},\n  \"relay_bytes\": {}\n}}\n"
            ),
            workload.tuples,
            SP_EVERY,
            per_mech,
            multiset_ok,
            unauth,
            overhead,
            crypto.relay().forwarded,
            crypto.relay().bytes,
        );
        let _ = std::fs::write("target/BENCH_crypto.json", json);
        println!("  wrote target/BENCH_crypto.json");
    }

    if !multiset_ok {
        eprintln!(
            "LINT FAILURE: crypto-enforced released a different tuple multiset than \
             security-punctuations on a clean workload ({} vs {} distinct tids)",
            crypto_set.len(),
            sp_set.len(),
        );
        std::process::exit(1);
    }
    if unauth != 0 {
        eprintln!("LINT FAILURE: {unauth} frames released without authentication");
        std::process::exit(1);
    }
}
