//! Lints a Prometheus text exposition file and exits nonzero on any
//! violation — CI's check that the engine's metrics endpoint speaks
//! valid exposition format and carries the precomputed p50/p90/p99
//! quantile gauges next to every histogram family.
//!
//! Usage: `cargo run -p sp-bench --bin promlint -- [path]`
//!
//! `path` defaults to `target/telemetry.prom`, which `fig7 t` writes.

use std::process::ExitCode;

use sp_bench::prom::{lint, lint_quantiles};

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| "target/telemetry.prom".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("promlint: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut errors = lint(&text);
    errors.extend(lint_quantiles(&text));
    if errors.is_empty() {
        let samples = text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')).count();
        println!("promlint: {path} OK ({samples} samples)");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("promlint: {path}: {e}");
        }
        eprintln!("promlint: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}
