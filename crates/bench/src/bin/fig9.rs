//! Figure 9: nested-loop vs index SAJoin with varying sp selectivity
//! (§VII-D).
//!
//! For σ_sp ∈ {0, 0.1, 0.5, 1} the harness reports, per 100 input tuples,
//! the total processing time and its breakdown into join time, sp
//! maintenance and tuple maintenance — the exact bars of the paper's
//! Fig. 9. The filter-and-probe nested-loop variant (§V-B.1) is included
//! as the ablation between plain nested loop and the SPIndex.
//!
//! Usage: `cargo run --release -p sp-bench --bin fig9 [-- tuples_per_side]`

use sp_bench::workloads::fig9_workload;
use sp_bench::{log_rows, print_table, us_per, warn_if_debug, Row};
use sp_engine::{CostKind, Element, Emitter, JoinVariant, Operator, SAJoin, SpAnalyzer};

const SIGMAS: [f64; 4] = [0.0, 0.1, 0.5, 1.0];
const WINDOW_MS: u64 = 4000;

fn main() {
    warn_if_debug();
    let tuples_per_side: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4000);

    let mut table = Vec::new();
    let mut rows = Vec::new();
    for sigma in SIGMAS {
        let workload = fig9_workload(sigma, tuples_per_side, 7);
        // Resolve punctuations once per side so operator time excludes the
        // analyzer.
        let mut catalog = sp_core::RoleCatalog::new();
        catalog.register_synthetic_roles(128);
        let catalog = std::sync::Arc::new(catalog);
        let mut analyzers = [
            SpAnalyzer::new(workload.schema.clone(), catalog.clone()),
            SpAnalyzer::new(workload.schema.clone(), catalog.clone()),
        ];
        let mut feed: Vec<(usize, Element)> = Vec::with_capacity(workload.feed.len());
        let mut staged = Vec::new();
        for (port, elem) in &workload.feed {
            staged.clear();
            analyzers[*port].push(elem.clone(), &mut staged);
            for e in staged.drain(..) {
                feed.push((*port, e));
            }
        }

        for variant in [JoinVariant::NestedLoopPF, JoinVariant::NestedLoopFP, JoinVariant::Index] {
            // Best of three runs (fresh operator each time).
            let mut best: Option<(SAJoin, u64)> = None;
            for _ in 0..3 {
                let mut join = SAJoin::new(variant, WINDOW_MS, 1, 1, 2);
                let mut emitter = Emitter::new();
                let mut results = 0u64;
                for (port, elem) in &feed {
                    join.process(*port, elem.clone(), &mut emitter).expect("bench join failed");
                    results += emitter.take().iter().filter(|e| e.is_tuple()).count() as u64;
                }
                let better = best
                    .as_ref()
                    .is_none_or(|(b, _)| join.stats().total_time() < b.stats().total_time());
                if better {
                    best = Some((join, results));
                }
            }
            let (join, results) = best.expect("three runs");
            let stats = join.stats();
            let per100 = |k: CostKind| us_per(stats.time(k), workload.tuples as u64) * 100.0;
            let join_us = per100(CostKind::Join);
            let sp_us = per100(CostKind::SpMaintenance);
            let tuple_us = per100(CostKind::TupleMaintenance);
            let total_us = join_us + sp_us + tuple_us;
            let name = match variant {
                JoinVariant::NestedLoopPF => "nested-PF",
                JoinVariant::NestedLoopFP => "nested-FP",
                JoinVariant::Index => "index",
            };
            for (metric, v) in [
                ("total_us_per_100", total_us),
                ("join_us_per_100", join_us),
                ("sp_maint_us_per_100", sp_us),
                ("tuple_maint_us_per_100", tuple_us),
            ] {
                rows.push(Row {
                    experiment: "fig9",
                    param: "sigma_sp",
                    value: format!("{sigma}"),
                    series: name.into(),
                    metric,
                    measured: v,
                });
            }
            table.push(vec![
                format!("σ={sigma} {name}"),
                format!("{total_us:.1}"),
                format!("{join_us:.1}"),
                format!("{sp_us:.1}"),
                format!("{tuple_us:.1}"),
                format!("{results}"),
            ]);
        }
    }
    print_table(
        "Fig 9: SAJoin cost (µs per 100 tuples) with varying sp selectivity",
        &["", "total", "join", "sp maint", "tuple maint", "results"],
        &table,
    );
    log_rows(&rows);
}
