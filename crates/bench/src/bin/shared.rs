//! Multi-query optimization ablation (§VI-C, Fig. 5).
//!
//! N queries with different roles run the same expensive select over one
//! stream. Three deployments are compared:
//!
//! 1. **separate** — each query runs its own copy of the subplan with its
//!    own Security Shield (no sharing);
//! 2. **shared** — one subplan instance, per-query shields at the top;
//! 3. **merged** — one subplan instance with a *merged* shield (the union
//!    of all predicates, Rule 1) at the bottom and the per-query shields
//!    splitting at the top — the paper's "merge at the beginning, split at
//!    the end".
//!
//! All three must release identical per-query results; the harness prints
//! total engine time for each and the optimizer's own merge decision.
//!
//! Usage: `cargo run --release -p sp-bench --bin shared [-- n_queries]`

use std::sync::Arc;
use std::time::Instant;

use sp_bench::workloads::fig8_workload;
use sp_bench::{log_rows, print_table, warn_if_debug, Row};
use sp_core::{RoleId, RoleSet, StreamElement, Value};
use sp_engine::{CmpOp, Expr, PlanBuilder, SecurityShield, Select, SinkRef};
use sp_query::{merged_predicate, CostModel, LogicalPlan, Optimizer};

fn predicate() -> Expr {
    // A moderately expensive region predicate over the location stream.
    Expr::and(
        Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Float(200.0))),
        Expr::and(
            Expr::cmp(CmpOp::Le, Expr::Attr(1), Expr::Const(Value::Float(1300.0))),
            Expr::cmp(CmpOp::Ge, Expr::Attr(2), Expr::Const(Value::Float(100.0))),
        ),
    )
}

fn catalog() -> Arc<sp_core::RoleCatalog> {
    let mut c = sp_core::RoleCatalog::new();
    c.register_synthetic_roles(600);
    Arc::new(c)
}

/// Deploys one of the three variants, returning per-query released counts
/// and the wall time of the run.
fn run(
    variant: &str,
    n_queries: u32,
    elements: &[StreamElement],
    schema: &Arc<sp_core::Schema>,
) -> (Vec<usize>, f64) {
    let mut builder = PlanBuilder::new(catalog());
    let stream = sp_core::StreamId(1);
    let mut sinks: Vec<SinkRef> = Vec::new();
    match variant {
        "separate" => {
            for q in 0..n_queries {
                let src = builder.source(stream, schema.clone());
                let sel = builder.add(Select::new(predicate()), src);
                let ss = builder.add(SecurityShield::new(RoleSet::single(RoleId(q))), sel);
                sinks.push(builder.sink(ss));
            }
        }
        "shared" => {
            let src = builder.source(stream, schema.clone());
            let sel = builder.add(Select::new(predicate()), src);
            for q in 0..n_queries {
                let ss = builder.add(SecurityShield::new(RoleSet::single(RoleId(q))), sel);
                sinks.push(builder.sink(ss));
            }
        }
        _ => {
            // merged: union shield below the shared subplan, split above.
            let merged: RoleSet = (0..n_queries).map(RoleId).collect();
            let src = builder.source(stream, schema.clone());
            let bottom = builder.add(SecurityShield::new(merged), src);
            let sel = builder.add(Select::new(predicate()), bottom);
            for q in 0..n_queries {
                let ss = builder.add(SecurityShield::new(RoleSet::single(RoleId(q))), sel);
                sinks.push(builder.sink(ss));
            }
        }
    }
    let mut exec = builder.build();
    let start = Instant::now();
    for e in elements {
        exec.push(stream, e.clone()).expect("bench plan failed");
    }
    let elapsed = start.elapsed().as_secs_f64() * 1000.0;
    let counts = sinks.iter().map(|&s| exec.sink(s).tuple_count()).collect();
    (counts, elapsed)
}

fn main() {
    warn_if_debug();
    let n_queries: u32 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(8);

    // Workload: whole-segment sps whose roles are drawn from the query
    // role range, so each query sees a different subset.
    let workload = fig8_workload(10, 21);

    let mut table = Vec::new();
    let mut rows = Vec::new();
    let mut reference: Option<Vec<usize>> = None;
    for variant in ["separate", "shared", "merged"] {
        let (counts, ms) = run(variant, n_queries, &workload.elements, &workload.schema);
        match &reference {
            None => reference = Some(counts.clone()),
            Some(r) => assert_eq!(&counts, r, "{variant} changed per-query results"),
        }
        let total: usize = counts.iter().sum();
        table.push(vec![variant.to_owned(), format!("{ms:.1}"), format!("{total}")]);
        rows.push(Row {
            experiment: "shared",
            param: "variant",
            value: variant.to_owned(),
            series: format!("{n_queries}q"),
            metric: "total_ms",
            measured: ms,
        });
    }
    print_table(
        &format!("Multi-query sharing ({n_queries} queries over one select)"),
        &["variant", "engine ms", "released"],
        &table,
    );
    log_rows(&rows);

    // The optimizer's own §VI-C merge decision for this shape.
    let predicates: Vec<RoleSet> = (0..n_queries).map(|q| RoleSet::single(RoleId(q))).collect();
    let shared_plan = LogicalPlan::Select {
        predicate: predicate(),
        input: Box::new(LogicalPlan::Scan {
            stream: sp_core::StreamId(1),
            schema: workload.schema.clone(),
            window_ms: 10_000,
        }),
    };
    let optimizer = Optimizer::new(CostModel::default());
    let (merged, worthwhile) = optimizer.shared_shield(&predicates, &shared_plan);
    println!(
        "\noptimizer decision: merge {} predicates into ψ{merged} below the shared subplan: {}",
        predicates.len(),
        if worthwhile { "YES" } else { "no" }
    );
    let _ = merged_predicate(&predicates);
}
