//! Figure 10 (substrate extension, §VIII outlook): security-aware
//! overload management under sustained offered load.
//!
//! Sweeps offered load at 1×, 2× and 4× of the shedder's drain capacity
//! (stream-time arrival compression via the workload's burst shaping) and
//! reports, per load level:
//!
//! * **throughput** — tuples the plan processed per wall-clock second;
//! * **shed ratio** — fraction of offered tuples the semantic load
//!   shedder discarded (sps are control traffic and are never shed);
//! * **p99 enqueue latency** — 99th-percentile wall time of a single
//!   `push` into the plan;
//! * the **admission controller's** rejections at the ingestion boundary
//!   and the **degradation ladder's** peak rung / transition counts.
//!
//! Results go to stdout, `target/bench-results.jsonl` (per-metric rows)
//! and `target/BENCH_overload.json` (one machine-readable document).
//!
//! Usage: `cargo run --release -p sp-bench --bin fig10`

use std::io::Write as _;
use std::time::Instant;

use sp_bench::{log_rows, print_table, warn_if_debug, Row};
use sp_core::{RoleSet, StreamElement};
use sp_engine::{
    AdmissionConfig, AdmissionController, DegradationStats, Histogram, PlanBuilder,
    QuarantinePolicy, SecurityShield, ShedPolicy, Shedder, ShedderConfig, WatermarkConfig,
};
use sp_mog::{location_stream, BurstConfig, WorkloadConfig};

/// Virtual-queue drain rate of the shedder under test.
const DRAIN_PER_MS: u64 = 2;
/// (arrival amplitude in tuples per stream-ms, label) — relative to
/// `DRAIN_PER_MS` these are 1×, 2× and 4× offered load.
const LOADS: [(u64, &str); 3] = [(2, "1x"), (4, "2x"), (8, "4x")];
/// Admission budget: 4 tuples per stream-ms with a burst allowance, so
/// the 4× load is the first to overrun the ingestion boundary.
const ADMIT_TOKENS_PER_SEC: u64 = 4_000;

struct LoadResult {
    label: &'static str,
    amplitude: u64,
    offered: u64,
    released: u64,
    admission_rejected: u64,
    throughput_ktps: f64,
    p99_enqueue_us: f64,
    deg: DegradationStats,
}

impl LoadResult {
    fn shed_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.deg.shed_tuples as f64 / self.offered as f64
        }
    }
}

fn workload(amplitude: u64) -> sp_mog::Workload {
    location_stream(&WorkloadConfig {
        objects: 40,
        ticks: 60,
        sp_every: 20,
        policy_roles: 3,
        role_universe: 64,
        grant_selectivity: 1.0,
        scoped_sps: false,
        tick_ms: 100,
        // Permanently ON: a *sustained* offered load, not an episode.
        burst: Some(BurstConfig { on_ticks: 1, off_ticks: 0, amplitude }),
        seed: 0x10AD,
    })
}

fn shed_cfg() -> ShedderConfig {
    ShedderConfig {
        capacity: 96,
        drain_per_ms: DRAIN_PER_MS,
        watermarks: WatermarkConfig::default(),
        policy: ShedPolicy::RandomP { p: 0.5, seed: 0x000F_1610 },
    }
}

fn run_load(amplitude: u64, label: &'static str) -> LoadResult {
    let w = workload(amplitude);
    let catalog = {
        let mut c = sp_core::RoleCatalog::new();
        c.register_synthetic_roles(128);
        std::sync::Arc::new(c)
    };
    let mut b = PlanBuilder::new(catalog);
    let src = b.source(w.stream, w.schema.clone());
    b.harden_source(src, QuarantinePolicy { ttl_ms: 500, slack_ms: 400, capacity: 1_024 });
    let sh = b.add(Shedder::new(shed_cfg()), src);
    let q = b.add(SecurityShield::new(RoleSet::from([0])), sh);
    let sink = b.sink(q);
    let mut exec = b.build();

    let mut admission = AdmissionController::new(AdmissionConfig {
        tokens_per_sec: ADMIT_TOKENS_PER_SEC,
        burst: 64,
        enqueue_deadline_ms: 10,
    });

    // Telemetry-style log-scale histogram: constant memory regardless of
    // run length, and the same percentile machinery the engine exports.
    let mut push_ns = Histogram::new();
    let start = Instant::now();
    for e in &w.elements {
        let is_tuple = matches!(e, StreamElement::Tuple(_));
        if admission.admit(w.stream, is_tuple, e.ts()).is_err() {
            continue; // refused at the boundary, never enqueued
        }
        let t0 = Instant::now();
        let _ = exec.push(w.stream, e.clone());
        push_ns.record(t0.elapsed().as_nanos() as u64);
    }
    let _ = exec.finish();
    let elapsed = start.elapsed();

    let p99 = push_ns.percentile(99.0) as f64 / 1_000.0;

    let mut deg = exec.degradation();
    deg.absorb(&admission.degradation());
    LoadResult {
        label,
        amplitude,
        offered: w.tuples as u64,
        released: exec.sink(sink).tuple_count() as u64,
        admission_rejected: admission.rejected(),
        throughput_ktps: w.tuples as f64 / elapsed.as_secs_f64().max(1e-9) / 1_000.0,
        p99_enqueue_us: p99,
        deg,
    }
}

/// Renders the whole sweep as one JSON document (hand-rolled: flat
/// numeric fields only, no escaping needed beyond the fixed labels).
fn to_json(results: &[LoadResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"fig10_overload\",\n");
    out.push_str(&format!("  \"drain_per_ms\": {DRAIN_PER_MS},\n"));
    out.push_str("  \"loads\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"offered\": \"{}\", \"amplitude\": {}, \"tuples\": {}, ",
                "\"released\": {}, \"shed_tuples\": {}, \"shed_critical\": {}, ",
                "\"shed_ratio\": {:.4}, \"admission_rejected\": {}, ",
                "\"throughput_ktuples_per_s\": {:.2}, \"p99_enqueue_us\": {:.2}, ",
                "\"overload_peak\": {}, \"ladder_escalations\": {}, ",
                "\"ladder_recoveries\": {}}}{}\n"
            ),
            r.label,
            r.amplitude,
            r.offered,
            r.released,
            r.deg.shed_tuples,
            r.deg.shed_critical,
            r.shed_ratio(),
            r.admission_rejected,
            r.throughput_ktps,
            r.p99_enqueue_us,
            r.deg.overload_peak,
            r.deg.ladder_escalations,
            r.deg.ladder_recoveries,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    warn_if_debug();
    let results: Vec<LoadResult> = LOADS.iter().map(|&(amp, label)| run_load(amp, label)).collect();

    let header =
        ["load", "throughput kt/s", "shed ratio", "p99 push µs", "admit rejected", "peak rung"];
    let table: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.1}", r.throughput_ktps),
                format!("{:.3}", r.shed_ratio()),
                format!("{:.2}", r.p99_enqueue_us),
                r.admission_rejected.to_string(),
                r.deg.overload_peak.to_string(),
            ]
        })
        .collect();
    print_table("Fig 10: overload management vs offered load (×drain capacity)", &header, &table);

    println!("\nFig 10r: per-load degradation (fail-closed loss accounting)");
    for r in &results {
        println!("  [{}] released {} of {} tuples", r.label, r.released, r.offered);
        println!("  [{}] {}", r.label, r.deg);
    }

    let mut rows = Vec::new();
    for r in &results {
        let mk = |metric: &'static str, measured: f64| Row {
            experiment: "fig10",
            param: "offered_load",
            value: r.label.to_string(),
            series: "sp-overload".into(),
            metric,
            measured,
        };
        rows.push(mk("throughput_ktuples_per_s", r.throughput_ktps));
        rows.push(mk("shed_ratio", r.shed_ratio()));
        rows.push(mk("p99_enqueue_us", r.p99_enqueue_us));
        rows.push(mk("admission_rejected", r.admission_rejected as f64));
        rows.push(mk("overload_peak", r.deg.overload_peak as f64));
        rows.push(mk("ladder_escalations", r.deg.ladder_escalations as f64));
        rows.push(mk("ladder_recoveries", r.deg.ladder_recoveries as f64));
    }
    log_rows(&rows);

    let json = to_json(&results);
    if std::fs::create_dir_all("target").is_ok() {
        if let Ok(mut f) = std::fs::File::create("target/BENCH_overload.json") {
            let _ = f.write_all(json.as_bytes());
            println!("\nwrote target/BENCH_overload.json");
        }
    }
}
