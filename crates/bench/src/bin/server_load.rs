//! Server soak: the network front door at 2× admission capacity under a
//! disconnect storm.
//!
//! A fleet of tenants replays punctuated location streams through
//! `sp-server`, each client deliberately dropping its connection every
//! few frames (and reconnecting through the `HelloAck` cursor), while
//! per-tenant stream-time admission control is provisioned at half the
//! offered rate. The run must show, despite all of that:
//!
//! * **zero sp loss** — policy punctuations bypass shedding, so every
//!   tenant ingests exactly the sps its client offered;
//! * **exactly-once data** — every tenant's cursor ends at its input
//!   length: reconnects never duplicate or drop elements;
//! * **bounded p99 handling latency** — the server-side frame round trip
//!   (decode → admission verdict → reply) stays under the bound;
//! * **clean drain** — every tenant checkpoints on shutdown.
//!
//! Writes `target/BENCH_server.json` and exits nonzero on any violation,
//! so CI can gate on it.
//!
//! Usage: `cargo run --release -p sp-bench --bin server_load [-- tenants]`

use std::sync::Arc;
use std::time::Instant;

use sp_core::{StreamElement, StreamId};
use sp_engine::{AdmissionConfig, TelemetryConfig};
use sp_mog::{location_stream, MovingObjectSim, WorkloadConfig};
use sp_query::Dsms;
use sp_server::{ClientConfig, LoadClient, Server, ServerConfig, SessionFactory, StoreMap};

/// p99 bound on the server-side frame handling latency, microseconds.
const P99_BOUND_US: u64 = 500_000;

fn factory() -> SessionFactory {
    Arc::new(|tenant: u32| {
        let mut dsms = Dsms::new();
        dsms.register_stream(StreamId(1), MovingObjectSim::location_schema())
            .expect("stream registers");
        dsms.register_role("analyst").expect("role registers");
        let subject = dsms
            .register_subject(&format!("tenant-{tenant}"), &["analyst"])
            .expect("subject registers");
        dsms.submit("SELECT obj_id, speed FROM LocationUpdates WHERE speed >= 5.0", subject)
            .expect("query plans");
        // Clients restamp at 1 ms/element (1000 elements per stream
        // second); 500 tokens/s provisions exactly half the offered
        // rate — the soak runs at 2× admission capacity.
        dsms.admission =
            Some(AdmissionConfig { tokens_per_sec: 500, burst: 64, enqueue_deadline_ms: 20 });
        dsms.telemetry = Some(TelemetryConfig::enabled());
        dsms
    })
}

fn main() {
    let tenants: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(24);

    let cfg =
        ServerConfig { max_conns: 512, checkpoint_every_frames: 32, ..ServerConfig::default() };
    let handle = Server::start(cfg, factory(), StoreMap::new()).expect("server binds");
    let addr = handle.addr;

    let start = Instant::now();
    let mut joins = Vec::new();
    let mut expected: Vec<(u32, usize, usize)> = Vec::new(); // tenant, elements, sps
    for tenant in 0..tenants {
        let w = location_stream(&WorkloadConfig {
            objects: 40,
            ticks: 20,
            sp_every: 8,
            grant_selectivity: 0.6,
            seed: 100 + u64::from(tenant),
            ..WorkloadConfig::default()
        });
        expected.push((tenant, w.elements.len(), w.sps));
        let input: Vec<(StreamId, StreamElement)> =
            w.elements.into_iter().map(|e| (w.stream, e)).collect();
        joins.push(std::thread::spawn(move || {
            let client = LoadClient::new(ClientConfig {
                tenant,
                frame_elements: 8,
                restamp_tick_ms: 1,
                disconnect_every_frames: 2, // the storm
                max_reconnects: 10_000,
                ..ClientConfig::default()
            });
            (tenant, client.run(addr, &input))
        }));
    }

    let mut violations: Vec<String> = Vec::new();
    let mut reconnects = 0u64;
    let mut overloads = 0u64;
    for j in joins {
        let (tenant, r) = j.join().expect("client thread");
        reconnects += u64::from(r.reconnects);
        overloads += r.overloads;
        if !r.completed {
            violations.push(format!("tenant {tenant}: client did not complete: {r:?}"));
        }
        if r.quarantined.is_some() {
            violations.push(format!("tenant {tenant}: unexpected quarantine: {r:?}"));
        }
    }
    let wall = start.elapsed();

    let report = handle.drain();
    if !report.clean {
        violations.push("drain was not clean".to_string());
    }
    let mut shed_total = 0u64;
    for (tenant, elements, sps) in &expected {
        let Some(t) = report.tenant(*tenant) else {
            violations.push(format!("tenant {tenant}: no drain report"));
            continue;
        };
        if t.sps_ingested != *sps as u64 {
            violations.push(format!(
                "tenant {tenant}: SP LOSS — {} of {} sps ingested",
                t.sps_ingested, sps
            ));
        }
        if t.input_pos != *elements as u64 {
            violations.push(format!(
                "tenant {tenant}: cursor {} != input {elements} (duplicate or hole)",
                t.input_pos
            ));
        }
        if t.quarantined {
            violations.push(format!("tenant {tenant}: quarantined at drain"));
        }
        if t.checkpoints_taken == 0 {
            violations.push(format!("tenant {tenant}: no checkpoint taken"));
        }
        shed_total += t.admission_rejected;
    }
    if report.connections_total < 1_000 {
        violations.push(format!(
            "only {} connections — the storm must exercise >= 1000",
            report.connections_total
        ));
    }
    let p50 = report.latency.percentile(50.0);
    let p99 = report.latency.percentile(99.0);
    if p99 > P99_BOUND_US {
        violations.push(format!("p99 frame handling {p99}us exceeds {P99_BOUND_US}us"));
    }
    if shed_total == 0 {
        violations.push("no shedding at 2x capacity — the limit never bound".to_string());
    }

    println!("server soak: {tenants} tenants at 2x admission capacity, disconnect storm");
    println!("  connections        {:>10}", report.connections_total);
    println!("  reconnects         {reconnects:>10}");
    println!("  frames             {:>10}", report.frames);
    println!("  overload replies   {overloads:>10}");
    println!("  tuples shed        {shed_total:>10}");
    println!("  frame handle p50   {p50:>10} us");
    println!("  frame handle p99   {p99:>10} us  (bound {P99_BOUND_US})");
    println!("  clean drain        {:>10}", report.clean);
    println!("  wall time          {:>10.2} s", wall.as_secs_f64());

    if std::fs::create_dir_all("target").is_ok() {
        let json = format!(
            concat!(
                "{{\n  \"experiment\": \"server_load\",\n",
                "  \"tenants\": {},\n  \"connections\": {},\n",
                "  \"reconnects\": {},\n  \"frames\": {},\n",
                "  \"overload_replies\": {},\n  \"tuples_shed\": {},\n",
                "  \"sp_loss\": 0,\n",
                "  \"frame_handle_p50_us\": {},\n  \"frame_handle_p99_us\": {},\n",
                "  \"p99_bound_us\": {},\n  \"clean_drain\": {},\n",
                "  \"wall_s\": {:.3},\n  \"violations\": {}\n}}\n"
            ),
            tenants,
            report.connections_total,
            reconnects,
            report.frames,
            overloads,
            shed_total,
            p50,
            p99,
            P99_BOUND_US,
            report.clean,
            wall.as_secs_f64(),
            violations.len(),
        );
        let _ = std::fs::write("target/BENCH_server.json", json);
        println!("  wrote target/BENCH_server.json");
    }

    if !violations.is_empty() {
        eprintln!("\n{} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("OK: zero sp loss, exactly-once delivery, bounded p99, clean drain.");
}
