//! Failover drill: kill the primary under a multi-tenant soak, promote
//! the standby, and prove nothing was lost in the switch.
//!
//! A fleet of tenants replays punctuated location streams through a
//! replicating `sp-server` primary. Two thirds of the way through the
//! stream the primary is hard-killed (no final checkpoints — a crash),
//! the standby is promoted under a higher fencing epoch, and every
//! client re-homes to it through its `failover` address, resuming from
//! the server-authoritative `HelloAck` cursor. The run must show:
//!
//! * **zero sp loss** — every security punctuation in the replayed tail
//!   is re-ingested by the promoted node; none vanish in the switch;
//! * **exactly-once data** — every tenant's cursor ends at its input
//!   length despite the crash and re-home;
//! * **byte-identical audit trail** — each promoted tenant's audit
//!   equals an unfailed control resumed from the same replicated
//!   checkpoint: failover adds zero divergence over plain recovery;
//! * **identical policy state** — analyzer and operator bytes of the
//!   promoted drain checkpoint match the control's cut.
//!
//! Writes `target/BENCH_failover.json` and exits nonzero on any
//! violation, so CI can gate on it.
//!
//! Usage: `cargo run --release -p sp-bench --bin failover_drill [-- tenants]`

use std::sync::Arc;
use std::time::Instant;

use sp_core::{StreamElement, StreamId};
use sp_engine::{Checkpoint, CheckpointStore, MemStore, TelemetryConfig};
use sp_mog::{location_stream, MovingObjectSim, WorkloadConfig};
use sp_query::Dsms;
use sp_server::{
    ClientConfig, LoadClient, Server, ServerConfig, SessionFactory, Standby, StoreMap,
};

fn factory() -> SessionFactory {
    Arc::new(|tenant: u32| {
        let mut dsms = Dsms::new();
        dsms.register_stream(StreamId(1), MovingObjectSim::location_schema())
            .expect("stream registers");
        dsms.register_role("analyst").expect("role registers");
        let subject = dsms
            .register_subject(&format!("tenant-{tenant}"), &["analyst"])
            .expect("subject registers");
        dsms.submit("SELECT obj_id, speed FROM LocationUpdates WHERE speed >= 5.0", subject)
            .expect("query plans");
        dsms.telemetry = Some(TelemetryConfig::enabled());
        dsms
    })
}

fn tenant_input(tenant: u32) -> Vec<(StreamId, StreamElement)> {
    let w = location_stream(&WorkloadConfig {
        objects: 40,
        ticks: 20,
        sp_every: 8,
        grant_selectivity: 0.6,
        seed: 300 + u64::from(tenant),
        ..WorkloadConfig::default()
    });
    w.elements.into_iter().map(|e| (w.stream, e)).collect()
}

/// The unfailed control: resume from the replicated checkpoint, replay
/// the input tail, capture released/audit and a fresh policy cut.
struct Control {
    released: Vec<(u32, Vec<String>)>,
    audit: Vec<u8>,
    analyzers: Vec<Vec<u8>>,
    nodes: Vec<Vec<u8>>,
    tail_sps: u64,
}

fn control(
    f: &SessionFactory,
    tenant: u32,
    ckpt: Option<&Checkpoint>,
    input: &[(StreamId, StreamElement)],
) -> Control {
    let dsms = f(tenant);
    let mut store = MemStore::new();
    if let Some(c) = ckpt {
        store.save(c).expect("mem save");
    }
    let mut running = dsms.resume(&store).expect("replicated checkpoint resumes");
    let from = usize::try_from(running.input_pos()).expect("pos fits").min(input.len());
    let tail_sps =
        input[from..].iter().filter(|(_, e)| matches!(e, StreamElement::Punctuation(_))).count()
            as u64;
    for (s, e) in &input[from..] {
        let _ = running.try_push(*s, e.clone());
    }
    let released = dsms
        .queries()
        .iter()
        .map(|q| (q.id.raw(), running.results(q.id).tuples().map(|t| t.to_string()).collect()))
        .collect();
    let audit = running.audit_trail().encode_to_vec();
    let mut cut = MemStore::new();
    running.checkpoint_to(u64::MAX, &mut cut).expect("control cut");
    let fin = cut.load_latest().expect("control cut loads");
    Control { released, audit, analyzers: fin.analyzers, nodes: fin.nodes, tail_sps }
}

fn main() {
    let tenants: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(24);
    let f = factory();

    let standby = Standby::start(Arc::clone(&f), StoreMap::new(), false).expect("standby binds");
    let cfg = ServerConfig {
        max_conns: 512,
        checkpoint_every_frames: 8,
        replicate_to: Some(standby.repl_addr),
        ..ServerConfig::default()
    };
    let primary = Server::start(cfg, Arc::clone(&f), StoreMap::new()).expect("primary binds");
    let primary_addr = primary.addr;

    let start = Instant::now();
    // Phase 1: the soak — every tenant delivers two thirds of its stream
    // to the replicating primary.
    let mut joins = Vec::new();
    for tenant in 0..tenants {
        let input = tenant_input(tenant);
        joins.push(std::thread::spawn(move || {
            let part = &input[..input.len() * 2 / 3];
            let client = LoadClient::new(ClientConfig {
                tenant,
                frame_elements: 8,
                ..ClientConfig::default()
            });
            (tenant, client.run(primary_addr, part))
        }));
    }
    let mut violations: Vec<String> = Vec::new();
    for j in joins {
        let (tenant, r) = j.join().expect("client thread");
        if !r.completed {
            violations.push(format!("tenant {tenant}: phase-1 client did not complete: {r:?}"));
        }
    }
    // Let asynchronous shipping settle — wait until every tenant has a
    // checkpoint applied at the standby (bounded; the kill is safe
    // regardless, it just makes the drill's recovery path substantial).
    let settle = Instant::now();
    while standby.applied_epochs().len() < tenants as usize
        && settle.elapsed() < std::time::Duration::from_secs(15)
    {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let max_lag = primary.replication_lag().iter().map(|(_, l)| *l).max().unwrap_or(0);
    let killed = primary.kill();
    let repl_frames = killed.repl_frames_shipped;

    // The replicated state as of the crash: per-tenant checkpoints the
    // promoted node will resume from, and the unfailed controls.
    let repl_stores = standby.stores();
    let mut controls = Vec::new();
    let mut applied = 0u32;
    for tenant in 0..tenants {
        let input = tenant_input(tenant);
        let ckpt = repl_stores.store(tenant).load_latest();
        if ckpt.is_some() {
            applied += 1;
        }
        controls.push((tenant, control(&f, tenant, ckpt.as_ref(), &input), input));
    }
    if applied < tenants {
        violations.push(format!(
            "only {applied} of {tenants} tenant checkpoints reached the standby before the kill"
        ));
    }

    // Promote and re-home the fleet: each client targets the dead
    // primary first and fails over to the promoted standby.
    let promote_start = Instant::now();
    let promoted = standby
        .promote(ServerConfig { max_conns: 512, ..ServerConfig::default() })
        .expect("promotion");
    let promote_ms = promote_start.elapsed().as_millis() as u64;
    let promoted_addr = promoted.addr;

    let mut joins = Vec::new();
    for tenant in 0..tenants {
        let input = tenant_input(tenant);
        joins.push(std::thread::spawn(move || {
            let client = LoadClient::new(ClientConfig {
                tenant,
                frame_elements: 8,
                failover: Some(promoted_addr),
                ..ClientConfig::default()
            });
            (tenant, client.run(primary_addr, &input))
        }));
    }
    let mut failovers = 0u64;
    for j in joins {
        let (tenant, r) = j.join().expect("client thread");
        failovers += u64::from(r.failovers);
        if !r.completed {
            violations.push(format!("tenant {tenant}: phase-2 client did not complete: {r:?}"));
        }
        if r.failovers != 1 {
            violations.push(format!("tenant {tenant}: expected exactly one failover: {r:?}"));
        }
    }
    let wall = start.elapsed();

    let report = promoted.drain();
    if !report.clean {
        violations.push("promoted drain was not clean".to_string());
    }
    if report.fencing_epoch < 2 {
        violations.push(format!("promoted fencing epoch {} < 2", report.fencing_epoch));
    }
    let mut audit_identical = 0u32;
    for (tenant, ctl, input) in &controls {
        let Some(t) = report.tenant(*tenant) else {
            violations.push(format!("tenant {tenant}: no drain report from promoted node"));
            continue;
        };
        if t.input_pos != input.len() as u64 {
            violations.push(format!(
                "tenant {tenant}: cursor {} != input {} (duplicate or hole)",
                t.input_pos,
                input.len()
            ));
        }
        if t.sps_ingested != ctl.tail_sps {
            violations.push(format!(
                "tenant {tenant}: SP LOSS — {} of {} replayed sps ingested",
                t.sps_ingested, ctl.tail_sps
            ));
        }
        if t.audit != ctl.audit {
            violations.push(format!("tenant {tenant}: audit trail diverged from control"));
        } else {
            audit_identical += 1;
        }
        if t.released != ctl.released {
            violations.push(format!("tenant {tenant}: released set diverged from control"));
        }
        match repl_stores.store(*tenant).load_latest() {
            Some(fin) => {
                if fin.analyzers != ctl.analyzers {
                    violations.push(format!("tenant {tenant}: policy-table bytes diverged"));
                }
                if fin.nodes != ctl.nodes {
                    violations.push(format!("tenant {tenant}: operator-state bytes diverged"));
                }
            }
            None => violations.push(format!("tenant {tenant}: no drain checkpoint")),
        }
    }

    println!("failover drill: {tenants} tenants, primary killed at 2/3 of the stream");
    println!("  repl frames shipped{repl_frames:>10}");
    println!("  repl lag at kill   {max_lag:>10} epochs (max over tenants)");
    println!("  tenants replicated {applied:>10}");
    println!("  promote time       {promote_ms:>10} ms");
    println!("  client failovers   {failovers:>10}");
    println!("  audit identical    {audit_identical:>10} / {tenants}");
    println!("  clean drain        {:>10}", report.clean);
    println!("  wall time          {:>10.2} s", wall.as_secs_f64());

    if std::fs::create_dir_all("target").is_ok() {
        let json = format!(
            concat!(
                "{{\n  \"experiment\": \"failover_drill\",\n",
                "  \"tenants\": {},\n  \"repl_frames_shipped\": {},\n",
                "  \"repl_lag_at_kill_epochs\": {},\n  \"tenants_replicated\": {},\n",
                "  \"promote_ms\": {},\n  \"client_failovers\": {},\n",
                "  \"audit_identical\": {},\n  \"sp_loss\": 0,\n",
                "  \"fencing_epoch\": {},\n  \"clean_drain\": {},\n",
                "  \"wall_s\": {:.3},\n  \"violations\": {}\n}}\n"
            ),
            tenants,
            repl_frames,
            max_lag,
            applied,
            promote_ms,
            failovers,
            audit_identical,
            report.fencing_epoch,
            report.clean,
            wall.as_secs_f64(),
            violations.len(),
        );
        let _ = std::fs::write("target/BENCH_failover.json", json);
        println!("  wrote target/BENCH_failover.json");
    }

    if !violations.is_empty() {
        eprintln!("\n{} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("OK: zero sp loss, exactly-once re-home, byte-identical audit, clean drain.");
}
