//! Figure 7: comparison of the three access-control enforcement
//! mechanisms (§VII-B).
//!
//! * 7a — output rate (tuples/ms) vs sp:tuple ratio;
//! * 7p — processing cost per tuple (µs) vs sp:tuple ratio;
//! * 7c — policy memory (KB) vs policy size |R|;
//! * 7d — processing cost per 100 tuples (µs) vs policy size |R|.
//!
//! Usage: `cargo run --release -p sp-bench --bin fig7 -- [a|p|c|d|b|r|t|x|s|all]`
//!
//! `b` measures segment-batch execution: the same select+shield-heavy
//! plan driven tuple-at-a-time vs in segment batches, reporting the
//! throughput gain (target ≥ 1.5×) and writing a machine-readable
//! summary to `target/BENCH_batch.json`. It doubles as a release lint:
//! the process exits nonzero if the batched run releases a different
//! tuple multiset than the tuple-at-a-time run.
//!
//! `r` prints the hostile-stream degradation report: the same workload is
//! replayed through the wire with seeded faults (drops, reorders, byte
//! corruption) into a hardened plan, and every fail-closed loss counter is
//! reported — nothing is dropped silently. It then reruns the workload
//! under a crash supervisor with injected pipeline kills, reporting the
//! recovery counters and the checkpoint overhead at the default epoch
//! interval (target: under 10%).
//!
//! `t` measures the telemetry layer itself: the same shielded workload
//! with the flight recorder and metrics histograms off vs on, reporting
//! the overhead (target: under 5%) and writing the Prometheus exposition
//! to `target/telemetry.prom` plus a machine-readable summary to
//! `target/BENCH_telemetry.json`.
//!
//! `x` measures the sp-trace observability plane: the same shielded
//! workload with span recording toggled off vs on at runtime, reporting
//! the overhead (target: under 5%), the span counts per causal site, and
//! the paper-grounded enforcement-lag histograms (sp arrival → shield
//! enforcement, sp → first release, revocation → first suppression). It
//! writes the Chrome trace-event export to `target/trace.json` and a
//! machine-readable summary to `target/BENCH_trace.json`, and doubles as
//! a release lint: the process exits nonzero when the overhead exceeds
//! 5% or any enforcement-lag histogram is empty on this workload.
//!
//! `s` measures key-partitioned shard scale-out: the same shield-heavy
//! plan behind the deterministic exchange at widths 1/2/4/8, reporting
//! the wall-clock speedup and writing a machine-readable summary to
//! `target/BENCH_shard.json`. It doubles as a release lint: the released
//! sequence, the audit trail, and the checkpoint must be byte-identical
//! at every width (and a checkpoint cut at one width must resume at
//! another) — any divergence exits nonzero. The ≥3× speedup target at 8
//! shards is enforced only on hosts with at least 8 cores; elsewhere the
//! skip is recorded in the summary instead of failing the build.

use sp_bench::mechanisms::{all_mechanisms, catalog, drive, probe_roles, MechRun};
use sp_bench::workloads::fig7_workload;
use sp_bench::{log_rows, print_table, us_per, warn_if_debug, Row};
use sp_core::wire::{FrameDecoder, Message};
use sp_core::{RoleSet, StreamId};
use sp_engine::{
    run_supervised, DegradationStats, FaultInjector, FaultPlan, MemStore, PlanBuilder,
    QuarantinePolicy, ReorderBuffer, SecurityShield, SupervisorConfig, TelemetryConfig,
};

const RATIOS: [usize; 5] = [1, 10, 25, 50, 100];
const POLICY_SIZES: [u32; 5] = [1, 10, 25, 50, 100];
/// Fixed sp:tuple ratio for the policy-size experiments (paper: 1/10).
const MEM_RATIO: usize = 10;

/// Runs mechanism `idx` over the workload three times (fresh instance each
/// run), keeping the fastest run — one-shot wall timings are noisy.
fn best_of_3(
    catalog: &std::sync::Arc<sp_core::RoleCatalog>,
    workload: &sp_mog::Workload,
    idx: usize,
) -> MechRun {
    let mut best: Option<MechRun> = None;
    for _ in 0..3 {
        let mut mechs = all_mechanisms(catalog, &workload.schema, &probe_roles());
        let mut mech = mechs.swap_remove(idx);
        let run = drive(mech.as_mut(), &workload.elements);
        if best.as_ref().is_none_or(|b| run.elapsed < b.elapsed) {
            best = Some(run);
        }
    }
    best.expect("three runs")
}

fn main() {
    warn_if_debug();
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "a" => ratio_sweep(true),
        "p" => ratio_sweep(false),
        "c" => policy_size_sweep(true),
        "d" => policy_size_sweep(false),
        "b" => batch_report(),
        "r" => degradation_report(),
        "t" => telemetry_report(),
        "x" => trace_report(),
        "s" => shard_report(),
        _ => {
            ratio_sweep(true);
            ratio_sweep(false);
            policy_size_sweep(true);
            policy_size_sweep(false);
            batch_report();
            degradation_report();
            telemetry_report();
            trace_report();
            shard_report();
        }
    }
}

/// Batch-execution gain: one select+shield-heavy plan, driven once in
/// tuple-at-a-time mode and once in segment batches. Shield wall-clock
/// sampling is off in both modes so the comparison isolates the dataflow
/// (routing, dispatch, fan-out clones) rather than clock-read counts.
///
/// Doubles as a **release lint**: the two modes must release the same
/// tuple multiset per sink — any divergence exits nonzero, failing CI.
fn batch_report() {
    use sp_engine::{CmpOp, Expr, Select};
    use std::collections::HashMap;

    let catalog = catalog(128);
    // sp:tuple = 1/50 → long same-segment tuple runs, the shape batch
    // execution exploits (and the common case in the paper's workloads).
    let workload = fig7_workload(50, 3, 0.5, 4242);
    let input: Vec<(StreamId, sp_core::StreamElement)> =
        workload.elements.iter().map(|e| (workload.stream, e.clone())).collect();
    let stream = workload.stream;
    let schema = &workload.schema;
    let builder = || {
        let mut b = PlanBuilder::new(catalog.clone());
        let src = b.source(stream, schema.clone());
        let sel = b.add(
            Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(0), Expr::Const(sp_core::Value::Int(0)))),
            src,
        );
        let ss = b.add(SecurityShield::new(RoleSet::from([0])).without_timing(), sel);
        let sink = b.sink(ss);
        (b, sink)
    };

    // Released tuple multiset of one run (tid → count), for the lint.
    let run = |batching: bool| {
        let (b, sink) = builder();
        let mut exec = b.build();
        exec.set_batching(batching);
        if batching {
            exec.push_all(input.iter().cloned()).expect("clean input");
        } else {
            for (s, e) in &input {
                exec.push(*s, e.clone()).expect("clean input");
            }
        }
        exec.finish().expect("clean finish");
        let mut released: HashMap<u64, u64> = HashMap::new();
        for t in exec.sink(sink).tuples() {
            *released.entry(t.tid.raw()).or_insert(0) += 1;
        }
        released
    };
    let tuple_released = run(false);
    let batched_released = run(true);

    let tuple_ms = time_best_of_3(|| {
        run(false);
    });
    let batched_ms = time_best_of_3(|| {
        run(true);
    });
    let speedup = tuple_ms.as_secs_f64() / batched_ms.as_secs_f64().max(1e-9);
    let released: u64 = tuple_released.values().sum();

    println!("\nFig 7 batch: segment-batch vs tuple-at-a-time execution");
    println!("  tuples              {:>10}", workload.tuples);
    println!("  released            {released:>10}");
    println!("  tuple-at-a-time     {:>10.2} ms", tuple_ms.as_secs_f64() * 1e3);
    println!("  segment batches     {:>10.2} ms", batched_ms.as_secs_f64() * 1e3);
    println!("  speedup             {speedup:>9.2}x (target >= 1.5x)");

    let multiset_ok = tuple_released == batched_released;
    if std::fs::create_dir_all("target").is_ok() {
        let json = format!(
            concat!(
                "{{\n  \"experiment\": \"fig7_batch\",\n",
                "  \"tuples\": {},\n  \"released\": {},\n",
                "  \"tuple_mode_ms\": {:.3},\n  \"batched_ms\": {:.3},\n",
                "  \"speedup\": {:.3},\n  \"multiset_identical\": {}\n}}\n"
            ),
            workload.tuples,
            released,
            tuple_ms.as_secs_f64() * 1e3,
            batched_ms.as_secs_f64() * 1e3,
            speedup,
            multiset_ok,
        );
        let _ = std::fs::write("target/BENCH_batch.json", json);
        println!("  wrote target/BENCH_batch.json");
    }

    let row = |metric: &'static str, measured: f64| Row {
        experiment: "fig7batch",
        param: "mode",
        value: "batched-vs-tuple".into(),
        series: "sp".into(),
        metric,
        measured,
    };
    log_rows(&[
        row("speedup", speedup),
        row("tuple_mode_ms", tuple_ms.as_secs_f64() * 1e3),
        row("batched_ms", batched_ms.as_secs_f64() * 1e3),
        row("released", released as f64),
    ]);

    if !multiset_ok {
        eprintln!(
            "LINT FAILURE: batched execution released a different tuple multiset \
             than tuple-at-a-time execution ({} vs {} distinct tids)",
            batched_released.len(),
            tuple_released.len(),
        );
        std::process::exit(1);
    }
    println!("  release lint        identical multisets (pass)");
}

/// Shard scale-out: one shield-heavy plan behind the key partitioner at
/// widths 1/2/4/8. Large policies (|R| = 100) make the shield's
/// per-tuple probe the dominant cost — the work the partitioner spreads
/// across cores — while the coordinator's routing stays cheap.
///
/// Doubles as a **release lint** for the §V equivalence invariants:
/// every width must release the same tuple sequence, encode the same
/// audit trail, and cut the same checkpoint bytes as the width-1 run,
/// and a checkpoint cut at width 4 must resume at width 2. Divergence
/// exits nonzero unconditionally. The ≥3× speedup target at 8 shards is
/// enforced only when the host has at least 8 cores; on smaller hosts
/// the skip is recorded in `target/BENCH_shard.json` instead.
fn shard_report() {
    use sp_engine::{CmpOp, Expr, Select, ShardedExecutor};

    const WIDTHS: [usize; 4] = [1, 2, 4, 8];
    let catalog = catalog(128);
    let workload = fig7_workload(25, 100, 0.5, 0x5A4D);
    let input: Vec<(StreamId, sp_core::StreamElement)> =
        workload.elements.iter().map(|e| (workload.stream, e.clone())).collect();
    let stream = workload.stream;
    let schema = &workload.schema;
    // src → select (eager: forwards sps immediately, so the plan shards)
    // → shield → sink, with telemetry on so the audit-trail invariant is
    // exercised, not vacuous.
    let builder = || {
        let mut b = PlanBuilder::new(catalog.clone());
        let src = b.source(stream, schema.clone());
        let sel = b.add(
            Select::eager(Expr::cmp(CmpOp::Ge, Expr::Attr(0), Expr::Const(sp_core::Value::Int(0)))),
            src,
        );
        let ss = b.add(SecurityShield::new(RoleSet::from([0])).without_timing(), sel);
        let sink = b.sink(ss);
        b.enable_telemetry(TelemetryConfig::enabled());
        (b, sink)
    };
    let (_, sink) = builder();

    struct WidthRun {
        width: usize,
        elapsed: std::time::Duration,
        released: Vec<u64>,
        audit: Vec<u8>,
        ckpt: Vec<u8>,
    }
    let runs: Vec<WidthRun> = WIDTHS
        .iter()
        .map(|&w| {
            let elapsed = time_best_of_3(|| {
                let mut exec = ShardedExecutor::new(|| builder().0, w).expect("plan is shardable");
                exec.push_all(input.iter().cloned()).expect("clean input");
                exec.finish().expect("clean finish");
            });
            // A kept run for the invariant lint, outside the timing loop.
            let mut exec = ShardedExecutor::new(|| builder().0, w).expect("plan is shardable");
            exec.push_all(input.iter().cloned()).expect("clean input");
            exec.finish().expect("clean finish");
            let released: Vec<u64> = exec.sink(sink).tuples().map(|t| t.tid.raw()).collect();
            let audit = exec.audit_trail().encode_to_vec();
            let ckpt =
                exec.checkpoint(1, input.len() as u64).expect("checkpoint cuts").encode_to_vec();
            WidthRun { width: w, elapsed, released, audit, ckpt }
        })
        .collect();

    // Cross-width resume: cut mid-stream at width 4, restore at width 2,
    // finish the input there. The resumed run's releases must be exactly
    // the width-1 run's tail.
    let half = input.len() / 2;
    let resumed_ok = {
        let mut a = ShardedExecutor::new(|| builder().0, 4).expect("plan is shardable");
        a.push_all(input[..half].iter().cloned()).expect("clean input");
        let cut = a.checkpoint(1, half as u64).expect("checkpoint cuts");
        let mut b = ShardedExecutor::new(|| builder().0, 2).expect("plan is shardable");
        b.restore(&cut).expect("checkpoint restores at another width");
        b.push_all(input[half..].iter().cloned()).expect("clean input");
        b.finish().expect("clean finish");
        let resumed: Vec<u64> = b.sink(sink).tuples().map(|t| t.tid.raw()).collect();
        !resumed.is_empty() && runs[0].released.ends_with(&resumed)
    };

    let base = runs[0].elapsed.as_secs_f64();
    let speedups: Vec<f64> =
        runs.iter().map(|r| base / r.elapsed.as_secs_f64().max(1e-9)).collect();
    let invariants_ok = runs.iter().all(|r| {
        r.released == runs[0].released && r.audit == runs[0].audit && r.ckpt == runs[0].ckpt
    }) && resumed_ok;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let enforce_speedup = cores >= 8;
    let speedup8 = speedups[WIDTHS.len() - 1];

    println!("\nFig 7s: key-partitioned shard scale-out (|R| = 100, sp:tuple = 1/25)");
    println!("  tuples              {:>10}", workload.tuples);
    println!("  released            {:>10}", runs[0].released.len());
    println!("  host cores          {cores:>10}");
    for (r, s) in runs.iter().zip(&speedups) {
        println!(
            "  {} shard{}            {:>10.2} ms   {s:>5.2}x",
            r.width,
            if r.width == 1 { " " } else { "s" },
            r.elapsed.as_secs_f64() * 1e3,
        );
    }
    println!(
        "  target              {:>10} (8 shards >= 3x, {})",
        "",
        if enforce_speedup { "enforced" } else { "recorded only: fewer than 8 cores" },
    );

    if std::fs::create_dir_all("target").is_ok() {
        let fmt_list = |f: &dyn Fn(&WidthRun) -> String| -> String {
            runs.iter().map(f).collect::<Vec<_>>().join(", ")
        };
        let json = format!(
            concat!(
                "{{\n  \"experiment\": \"fig7s_shard\",\n",
                "  \"tuples\": {},\n  \"released\": {},\n  \"cores\": {},\n",
                "  \"widths\": [{}],\n  \"elapsed_ms\": [{}],\n  \"speedup\": [{}],\n",
                "  \"speedup_enforced\": {},\n  \"speedup_skip_reason\": {},\n",
                "  \"invariants_identical\": {},\n  \"cross_width_resume\": {}\n}}\n"
            ),
            workload.tuples,
            runs[0].released.len(),
            cores,
            fmt_list(&|r| r.width.to_string()),
            fmt_list(&|r| format!("{:.3}", r.elapsed.as_secs_f64() * 1e3)),
            speedups.iter().map(|s| format!("{s:.3}")).collect::<Vec<_>>().join(", "),
            enforce_speedup,
            if enforce_speedup {
                "null".to_string()
            } else {
                format!("\"host has {cores} cores; the 3x-at-8-shards gate needs 8\"")
            },
            invariants_ok,
            resumed_ok,
        );
        let _ = std::fs::write("target/BENCH_shard.json", json);
        println!("  wrote target/BENCH_shard.json");
    }

    let rows: Vec<Row> = runs
        .iter()
        .zip(&speedups)
        .flat_map(|(r, &s)| {
            let mk = |metric: &'static str, measured: f64| Row {
                experiment: "fig7s",
                param: "shards",
                value: r.width.to_string(),
                series: "sp".into(),
                metric,
                measured,
            };
            [mk("elapsed_ms", r.elapsed.as_secs_f64() * 1e3), mk("speedup", s)]
        })
        .collect();
    log_rows(&rows);

    if !invariants_ok {
        eprintln!(
            "LINT FAILURE: sharded execution diverged from the width-1 run \
             (released/audit/checkpoint must be byte-identical at every width, \
             and a width-4 checkpoint must resume at width 2)"
        );
        std::process::exit(1);
    }
    println!("  release lint        byte-identical at every width (pass)");
    if enforce_speedup && speedup8 < 3.0 {
        eprintln!(
            "LINT FAILURE: 8-shard speedup {speedup8:.2}x is below the 3x target \
             on a {cores}-core host"
        );
        std::process::exit(1);
    }
}

/// Telemetry overhead: the same shielded workload with the audit trail
/// and metrics histograms disarmed vs armed. The flight recorder and the
/// log-scale histograms are designed to cost a few arithmetic ops per
/// decision, so the armed run must stay within 5% of the bare one.
fn telemetry_report() {
    let catalog = catalog(128);
    let workload = fig7_workload(10, 3, 0.5, 42);
    let input: Vec<(StreamId, sp_core::StreamElement)> =
        workload.elements.iter().map(|e| (workload.stream, e.clone())).collect();
    let stream = workload.stream;
    let schema = &workload.schema;
    let builder = |telemetry: Option<TelemetryConfig>| {
        let mut b = PlanBuilder::new(catalog.clone());
        let src = b.source(stream, schema.clone());
        b.harden_source(src, QuarantinePolicy { ttl_ms: 40, slack_ms: 100, capacity: 1_024 });
        let ss = b.add(SecurityShield::new(RoleSet::from([0])), src);
        let _sink = b.sink(ss);
        if let Some(cfg) = telemetry {
            b.enable_telemetry(cfg);
        }
        b
    };
    let drive = |telemetry: Option<TelemetryConfig>| {
        let mut exec = builder(telemetry).build();
        for (s, e) in &input {
            let _ = exec.push(*s, e.clone());
        }
        let _ = exec.finish();
    };

    let plain = time_best_of_3(|| drive(None));
    let armed = time_best_of_3(|| drive(Some(TelemetryConfig::enabled())));
    let overhead =
        (armed.as_secs_f64() - plain.as_secs_f64()) / plain.as_secs_f64().max(1e-9) * 100.0;

    // One more armed run kept alive so the exposition and trail can be
    // inspected after the timing loop.
    let mut exec = builder(Some(TelemetryConfig::enabled())).build();
    for (s, e) in &input {
        let _ = exec.push(*s, e.clone());
    }
    let _ = exec.finish();
    let trail = exec.audit_trail();
    let audit_records = trail.len() as u64 + trail.evicted();
    let prom = exec.metrics_prometheus();

    println!("\nFig 7t: telemetry overhead (audit trail + metrics histograms)");
    println!("  bare run            {:>10.2} ms", plain.as_secs_f64() * 1e3);
    println!("  telemetry on        {:>10.2} ms", armed.as_secs_f64() * 1e3);
    println!("  overhead            {overhead:>9.1}% (target < 5%)");
    println!("  decisions audited   {audit_records} ({} evicted)", trail.evicted());
    println!("  exposition          {} lines", prom.lines().count());

    if std::fs::create_dir_all("target").is_ok() {
        let _ = std::fs::write("target/telemetry.prom", &prom);
        println!("  wrote target/telemetry.prom");
        let json = format!(
            concat!(
                "{{\n  \"experiment\": \"fig7t_telemetry\",\n",
                "  \"tuples\": {},\n  \"bare_ms\": {:.3},\n  \"telemetry_ms\": {:.3},\n",
                "  \"overhead_pct\": {:.2},\n  \"audit_records\": {},\n",
                "  \"audit_evicted\": {},\n  \"exposition_lines\": {}\n}}\n"
            ),
            workload.tuples,
            plain.as_secs_f64() * 1e3,
            armed.as_secs_f64() * 1e3,
            overhead,
            audit_records,
            trail.evicted(),
            prom.lines().count(),
        );
        let _ = std::fs::write("target/BENCH_telemetry.json", json);
        println!("  wrote target/BENCH_telemetry.json");
    }

    let row = |metric: &'static str, measured: f64| Row {
        experiment: "fig7t",
        param: "telemetry",
        value: "on-vs-off".into(),
        series: "sp".into(),
        metric,
        measured,
    };
    log_rows(&[
        row("telemetry_overhead_pct", overhead),
        row("audit_records", audit_records as f64),
        row("exposition_lines", prom.lines().count() as f64),
    ]);
}

/// Sp-trace overhead + enforcement lag: the same shielded workload with
/// span recording flipped off vs on through the runtime toggle (the span
/// ring stays armed in both runs, so the comparison isolates the
/// per-record cost), then one kept run whose span sheet and
/// enforcement-lag histograms are exported and linted.
fn trace_report() {
    use sp_engine::telemetry::span;

    let catalog = catalog(128);
    let workload = fig7_workload(10, 3, 0.5, 42);
    let input: Vec<(StreamId, sp_core::StreamElement)> =
        workload.elements.iter().map(|e| (workload.stream, e.clone())).collect();
    let stream = workload.stream;
    let schema = &workload.schema;
    let builder = || {
        let mut b = PlanBuilder::new(catalog.clone());
        let src = b.source(stream, schema.clone());
        b.harden_source(src, QuarantinePolicy { ttl_ms: 40, slack_ms: 100, capacity: 1_024 });
        let ss = b.add(SecurityShield::new(RoleSet::from([0])), src);
        let _sink = b.sink(ss);
        b.enable_telemetry(TelemetryConfig::enabled());
        b
    };
    let drive = || {
        let mut exec = builder().build();
        for (s, e) in &input {
            let _ = exec.push(*s, e.clone());
        }
        let _ = exec.finish();
    };

    span::set_enabled(false);
    let off = time_best_of_3(drive);
    span::set_enabled(true);
    let on = time_best_of_3(drive);
    let overhead = (on.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64().max(1e-9) * 100.0;

    // One more traced run kept alive so the span sheet and the lag
    // histograms can be exported after the timing loop.
    let mut exec = builder().build();
    for (s, e) in &input {
        let _ = exec.push(*s, e.clone());
    }
    let _ = exec.finish();
    let sheet = exec.span_sheet();
    let prom = exec.metrics_prometheus();

    // Span count per causal site, from the merged sheet.
    let mut per_site: std::collections::BTreeMap<&'static str, u64> = Default::default();
    for (_, rec) in sheet.records() {
        *per_site.entry(sp_core::trace::site::name(rec.site)).or_insert(0) += 1;
    }
    // `<family>_count{...} N` series sums from the exposition.
    let hist_count = |family: &str| -> u64 {
        let prefix = format!("{family}_count");
        prom.lines()
            .filter(|l| l.starts_with(&prefix))
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|v| v.parse::<u64>().ok())
            .sum()
    };
    let enforce = hist_count("sp_enforce_lag_ms");
    let release = hist_count("sp_first_release_lag_ms");
    let suppress = hist_count("sp_suppress_lag_ms");

    println!("\nFig 7x: sp-trace overhead + enforcement lag");
    println!("  spans off           {:>10.2} ms", off.as_secs_f64() * 1e3);
    println!("  spans on            {:>10.2} ms", on.as_secs_f64() * 1e3);
    println!("  overhead            {overhead:>9.1}% (target < 5%)");
    println!("  spans recorded      {:>10} ({} evicted)", sheet.len(), sheet.evicted());
    for (site, n) in &per_site {
        println!("    {site:<16}  {n:>10}");
    }
    println!("  enforce-lag obs     {enforce:>10}");
    println!("  first-release obs   {release:>10}");
    println!("  suppress-lag obs    {suppress:>10}");

    if std::fs::create_dir_all("target").is_ok() {
        let _ = std::fs::write("target/trace.json", sheet.render_chrome_json());
        println!("  wrote target/trace.json");
        let json = format!(
            concat!(
                "{{\n  \"experiment\": \"fig7x_trace\",\n",
                "  \"tuples\": {},\n  \"spans_off_ms\": {:.3},\n  \"spans_on_ms\": {:.3},\n",
                "  \"overhead_pct\": {:.2},\n  \"spans\": {},\n  \"spans_evicted\": {},\n",
                "  \"enforce_lag_observations\": {},\n",
                "  \"first_release_lag_observations\": {},\n",
                "  \"suppress_lag_observations\": {}\n}}\n"
            ),
            workload.tuples,
            off.as_secs_f64() * 1e3,
            on.as_secs_f64() * 1e3,
            overhead,
            sheet.len(),
            sheet.evicted(),
            enforce,
            release,
            suppress,
        );
        let _ = std::fs::write("target/BENCH_trace.json", json);
        println!("  wrote target/BENCH_trace.json");
    }

    let row = |metric: &'static str, measured: f64| Row {
        experiment: "fig7x",
        param: "trace",
        value: "on-vs-off".into(),
        series: "sp".into(),
        metric,
        measured,
    };
    log_rows(&[
        row("trace_overhead_pct", overhead),
        row("spans", sheet.len() as f64),
        row("enforce_lag_observations", enforce as f64),
        row("first_release_lag_observations", release as f64),
        row("suppress_lag_observations", suppress as f64),
    ]);

    // Release lints. The overhead gate tolerates sub-millisecond jitter:
    // on a workload this small a scheduler blip can exceed 5% without
    // meaning anything.
    let delta_ms = (on.as_secs_f64() - off.as_secs_f64()) * 1e3;
    if overhead > 5.0 && delta_ms > 1.0 {
        eprintln!(
            "LINT FAILURE: sp-trace overhead {overhead:.1}% exceeds the 5% budget \
             ({delta_ms:.2} ms over a {:.2} ms baseline)",
            off.as_secs_f64() * 1e3,
        );
        std::process::exit(1);
    }
    if enforce == 0 || release == 0 || suppress == 0 {
        eprintln!(
            "LINT FAILURE: an enforcement-lag histogram is empty on the fig7 workload \
             (enforce={enforce} release={release} suppress={suppress}) — \
             the lag plane lost an observation point"
        );
        std::process::exit(1);
    }
    println!("  trace lint          overhead + lag coverage (pass)");
}

/// Hostile-stream degradation: replays the Fig. 7 workload over the wire
/// under seeded faults into a hardened shielded plan and prints what was
/// refused — corrupted frames, late arrivals, quarantined tuples. The
/// fail-closed contract is that every loss shows up in a counter.
fn degradation_report() {
    let catalog = catalog(128);
    let workload = fig7_workload(10, 3, 0.5, 42);
    let input: Vec<(StreamId, sp_core::StreamElement)> =
        workload.elements.iter().map(|e| (workload.stream, e.clone())).collect();

    // Element-level faults: drop/duplicate/delay/reorder sps and tuples.
    // Moderate rates — a lossy network, not a bit-flood — so the report
    // shows partial degradation rather than total loss.
    let plan = FaultPlan {
        drop_sp: 0.10,
        drop_tuple: 0.02,
        dup_sp: 0.05,
        dup_tuple: 0.02,
        // Delays long enough to push an sp a whole tick (200 elements)
        // or more behind its segment — past the reorder buffer's slack.
        delay_sp: 0.15,
        delay_slots: 450,
        reorder: 0.05,
        reorder_window: 4,
        corrupt_byte: 0.000_02,
        ..FaultPlan::none(0xF167)
    };
    let mut injector = FaultInjector::new(plan);
    let faulty = injector.apply(&input);

    // Wire-level faults: frame the stream and flip bytes; the decoder
    // resynchronizes past corrupted frames and counts them.
    let mut bytes = Vec::new();
    for chunk in faulty.chunks(16) {
        let elems: Vec<_> = chunk.iter().map(|(_, e)| e.clone()).collect();
        Message::new(workload.stream, elems).encode(&mut bytes);
    }
    injector.corrupt(&mut bytes);
    let mut decoder = FrameDecoder::new();
    let messages = decoder.decode_stream(&bytes);

    // A K-slack reorder buffer restores timestamp order, dropping
    // hopelessly late arrivals, before the hardened analyzer.
    let mut b = PlanBuilder::new(catalog);
    let src = b.source(workload.stream, workload.schema.clone());
    // The workload ticks every 50 ms, so a 40 ms policy TTL means a lost
    // tick-opening sp strands its tuples on the previous tick's policy —
    // exactly the case that must quarantine rather than inherit.
    b.harden_source(src, QuarantinePolicy { ttl_ms: 40, slack_ms: 100, capacity: 1_024 });
    let ss = b.add(SecurityShield::new(RoleSet::from([0])), src);
    let sink = b.sink(ss);
    let mut exec = b.build();

    let mut reorder = ReorderBuffer::new(25);
    let mut ordered = Vec::new();
    for msg in messages {
        for elem in msg.elements {
            reorder.push(elem, &mut ordered);
        }
    }
    reorder.flush(&mut ordered);
    let mut engine_errors = 0u64;
    for elem in ordered {
        if exec.push(workload.stream, elem).is_err() {
            engine_errors += 1;
        }
    }
    if exec.finish().is_err() {
        engine_errors += 1;
    }

    let mut deg: DegradationStats = exec.degradation();
    deg.reorder_dropped = reorder.dropped;
    deg.corrupted_frames = decoder.corrupted_frames;

    println!("\nFig 7r: fail-closed degradation under a hostile replay");
    println!("  faults injected     {}", injector.stats().total());
    println!("  wire bytes skipped  {}", decoder.skipped_bytes);
    println!("  engine errors       {engine_errors}");
    println!("  {deg}");
    println!(
        "  released {} of {} tuples; total refused (fail-closed): {}",
        exec.sink(sink).tuple_count(),
        workload.tuples,
        deg.total_dropped(),
    );

    recovery_report();
}

/// Fastest of three runs of `f` — one-shot wall timings are noisy.
fn time_best_of_3(mut f: impl FnMut()) -> std::time::Duration {
    (0..3)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .expect("three runs")
}

/// Crash-recovery degradation: the Fig. 7 workload under a crash
/// supervisor that loses the whole pipeline at three separate points, and
/// the wall-clock cost of checkpointing at the default epoch interval.
fn recovery_report() {
    let catalog = catalog(128);
    let workload = fig7_workload(10, 3, 0.5, 42);
    let input: Vec<(StreamId, sp_core::StreamElement)> =
        workload.elements.iter().map(|e| (workload.stream, e.clone())).collect();
    let stream = workload.stream;
    let schema = &workload.schema;
    let build_with_sink = || {
        let mut b = PlanBuilder::new(catalog.clone());
        let src = b.source(stream, schema.clone());
        b.harden_source(src, QuarantinePolicy { ttl_ms: 40, slack_ms: 100, capacity: 1_024 });
        let ss = b.add(SecurityShield::new(RoleSet::from([0])), src);
        let sink = b.sink(ss);
        (b, sink)
    };
    let builder = || build_with_sink().0;
    // SinkRefs are positional, so one taken from an identically-built plan
    // addresses the same sink in every builder() executor.
    let (_, sink) = build_with_sink();
    let cfg = SupervisorConfig::default();

    // Checkpoint overhead: the same uninterrupted run with and without a
    // supervisor cutting epochs at the default interval.
    let plain = time_best_of_3(|| {
        let mut exec = builder().build();
        for (s, e) in &input {
            let _ = exec.push(*s, e.clone());
        }
        let _ = exec.finish();
    });
    let supervised = time_best_of_3(|| {
        let mut store = MemStore::default();
        let _ = run_supervised(builder, &input, &cfg, &mut store, &mut |_, _| false);
    });
    let overhead =
        (supervised.as_secs_f64() - plain.as_secs_f64()) / plain.as_secs_f64().max(1e-9) * 100.0;

    // Crash recovery: kill the pipeline at three spread-out positions;
    // each death drops the live executor and restores the last durable
    // checkpoint, replaying the epoch's input from the source log.
    let len = input.len() as u64;
    let mut pending = vec![len / 4, len / 2, 3 * len / 4];
    let mut oracle = move |_e: u64, p: u64| {
        if pending.first().is_some_and(|&k| p == k) {
            pending.remove(0);
            return true;
        }
        false
    };
    let mut store = MemStore::default();
    let run = run_supervised(builder, &input, &cfg, &mut store, &mut oracle)
        .expect("in-memory store never fails");
    let deg = run.degradation();

    println!("\nFig 7r: crash recovery under supervision (3 injected kills)");
    println!("  run completed       {}", run.completed());
    println!(
        "  released            {} of {} tuples",
        run.executor.sink(sink).tuple_count(),
        workload.tuples
    );
    println!("  {deg}");
    println!(
        "  checkpoint overhead {overhead:.1}% at epoch interval {} (target < 10%)",
        cfg.epoch_interval
    );
    let row = |metric: &'static str, measured: f64| Row {
        experiment: "fig7r",
        param: "recovery",
        value: "3-kills".into(),
        series: "supervised".into(),
        metric,
        measured,
    };
    log_rows(&[
        row("checkpoint_overhead_pct", overhead),
        row("checkpoints_taken", deg.checkpoints_taken as f64),
        row("checkpoints_restored", deg.checkpoints_restored as f64),
        row("epochs_replayed", deg.epochs_replayed as f64),
        row("recovery_dropped", deg.recovery_dropped as f64),
        row("restart_attempts", deg.restart_attempts as f64),
        // Overload counters ride along so the report shape matches the
        // fig10 sweep; this plan has no shedder or admission control, so
        // nonzero values here would flag a regression.
        row("shed_tuples", deg.shed_tuples as f64),
        row("admission_rejected", deg.admission_rejected as f64),
        row("overload_peak", deg.overload_peak as f64),
    ]);
}

/// Figures 7a (output rate) and 7b (processing cost per tuple).
fn ratio_sweep(output_rate: bool) {
    let catalog = catalog(128);
    let mut table = Vec::new();
    let mut rows = Vec::new();
    let mut header: Vec<&str> = vec!["sp:tuple"];
    let mut names_done = false;
    for ratio in RATIOS {
        let workload = fig7_workload(ratio, 3, 0.5, 42 + ratio as u64);
        let mut line = vec![format!("1/{ratio}")];
        for idx in 0..3usize {
            let run = best_of_3(&catalog, &workload, idx);
            if !names_done {
                header.push(match run.name {
                    "store-and-probe" => "store-probe",
                    "tuple-embedded" => "tuple-embed",
                    other => other,
                });
            }
            let measured = if output_rate {
                // tuples processed per millisecond of mechanism time
                workload.tuples as f64 / run.elapsed.as_secs_f64().max(1e-9) / 1000.0
            } else {
                us_per(run.elapsed, workload.tuples as u64)
            };
            line.push(format!("{measured:.2}"));
            rows.push(Row {
                experiment: if output_rate { "fig7a" } else { "fig7b" },
                param: "sp_ratio",
                value: format!("1/{ratio}"),
                series: run.name.to_owned(),
                metric: if output_rate { "tuples_per_ms" } else { "us_per_tuple" },
                measured,
            });
        }
        names_done = true;
        table.push(line);
    }
    let title = if output_rate {
        "Fig 7a: output rate (tuples/ms) vs sp:tuple ratio"
    } else {
        "Fig 7b: processing cost per tuple (µs) vs sp:tuple ratio"
    };
    print_table(title, &header, &table);
    log_rows(&rows);
}

/// Figures 7c (memory) and 7d (processing cost per 100 tuples).
fn policy_size_sweep(memory: bool) {
    let catalog = catalog(128);
    let mut table = Vec::new();
    let mut rows = Vec::new();
    let mut header: Vec<&str> = vec!["|R|"];
    let mut names_done = false;
    for size in POLICY_SIZES {
        let workload = fig7_workload(MEM_RATIO, size, 0.5, 99 + u64::from(size));
        let mut line = vec![format!("{size}")];
        for idx in 0..3usize {
            let run = best_of_3(&catalog, &workload, idx);
            if !names_done {
                header.push(match run.name {
                    "store-and-probe" => "store-probe",
                    "tuple-embedded" => "tuple-embed",
                    other => other,
                });
            }
            let measured = if memory {
                run.policy_mem as f64 / 1024.0
            } else {
                us_per(run.elapsed, workload.tuples as u64) * 100.0
            };
            line.push(format!("{measured:.1}"));
            rows.push(Row {
                experiment: if memory { "fig7c" } else { "fig7d" },
                param: "policy_size",
                value: size.to_string(),
                series: run.name.to_owned(),
                metric: if memory { "policy_kb" } else { "us_per_100_tuples" },
                measured,
            });
        }
        names_done = true;
        table.push(line);
    }
    let title = if memory {
        "Fig 7c: policy memory (KB) vs policy size |R| (sp:tuple = 1/10)"
    } else {
        "Fig 7d: processing cost per 100 tuples (µs) vs policy size |R|"
    };
    print_table(title, &header, &table);
    log_rows(&rows);
}
