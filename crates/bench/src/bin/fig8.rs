//! Figure 8: the cost of the Security Shield operator compared to select
//! and project (§VII-C).
//!
//! * 8a — per-element cost of project / select / SS while sweeping the
//!   sp:tuple ratio: SS costs about as much as a select at ratio 1/1 and
//!   becomes dramatically cheaper as more tuples share one sp;
//! * 8b — SS cost while sweeping the SS-state size (number of roles of the
//!   query predicate), with both predicate-evaluation modes: `scan`
//!   (unindexed role list, the paper's growth effect) and `bitmap` (the
//!   compact-encoding ablation).
//!
//! Usage: `cargo run --release -p sp-bench --bin fig8 -- [a|b|all]`

use std::sync::Arc;

use sp_bench::workloads::fig8_workload;
use sp_bench::{log_rows, print_table, us_per, warn_if_debug, Row};
use sp_core::{RoleSet, Value};
use sp_engine::{
    CmpOp, Element, Emitter, Expr, MatchMode, Operator, Project, SecurityShield, Select, SpAnalyzer,
};
use sp_mog::Workload;

const RATIOS: [usize; 5] = [1, 10, 25, 50, 100];
const ROLE_COUNTS: [u32; 4] = [1, 10, 100, 500];

fn main() {
    warn_if_debug();
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "a" => ratio_sweep(),
        "b" => state_size_sweep(),
        _ => {
            ratio_sweep();
            state_size_sweep();
        }
    }
}

/// Resolves the raw workload into engine elements once, so the operator
/// measurements are not polluted by analyzer time.
fn resolve(workload: &Workload) -> Vec<Element> {
    let mut catalog = sp_core::RoleCatalog::new();
    catalog.register_synthetic_roles(600);
    let mut analyzer = SpAnalyzer::new(workload.schema.clone(), Arc::new(catalog));
    let mut out = Vec::with_capacity(workload.elements.len());
    for e in &workload.elements {
        analyzer.push(e.clone(), &mut out);
    }
    analyzer.flush(&mut out);
    out
}

/// Runs fresh operators over the elements three times, returning the best
/// (minimum-noise) µs per data tuple.
fn measure(mut make: impl FnMut() -> Box<dyn Operator>, elements: &[Element], tuples: u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut op = make();
        let mut emitter = Emitter::new();
        let start = std::time::Instant::now();
        for e in elements {
            op.process(0, e.clone(), &mut emitter).expect("bench operator failed");
            let _ = emitter.take();
        }
        best = best.min(us_per(start.elapsed(), tuples));
    }
    best
}

/// The paper's region query: a select on the location attributes.
fn region_select() -> Select {
    Select::new(Expr::and(
        Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Float(200.0))),
        Expr::cmp(CmpOp::Le, Expr::Attr(1), Expr::Const(Value::Float(1200.0))),
    ))
}

fn ratio_sweep() {
    let mut table = Vec::new();
    let mut rows = Vec::new();
    for ratio in RATIOS {
        let workload = fig8_workload(ratio, 7 + ratio as u64);
        let elements = resolve(&workload);
        let tuples = workload.tuples as u64;

        let project_us = measure(|| Box::new(Project::new(vec![0, 1])), &elements, tuples);
        let select_us = measure(|| Box::new(region_select()), &elements, tuples);
        let ss_us =
            measure(|| Box::new(SecurityShield::new(RoleSet::from([0]))), &elements, tuples);

        for (series, v) in [("project", project_us), ("select", select_us), ("ss", ss_us)] {
            rows.push(Row {
                experiment: "fig8a",
                param: "sp_ratio",
                value: format!("1/{ratio}"),
                series: series.into(),
                metric: "us_per_tuple",
                measured: v,
            });
        }
        table.push(vec![
            format!("1/{ratio}"),
            format!("{project_us:.3}"),
            format!("{select_us:.3}"),
            format!("{ss_us:.3}"),
        ]);
    }
    print_table(
        "Fig 8a: operator cost (µs/tuple) vs sp:tuple ratio",
        &["sp:tuple", "project", "select", "ss"],
        &table,
    );
    log_rows(&rows);
}

fn state_size_sweep() {
    let workload = fig8_workload(10, 55);
    let elements = resolve(&workload);
    let tuples = workload.tuples as u64;

    let project_us = measure(|| Box::new(Project::new(vec![0, 1])), &elements, tuples);
    let select_us = measure(|| Box::new(region_select()), &elements, tuples);

    let mut table = Vec::new();
    let mut rows = Vec::new();
    for count in ROLE_COUNTS {
        let predicate = RoleSet::all_below(count);
        let scan_us = measure(
            || Box::new(SecurityShield::new(predicate.clone()).with_mode(MatchMode::Scan)),
            &elements,
            tuples,
        );
        let bitmap_us = measure(
            || Box::new(SecurityShield::new(predicate.clone()).with_mode(MatchMode::Bitmap)),
            &elements,
            tuples,
        );
        for (series, v) in [
            ("ss-scan", scan_us),
            ("ss-bitmap", bitmap_us),
            ("select", select_us),
            ("project", project_us),
        ] {
            rows.push(Row {
                experiment: "fig8b",
                param: "role_count",
                value: count.to_string(),
                series: series.into(),
                metric: "us_per_tuple",
                measured: v,
            });
        }
        table.push(vec![
            format!("R={count}"),
            format!("{scan_us:.3}"),
            format!("{bitmap_us:.3}"),
            format!("{select_us:.3}"),
            format!("{project_us:.3}"),
        ]);
    }
    print_table(
        "Fig 8b: SS cost (µs/tuple) vs query-side role count (sp:tuple = 1/10)",
        &["", "ss (scan)", "ss (bitmap)", "select", "project"],
        &table,
    );
    log_rows(&rows);
}
