//! # security-punctuations
//!
//! A from-scratch Rust implementation of **security punctuations** — the
//! stream-centric access-control enforcement mechanism of Nehme,
//! Rundensteiner and Bertino, *"A Security Punctuation Framework for
//! Enforcing Access Control on Streaming Data"* (ICDE 2008).
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! * [`sp_pattern`] — the DDP/SRP pattern-expression dialect;
//! * [`sp_core`] — tuples, role bitmaps, policies, punctuations, wire
//!   framing;
//! * [`sp_engine`] — the pipelined security-aware stream engine (Security
//!   Shield, SAJoin with SPIndex, δ, group-by, set operations, parallel
//!   runner, reorder buffer);
//! * [`sp_query`] — CQL + `INSERT SP`, plans, Table II rewrite rules,
//!   the §VI-A cost model and the optimizer;
//! * [`sp_baselines`] — the store-and-probe and tuple-embedded
//!   enforcement mechanisms the paper compares against;
//! * [`sp_mog`] — moving-object and health-telemetry workload generators.
//!
//! Start with [`sp_query::Dsms`] for the end-to-end API, or the
//! `examples/` directory for runnable scenarios. `DESIGN.md` maps every
//! paper section to its implementing module; `EXPERIMENTS.md` records the
//! reproduction of every figure in the paper's evaluation.

pub use sp_baselines;
pub use sp_core;
pub use sp_engine;
pub use sp_mog;
pub use sp_pattern;
pub use sp_query;
