//! Table II, verified by execution: every equivalence rule must be
//! *result-preserving*. For randomized punctuated workloads, each rewritten
//! plan must release exactly the same tuples as the original.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sp_core::{
    RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, Timestamp,
    Tuple, TupleId, Value, ValueType,
};
use sp_engine::{AggFunc, CmpOp, Expr, JoinVariant, PlanBuilder};
use sp_query::{all_rewrites, instantiate, LogicalPlan};

fn schema(name: &str) -> Arc<Schema> {
    Schema::of(name, &[("id", ValueType::Int), ("v", ValueType::Int)])
}

fn scan(stream: u32, name: &str) -> LogicalPlan {
    LogicalPlan::Scan { stream: StreamId(stream), schema: schema(name), window_ms: 100_000 }
}

/// Runs a plan over a deterministic two-stream workload; returns the
/// released tuple renderings, sorted.
fn execute(plan: &LogicalPlan, seed: u64) -> Vec<String> {
    let mut catalog = RoleCatalog::new();
    catalog.register_synthetic_roles(8);
    let mut builder = PlanBuilder::new(Arc::new(catalog));
    let mut sources = HashMap::new();
    let root = instantiate(plan, &mut builder, &mut sources);
    let sink = builder.sink(root);
    let mut exec = builder.build();

    let mut rng = SmallRng::seed_from_u64(seed);
    for ts in 1..=240u64 {
        let stream = StreamId(1 + (ts % 2) as u32);
        if rng.gen_bool(0.25) {
            let roles: RoleSet =
                (0..rng.gen_range(0..3)).map(|_| RoleId(rng.gen_range(0..5))).collect();
            exec.push(
                stream,
                StreamElement::punctuation(SecurityPunctuation::grant_all(roles, Timestamp(ts))),
            )
            .unwrap();
        }
        let id = rng.gen_range(0..6i64);
        exec.push(
            stream,
            StreamElement::tuple(Tuple::new(
                stream,
                TupleId(id as u64),
                Timestamp(ts),
                vec![Value::Int(id), Value::Int(rng.gen_range(0..10))],
            )),
        )
        .unwrap();
    }
    // Canonical rendering: values + timestamp. The join's carried sid/tid
    // come from its left base tuple and legitimately swap under join
    // commutation; they are bookkeeping, not data.
    let mut out: Vec<String> =
        exec.sink(sink).tuples().map(|t| format!("{:?}@{}", t.values(), t.ts)).collect();
    out.sort();
    out
}

/// Strategy producing random shielded plans over one or two scans.
fn arb_plan() -> impl Strategy<Value = LogicalPlan> {
    let roles = prop::collection::vec(0u32..5, 1..3)
        .prop_map(|rs| rs.into_iter().map(RoleId).collect::<RoleSet>());
    let base = prop_oneof![
        Just(scan(1, "a")),
        (Just(()),).prop_map(|_| LogicalPlan::Join {
            left: Box::new(scan(1, "a")),
            right: Box::new(scan(2, "b")),
            left_key: 0,
            right_key: 0,
            window_ms: 100_000,
            variant: JoinVariant::Index,
        }),
        (Just(()),).prop_map(|_| LogicalPlan::Union {
            left: Box::new(scan(1, "a")),
            right: Box::new(scan(2, "b")),
        }),
        (Just(()),).prop_map(|_| LogicalPlan::Intersect {
            left: Box::new(scan(1, "a")),
            right: Box::new(scan(2, "b")),
            window_ms: 100_000,
        }),
    ];
    (base, roles, 0u8..4, prop::bool::ANY).prop_map(|(base, roles, shape, extra_shield)| {
        let mut plan = base;
        if extra_shield {
            plan = LogicalPlan::Shield { input: Box::new(plan), roles: RoleSet::from([0, 1]) };
        }
        plan = match shape {
            0 => LogicalPlan::Select {
                input: Box::new(plan),
                predicate: Expr::cmp(CmpOp::Gt, Expr::Attr(1), Expr::Const(Value::Int(3))),
            },
            1 => LogicalPlan::Project { input: Box::new(plan), indices: vec![1, 0] },
            2 => LogicalPlan::DupElim { input: Box::new(plan), keys: vec![0], window_ms: 100_000 },
            _ => plan,
        };
        LogicalPlan::Shield { input: Box::new(plan), roles }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every single-rule rewrite of a random plan is result-equivalent.
    #[test]
    fn all_rewrites_preserve_results(plan in arb_plan(), seed in 0u64..1000) {
        let baseline = execute(&plan, seed);
        for (rule, rewritten) in all_rewrites(&plan) {
            let got = execute(&rewritten, seed);
            prop_assert_eq!(
                &got,
                &baseline,
                "rule {:?} changed results\noriginal:\n{}\nrewritten:\n{}",
                rule,
                plan,
                rewritten
            );
        }
    }
}

/// The aggregate commute rule is *visibility-preserving*, not
/// output-identical: ψ(G(T)) emits partial aggregates per original policy
/// (attribute subgroups), G(ψ(T)) aggregates the shield's whole view. The
/// invariant that must hold: both forms emit one visible update per
/// visible input tuple, over the same set of contributing tuples.
#[test]
fn shield_groupby_commute_preserves_visibility() {
    let base = LogicalPlan::GroupBy {
        input: Box::new(scan(1, "a")),
        group: Some(0),
        agg: AggFunc::Count,
        agg_attr: 1,
        window_ms: 100_000,
    };
    let above = LogicalPlan::Shield { input: Box::new(base.clone()), roles: RoleSet::from([1]) };
    let below =
        sp_query::apply(sp_query::Rule::PushShieldBelowGroupBy, &above).expect("rule fires");
    for seed in [1u64, 7, 42] {
        let a = execute(&above, seed);
        let b = execute(&below, seed);
        // One visible emission per visible contributing tuple, each form.
        assert_eq!(a.len(), b.len(), "seed {seed}");
        // And the contributing (group, update-time) pairs coincide: strip
        // the aggregate value, keep group + timestamp.
        let strip = |rows: &[String]| -> Vec<String> {
            let mut v: Vec<String> = rows
                .iter()
                .map(|r| {
                    let (vals, ts) = r.split_once('@').expect("render format");
                    let group = vals.split(',').next().expect("group value").to_owned();
                    format!("{group}@{ts}")
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(strip(&a), strip(&b), "seed {seed}");
    }
}

/// Optimizer end-to-end: the chosen plan is result-equivalent to the
/// initial one, for a join query with a post-filtering shield.
#[test]
fn optimizer_output_is_result_equivalent() {
    let plan = LogicalPlan::Shield {
        roles: RoleSet::from([1, 3]),
        input: Box::new(LogicalPlan::Select {
            predicate: Expr::cmp(CmpOp::Le, Expr::Attr(1), Expr::Const(Value::Int(7))),
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan(1, "a")),
                right: Box::new(scan(2, "b")),
                left_key: 0,
                right_key: 0,
                window_ms: 100_000,
                variant: JoinVariant::Index,
            }),
        }),
    };
    let optimizer = sp_query::Optimizer::new(sp_query::CostModel::default());
    let (best, report) = optimizer.optimize(&plan);
    assert!(report.final_cost <= report.initial_cost);
    for seed in [3u64, 11, 99] {
        assert_eq!(execute(&plan, seed), execute(&best, seed), "seed {seed}");
    }
}

/// Join-variant equivalence at integration scale: the three physical
/// SAJoin variants release identical result sets under every selectivity.
#[test]
fn sajoin_variants_agree_at_scale() {
    for sigma in [0.0f64, 0.3, 1.0] {
        let mk = |variant| LogicalPlan::Join {
            left: Box::new(scan(1, "a")),
            right: Box::new(scan(2, "b")),
            left_key: 0,
            right_key: 0,
            window_ms: 50_000,
            variant,
        };
        // Reuse the harness workload so σ_sp actually varies policies.
        let workload = sp_bench_workload(sigma);
        let mut outs = Vec::new();
        for variant in [JoinVariant::NestedLoopPF, JoinVariant::NestedLoopFP, JoinVariant::Index] {
            let plan = mk(variant);
            let mut catalog = RoleCatalog::new();
            catalog.register_synthetic_roles(128);
            let mut builder = PlanBuilder::new(Arc::new(catalog));
            let mut sources = HashMap::new();
            let root = instantiate(&plan, &mut builder, &mut sources);
            let sink = builder.sink(root);
            let mut exec = builder.build();
            for (port, elem) in &workload {
                exec.push(StreamId(1 + *port as u32), elem.clone()).unwrap();
            }
            let mut got: Vec<String> =
                exec.sink(sink).tuples().map(|t| format!("{:?}@{}", t.values(), t.ts)).collect();
            got.sort();
            outs.push(got);
        }
        assert_eq!(outs[0], outs[1], "PF vs FP at sigma {sigma}");
        assert_eq!(outs[0], outs[2], "PF vs Index at sigma {sigma}");
        if sigma > 0.0 {
            assert!(!outs[0].is_empty(), "sigma {sigma} should join something");
        }
    }
}

/// A small σ-controlled two-port workload (port, element), modelled on the
/// fig9 generator.
fn sp_bench_workload(sigma: f64) -> Vec<(usize, StreamElement)> {
    let mut rng = SmallRng::seed_from_u64(11);
    let mut out = Vec::new();
    for i in 0..600usize {
        let port = i % 2;
        let ts = (i as u64 + 1) * 10;
        // One sp per port every 4 of its own tuples (i/2 counts per-port
        // arrivals; both parities hit the boundary).
        if (i / 2) % 4 == 0 {
            let mut roles = RoleSet::new();
            if port == 0 || rng.gen_bool(sigma) {
                roles.insert(RoleId(0));
            }
            roles.insert(RoleId(rng.gen_range(1..60u32) + (port as u32) * 60));
            out.push((
                port,
                StreamElement::punctuation(SecurityPunctuation::grant_all(
                    roles,
                    Timestamp(ts - 1),
                )),
            ));
        }
        let id = rng.gen_range(0..25u64);
        out.push((
            port,
            StreamElement::tuple(Tuple::new(
                StreamId(1 + port as u32),
                TupleId(id),
                Timestamp(ts),
                vec![Value::Int(id as i64), Value::Int(rng.gen_range(0..10))],
            )),
        ));
    }
    out
}
