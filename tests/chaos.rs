//! Chaos campaign: the engine and all three enforcement mechanisms must
//! **fail closed** under hostile stream conditions.
//!
//! Every test perturbs a recorded punctuated workload with seeded faults
//! (dropped / duplicated / delayed / reordered sps and tuples) and checks
//! the two degradation invariants from `sp_engine::fault`:
//!
//! 1. no panic, ever;
//! 2. the set of tuples released under faults is a subset of the tuples
//!    released on the clean input — losing an sp may suppress output but
//!    must never reveal tuples the clean run withheld.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use sp_baselines::{
    run_mechanism, EnforcementMechanism, SpMechanism, StoreAndProbe, TupleEmbedded,
};
use sp_core::{
    DataDescription, RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement,
    StreamId, Timestamp, Tuple, TupleId, Value, ValueType,
};
use sp_engine::fault::{run_chaos, FaultInjector, FaultPlan};
use sp_engine::{
    CmpOp, Expr, PlanBuilder, QuarantinePolicy, SecurityShield, Select, ShedPolicy, Shedder,
    ShedderConfig, WatermarkConfig,
};
use sp_mog::{location_stream, BurstConfig, WorkloadConfig};

/// Stream-time gap between consecutive sp-batches. Must exceed the
/// quarantine TTL so a lost sp leaves its segment *ungoverned* (tuples
/// quarantined and dropped) instead of inheriting the previous policy.
const SEGMENT_MS: u64 = 1_000;
/// Policy freshness window for hardened sources. Larger than the widest
/// in-segment tuple offset, so the clean run releases every granted tuple.
const TTL_MS: u64 = 500;
const TUPLES_PER_SEGMENT: u64 = 14;
const SEGMENTS: u64 = 24;

fn schema() -> Arc<Schema> {
    Schema::of("loc", &[("id", ValueType::Int), ("v", ValueType::Int)])
}

fn catalog() -> Arc<RoleCatalog> {
    let mut c = RoleCatalog::new();
    c.register_synthetic_roles(16);
    Arc::new(c)
}

fn tuple(tid: u64, ts: u64) -> StreamElement {
    StreamElement::tuple(Tuple::new(
        StreamId(1),
        TupleId(tid),
        Timestamp(ts),
        vec![Value::Int(tid as i64), Value::Int((tid % 7) as i64)],
    ))
}

/// Segment `k` grants role `k % 3` plus the always-on role 3. Tuples sit
/// well inside the TTL window of their own sp and far outside every other
/// segment's window.
fn segmented_workload() -> Vec<(StreamId, StreamElement)> {
    let mut out = Vec::new();
    for k in 0..SEGMENTS {
        let base = (k + 1) * SEGMENT_MS;
        let mut roles = RoleSet::from([3]);
        roles.insert(RoleId((k % 3) as u32));
        out.push((
            StreamId(1),
            StreamElement::punctuation(SecurityPunctuation::grant_all(roles, Timestamp(base))),
        ));
        for i in 1..=TUPLES_PER_SEGMENT {
            out.push((StreamId(1), tuple(k * 100 + i, base + i * 10)));
        }
    }
    out
}

/// The engine invariant, at the acceptance bar: 60 seeded fault scenarios
/// over a fig-7-style shielded plan (shared select feeding two queries
/// with different roles) with a hardened, fail-closed source.
#[test]
fn engine_fails_closed_across_60_seeded_scenarios() {
    let input = segmented_workload();
    let schema = schema();
    let catalog = catalog();
    let report = run_chaos(&input, 60, 0xDEC0_DE01, || {
        let mut b = PlanBuilder::new(catalog.clone());
        let src = b.source(StreamId(1), schema.clone());
        b.harden_source(src, QuarantinePolicy { ttl_ms: TTL_MS, slack_ms: 400, capacity: 64 });
        let sel = b
            .add(Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))), src);
        let q0 = b.add(SecurityShield::new(RoleSet::from([0])), sel);
        let q3 = b.add(SecurityShield::new(RoleSet::from([3])), sel);
        let s0 = b.sink(q0);
        let s3 = b.sink(q3);
        (b, vec![s0, s3])
    });
    assert!(report.passed(), "{}\n{:?}", report.summary(), report.violations);
    assert_eq!(report.scenarios, 60);
    assert!(report.faults.total() > 0, "campaign must actually inject faults");
}

/// Batch execution under chaos: the same seeded fault scenarios, run once
/// with segment-batched dataflow (`push_all`, the default) and once in
/// tuple-at-a-time mode. Faults land mid-batch — dropped/duplicated/
/// reordered sps move the batch-cut points — so this pins the equivalence
/// argument exactly where it is most fragile. When both modes accept the
/// whole faulty input their sink contents must be **identical**; when the
/// hostile input is refused, the batched run (which discards deferred
/// work on error, strictly more fail-closed) must release a subset of the
/// tuple-mode run.
#[test]
fn batched_execution_matches_tuple_mode_under_faults() {
    let input = segmented_workload();
    let schema = schema();
    let catalog = catalog();
    let builder = |catalog: &Arc<RoleCatalog>, schema: &Arc<Schema>| {
        let mut b = PlanBuilder::new(catalog.clone());
        let src = b.source(StreamId(1), schema.clone());
        b.harden_source(src, QuarantinePolicy { ttl_ms: TTL_MS, slack_ms: 400, capacity: 64 });
        let sel = b
            .add(Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))), src);
        let q0 = b.add(SecurityShield::new(RoleSet::from([0])), sel);
        let q3 = b.add(SecurityShield::new(RoleSet::from([3])), sel);
        let s0 = b.sink(q0);
        let s3 = b.sink(q3);
        (b, vec![s0, s3])
    };

    let mut clean_scenarios = 0u64;
    for s in 0..30u64 {
        let plan = FaultPlan::scenario(0xBA7C_4ED0 ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut injector = FaultInjector::new(plan);
        let faulty = injector.apply(&input);

        let run = |batching: bool| {
            let faulty = faulty.clone();
            let (b, sinks) = builder(&catalog, &schema);
            catch_unwind(AssertUnwindSafe(move || {
                let mut exec = b.build();
                exec.set_batching(batching);
                let ok = exec.push_all(faulty).is_ok();
                let sets: Vec<HashSet<String>> = sinks
                    .iter()
                    .map(|r| exec.sink(*r).tuples().map(|t| t.to_string()).collect())
                    .collect();
                (ok, sets)
            }))
            .unwrap_or_else(|_| panic!("scenario {s}: engine panicked (batching={batching})"))
        };

        let (ok_batched, batched) = run(true);
        let (ok_tuple, tuple_mode) = run(false);
        assert_eq!(ok_batched, ok_tuple, "scenario {s}: modes disagree on input acceptance");
        for (i, (bset, tset)) in batched.iter().zip(&tuple_mode).enumerate() {
            if ok_batched {
                assert_eq!(
                    bset, tset,
                    "scenario {s} sink {i}: batched and tuple mode released different sets"
                );
            } else {
                assert!(
                    bset.is_subset(tset),
                    "scenario {s} sink {i}: batched error path leaked past tuple mode"
                );
            }
        }
        if ok_batched {
            clean_scenarios += 1;
        }
    }
    assert!(clean_scenarios > 0, "some scenarios must exercise the exact-equality arm");
}

/// The workload for the cross-mechanism equivalence campaign: each sp is
/// *scoped* to its own segment's disjoint tuple-id range, so under any
/// drop/delay/reorder a tuple is either governed by its own policy or by
/// none — every mechanism denies ungoverned tuples.
fn scoped_workload() -> Vec<StreamElement> {
    let mut out = Vec::new();
    for k in 0..SEGMENTS {
        let base = (k + 1) * SEGMENT_MS;
        // Roles alternate so faults flip real grant/deny decisions.
        let roles: RoleSet = if k % 2 == 0 { RoleSet::from([0, 1]) } else { RoleSet::from([1, 2]) };
        out.push(StreamElement::punctuation(
            SecurityPunctuation::grant_all(roles, Timestamp(base))
                .with_ddp(DataDescription::tuple_range(k * 100, k * 100 + 99)),
        ));
        for i in 1..=TUPLES_PER_SEGMENT {
            out.push(tuple(k * 100 + i, base + i * 10));
        }
    }
    out
}

/// Runs the 50-scenario fail-closed campaign against one mechanism.
fn mechanism_chaos(make: &dyn Fn() -> Box<dyn EnforcementMechanism>) {
    let elements = scoped_workload();
    let input: Vec<(StreamId, StreamElement)> =
        elements.iter().map(|e| (StreamId(1), e.clone())).collect();

    let mut m = make();
    let baseline: HashSet<String> =
        run_mechanism(m.as_mut(), elements).iter().map(|t| t.to_string()).collect();
    assert!(!baseline.is_empty(), "clean run must release something");
    assert!(m.denied() > 0, "clean run must deny something");

    for s in 0..50u64 {
        let plan = FaultPlan::scenario(0xBA5E ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut injector = FaultInjector::new(plan);
        let faulty = injector.apply(&input);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut m = make();
            run_mechanism(m.as_mut(), faulty.into_iter().map(|(_, e)| e))
                .iter()
                .map(|t| t.to_string())
                .collect::<HashSet<String>>()
        }));
        let released = match outcome {
            Ok(set) => set,
            Err(_) => panic!("scenario {s}: mechanism panicked"),
        };
        let leaked: Vec<&String> = released.difference(&baseline).collect();
        assert!(
            leaked.is_empty(),
            "scenario {s}: {} tuple(s) leaked that the clean run withheld, e.g. {:?}",
            leaked.len(),
            &leaked[..leaked.len().min(3)],
        );
    }
}

#[test]
fn store_and_probe_fails_closed_under_chaos() {
    let catalog = catalog();
    let schema = schema();
    mechanism_chaos(&|| {
        Box::new(StoreAndProbe::new(catalog.clone(), schema.clone(), RoleSet::from([0]), 512))
    });
}

#[test]
fn tuple_embedded_fails_closed_under_chaos() {
    let catalog = catalog();
    let schema = schema();
    mechanism_chaos(&|| {
        Box::new(TupleEmbedded::new(catalog.clone(), schema.clone(), RoleSet::from([0]), 512))
    });
}

#[test]
fn sp_mechanism_fails_closed_under_chaos() {
    let catalog = catalog();
    let schema = schema();
    mechanism_chaos(&|| {
        Box::new(SpMechanism::new(catalog.clone(), schema.clone(), RoleSet::from([0]), 512))
    });
}

// ---------------------------------------------------------------------------
// Crash-recovery chaos: kill the supervised pipeline at random epochs and
// require recovery to uphold the same fail-closed contract.
//
// Two invariants per kill:
//
// 1. *recovery subset*: tuples released across the crash and restart are a
//    subset of what the uninterrupted run released — recovery may lose
//    tuples (counted in `recovery_dropped`) but never reveal one;
// 2. *zero policy-state divergence*: once recovered to the end of the
//    input, analyzer and operator snapshots are byte-identical to the
//    uninterrupted run's (sinks excepted: their counters are per-life).
// ---------------------------------------------------------------------------

/// The supervised fig-7-style plan: hardened source, shared select, two
/// shields. Must be deterministic — checkpoint sections are positional.
fn supervised_builder() -> (PlanBuilder, Vec<sp_engine::SinkRef>) {
    let mut b = PlanBuilder::new(catalog());
    let src = b.source(StreamId(1), schema());
    b.harden_source(src, QuarantinePolicy { ttl_ms: TTL_MS, slack_ms: 400, capacity: 64 });
    let sel =
        b.add(Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))), src);
    let q0 = b.add(SecurityShield::new(RoleSet::from([0])), sel);
    let q3 = b.add(SecurityShield::new(RoleSet::from([3])), sel);
    let s0 = b.sink(q0);
    let s3 = b.sink(q3);
    (b, vec![s0, s3])
}

/// Everything the plan's sinks released, tagged by sink so the subset
/// check distinguishes the two queries.
fn supervised_released(exec: &sp_engine::Executor) -> HashSet<String> {
    let (_, sinks) = supervised_builder();
    sinks
        .iter()
        .enumerate()
        .flat_map(|(i, s)| exec.sink(*s).tuples().map(move |t| format!("{i}:{}", t.tid.raw())))
        .collect()
}

/// The uninterrupted run: its released set and final operator state.
fn supervised_baseline(
    input: &[(StreamId, StreamElement)],
    cfg: &sp_engine::SupervisorConfig,
) -> (HashSet<String>, sp_engine::Checkpoint) {
    let mut store = sp_engine::MemStore::default();
    let clean = sp_engine::run_supervised(
        || supervised_builder().0,
        input,
        cfg,
        &mut store,
        &mut |_, _| false,
    )
    .expect("store never fails");
    assert!(clean.completed(), "clean supervised run must complete");
    let released = supervised_released(&clean.executor);
    assert!(!released.is_empty(), "clean run must release something");
    (released, clean.executor.checkpoint(0, 0))
}

#[test]
fn recovery_upholds_subset_invariant_across_random_epoch_kills() {
    let input = segmented_workload();
    let cfg = sp_engine::SupervisorConfig { epoch_interval: 16, ..Default::default() };
    let total_epochs = input.len() as u64 / cfg.epoch_interval;
    assert!(total_epochs >= 20, "workload must span enough epochs to sample");
    let (baseline, clean_final) = supervised_baseline(&input, &cfg);

    // Seeded LCG choice of at least 20 distinct kill epochs.
    let mut rng = 0x5EED_CAFE_u64;
    let mut kill_epochs = std::collections::BTreeSet::new();
    while kill_epochs.len() < 20 {
        rng = rng.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
        kill_epochs.insert(1 + (rng >> 33) % total_epochs);
    }

    for &ke in &kill_epochs {
        let mut store = sp_engine::MemStore::default();
        let mut killed = false;
        let mut oracle = move |e: u64, _p: u64| {
            if !killed && e == ke {
                killed = true;
                return true;
            }
            false
        };
        let run = sp_engine::run_supervised(
            || supervised_builder().0,
            &input,
            &cfg,
            &mut store,
            &mut oracle,
        )
        .expect("store never fails");
        assert!(run.completed(), "kill at epoch {ke}: recovery must complete");
        assert_eq!(run.report.checkpoints_restored, 1, "kill at epoch {ke}");
        assert!(run.report.epochs_replayed <= 1, "kill at epoch {ke}: replay stays bounded");

        // 1. Recovery subset: nothing released that the clean run withheld.
        let released = supervised_released(&run.executor);
        let leaked: Vec<&String> = released.difference(&baseline).collect();
        assert!(
            leaked.is_empty(),
            "kill at epoch {ke}: {} tuple(s) leaked that the clean run withheld, e.g. {:?}",
            leaked.len(),
            &leaked[..leaked.len().min(3)],
        );

        // 2. Zero policy-state divergence at the end of the input.
        let fin = run.executor.checkpoint(0, 0);
        assert_eq!(fin.analyzers, clean_final.analyzers, "kill at epoch {ke}: analyzer state");
        assert_eq!(fin.nodes, clean_final.nodes, "kill at epoch {ke}: operator state");
    }
}

/// Multiple kills per life, and a killer that outlasts the restart budget:
/// even the terminal fail-closed exit must not leak.
#[test]
fn repeated_and_exhausting_kills_stay_fail_closed() {
    let input = segmented_workload();
    let cfg = sp_engine::SupervisorConfig { epoch_interval: 16, ..Default::default() };
    let (baseline, clean_final) = supervised_baseline(&input, &cfg);

    // Two kills in one supervised run, at epoch pairs spread over the input.
    for (e1, e2) in [(1u64, 9u64), (3, 4), (7, 19), (12, 21)] {
        let mut store = sp_engine::MemStore::default();
        let (mut hit1, mut hit2) = (false, false);
        let mut oracle = move |e: u64, _p: u64| {
            if !hit1 && e == e1 {
                hit1 = true;
                return true;
            }
            if hit1 && !hit2 && e == e2 {
                hit2 = true;
                return true;
            }
            false
        };
        let run = sp_engine::run_supervised(
            || supervised_builder().0,
            &input,
            &cfg,
            &mut store,
            &mut oracle,
        )
        .expect("store never fails");
        assert!(run.completed(), "kills at epochs {e1},{e2}");
        assert_eq!(run.report.restart_attempts, 2, "kills at epochs {e1},{e2}");
        let released = supervised_released(&run.executor);
        assert!(released.is_subset(&baseline), "kills at epochs {e1},{e2}: leak");
        let fin = run.executor.checkpoint(0, 0);
        assert_eq!(fin.analyzers, clean_final.analyzers, "kills at epochs {e1},{e2}");
        assert_eq!(fin.nodes, clean_final.nodes, "kills at epochs {e1},{e2}");
    }

    // A crash the supervisor can never get past: terminal fail-closed.
    let mut store = sp_engine::MemStore::default();
    let cfg = sp_engine::SupervisorConfig { max_restarts: 3, ..cfg };
    let run = sp_engine::run_supervised(
        || supervised_builder().0,
        &input,
        &cfg,
        &mut store,
        &mut |_, p| p == 100,
    )
    .expect("store never fails");
    assert!(!run.completed(), "persistent killer must exhaust the budget");
    assert!(run.report.recovery_dropped > 0, "rest of the input refused");
    let released = supervised_released(&run.executor);
    assert!(released.is_subset(&baseline), "terminal fail-closed exit leaked");
}

// ---------------------------------------------------------------------------
// Durability chaos: a crash in the middle of appending a checkpoint frame
// leaves a torn frame at the log tail. Recovery must fall back to the
// last *fully committed* checkpoint — the torn tail is dead weight, not
// fatal — and replay from there must reproduce the baseline released set
// exactly (as the union across the two lives).
// ---------------------------------------------------------------------------

#[test]
fn kill_during_checkpoint_append_falls_back_to_last_committed() {
    use sp_engine::CheckpointStore;

    let input = segmented_workload();
    let cfg = sp_engine::SupervisorConfig { epoch_interval: 16, ..Default::default() };
    let (baseline, clean_final) = supervised_baseline(&input, &cfg);

    let dir = std::env::temp_dir().join(format!("sp-ckpt-append-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tenant.ckpt");
    let _ = std::fs::remove_file(&path);

    // Life 1: run two thirds of the input, checkpointing every 64
    // elements to the on-disk log.
    let cut = input.len() * 2 / 3;
    let mut store = sp_engine::FileStore::new(&path);
    let (b, _) = supervised_builder();
    let mut exec = b.build();
    let mut epoch = 0u64;
    let mut len_before_last_save = 0u64;
    for (i, (sid, e)) in input[..cut].iter().enumerate() {
        exec.push(*sid, e.clone()).expect("clean input must not error");
        if (i + 1) % 64 == 0 {
            epoch += 1;
            len_before_last_save = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            store.save(&exec.checkpoint(epoch, (i + 1) as u64)).expect("save");
        }
    }
    let released_life1 = supervised_released(&exec);
    assert!(epoch >= 3, "need several committed checkpoints, got {epoch}");

    // The crash: the last appended frame is cut in half, exactly what a
    // kill mid-append leaves on disk.
    let full = std::fs::metadata(&path).unwrap().len();
    assert!(full > len_before_last_save);
    let torn = len_before_last_save + (full - len_before_last_save) / 2;
    let fh = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    fh.set_len(torn).unwrap();
    drop(fh);

    // Recovery: a fresh handle must fall back to the last fully
    // committed checkpoint, one epoch behind the torn one.
    let store = sp_engine::FileStore::new(&path);
    let recovered = store.load_latest().expect("fallback checkpoint must load");
    assert_eq!(recovered.epoch, epoch - 1, "must fall back exactly one committed epoch");

    // Life 2: restore and replay everything past the recovered cut. The
    // union of the two lives' released sets must equal the baseline:
    // the torn checkpoint lost no release and leaked none.
    let (b2, _) = supervised_builder();
    let mut exec2 = b2.build();
    exec2.restore(&recovered).expect("recovered checkpoint must restore");
    for (sid, e) in &input[recovered.input_pos as usize..] {
        exec2.push(*sid, e.clone()).expect("replay must not error");
    }
    let mut released = released_life1;
    released.extend(supervised_released(&exec2));
    assert_eq!(released, baseline, "crash recovery must reproduce the baseline released set");

    // Zero policy-state divergence after the replay.
    let fin = exec2.checkpoint(0, 0);
    assert_eq!(fin.analyzers, clean_final.analyzers, "analyzer state diverged");
    assert_eq!(fin.nodes, clean_final.nodes, "operator state diverged");

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// Overload chaos: bursty arrivals drive a load-shedding plan up the
// degradation ladder (through FailClosed and back), alone and combined
// with the seeded fault campaign and with mid-burst crash recovery. The
// invariant is the same fail-closed contract: overload may suppress
// output, never widen it, and sps are never shed.
// ---------------------------------------------------------------------------

/// A bursty moving-object workload: every policy grants the probe role 0,
/// so the unshedded clean run releases every tuple — the tightest
/// possible baseline for the subset check. ON phases compress 32 tuples
/// into each stream-time millisecond; the shedder drains 2/ms, so bursts
/// overload it ~16× and lulls (1 tuple/ms) let the queue fully drain.
fn bursty_workload() -> (Vec<(StreamId, StreamElement)>, Arc<Schema>) {
    let w = location_stream(&WorkloadConfig {
        objects: 20,
        ticks: 36,
        sp_every: 20,
        policy_roles: 3,
        role_universe: 64,
        grant_selectivity: 1.0,
        scoped_sps: false,
        tick_ms: 100,
        burst: Some(BurstConfig { on_ticks: 4, off_ticks: 8, amplitude: 32 }),
        seed: 7,
    });
    let stream = w.stream;
    let schema = w.schema.clone();
    (w.elements.into_iter().map(|e| (stream, e)).collect(), schema)
}

fn burst_shed_cfg() -> ShedderConfig {
    ShedderConfig {
        capacity: 48,
        drain_per_ms: 2,
        watermarks: WatermarkConfig::default(),
        // p is kept light so shedding alone cannot hold occupancy below
        // the critical rungs — the test needs the full climb.
        policy: ShedPolicy::RandomP { p: 0.25, seed: 0xB00 },
    }
}

/// Hardened source → (optional shedder) → probe-role shield → sink.
fn bursty_builder(
    schema: &Arc<Schema>,
    shed: Option<ShedderConfig>,
) -> (PlanBuilder, sp_engine::SinkRef) {
    let mut b = PlanBuilder::new(catalog());
    let src = b.source(StreamId(1), schema.clone());
    b.harden_source(src, QuarantinePolicy { ttl_ms: TTL_MS, slack_ms: 400, capacity: 256 });
    let shield = SecurityShield::new(RoleSet::from([0]));
    let q = match shed {
        Some(cfg) => {
            let sh = b.add(Shedder::new(cfg), src);
            b.add(shield, sh)
        }
        None => b.add(shield, src),
    };
    let s = b.sink(q);
    (b, s)
}

fn run_bursty(
    input: &[(StreamId, StreamElement)],
    schema: &Arc<Schema>,
    shed: Option<ShedderConfig>,
) -> (HashSet<String>, sp_engine::DegradationStats) {
    let (b, s) = bursty_builder(schema, shed);
    let mut exec = b.build();
    for (sid, e) in input {
        exec.push(*sid, e.clone()).expect("clean input must not error");
    }
    (exec.sink(s).tuples().map(|t| t.to_string()).collect(), exec.degradation())
}

/// The acceptance scenario: bursts push the ladder all the way to
/// FailClosed, the lulls bring it all the way back to Normal, and the
/// whole episode is visible in the degradation counters — while the
/// released set stays inside the unshedded baseline.
#[test]
fn burst_overload_reaches_fail_closed_and_recovers_to_normal() {
    let (input, schema) = bursty_workload();
    let (baseline, base_deg) = run_bursty(&input, &schema, None);
    assert!(!baseline.is_empty(), "clean run must release something");
    assert_eq!(base_deg.shed_tuples, 0, "unshedded plan must not shed");

    let (released, deg) = run_bursty(&input, &schema, Some(burst_shed_cfg()));
    assert!(
        released.is_subset(&baseline),
        "overloaded run released tuples the unloaded run withheld"
    );
    assert!(deg.shed_tuples > 0, "bursts must force shedding");
    assert!(deg.shed_critical > 0, "bursts must reach the critical rungs");
    assert_eq!(deg.overload_peak, 3, "ladder must reach FailClosed: {deg}");
    assert_eq!(deg.overload_level, 0, "ladder must recover to Normal: {deg}");
    assert!(deg.ladder_escalations >= 3, "full climb: {deg}");
    assert!(deg.ladder_recoveries >= 3, "full descent: {deg}");
}

/// Bursts *and* seeded faults together: 30 drop/duplicate/delay/reorder
/// scenarios through the shedding plan. The released set must stay inside
/// the clean **unshedded** baseline — faults shift which tuples the
/// shedder picks, so the unloaded run is the only sound reference.
#[test]
fn shedded_plan_fails_closed_under_bursts_and_faults() {
    let (input, schema) = bursty_workload();
    let (baseline, _) = run_bursty(&input, &schema, None);

    let mut total_faults = 0u64;
    for s in 0..30u64 {
        let plan = FaultPlan::scenario(0x05ED_10AD ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut injector = FaultInjector::new(plan);
        let faulty = injector.apply(&input);
        total_faults += injector.stats().total();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let (b, sk) = bursty_builder(&schema, Some(burst_shed_cfg()));
            let mut exec = b.build();
            for (sid, e) in faulty {
                // Hostile input may be refused; refusal is fail-closed.
                let _ = exec.push(sid, e);
            }
            let released: HashSet<String> = exec.sink(sk).tuples().map(|t| t.to_string()).collect();
            (released, exec.degradation())
        }));
        let (released, deg) = match outcome {
            Ok(r) => r,
            Err(_) => panic!("scenario {s}: shedded plan panicked"),
        };
        let leaked: Vec<&String> = released.difference(&baseline).collect();
        assert!(
            leaked.is_empty(),
            "scenario {s}: {} tuple(s) leaked under burst+faults, e.g. {:?}",
            leaked.len(),
            &leaked[..leaked.len().min(3)],
        );
        assert_eq!(deg.overload_level, 0, "scenario {s}: ladder must recover");
    }
    assert!(total_faults > 0, "campaign must actually inject faults");
}

/// Mid-burst crash: kill the supervised shedding pipeline while the
/// ladder is elevated. Recovery restores the shedder byte-exactly, so
/// the recovered run repeats the same shed decisions — released tuples
/// stay a subset of the uninterrupted shedded run, and the full
/// FailClosed→Normal episode still shows in the counters.
#[test]
fn mid_burst_kill_recovers_with_identical_shed_decisions() {
    let (input, schema) = bursty_workload();
    let cfg = sp_engine::SupervisorConfig { epoch_interval: 32, ..Default::default() };

    let mut store = sp_engine::MemStore::default();
    let clean = sp_engine::run_supervised(
        || bursty_builder(&schema, Some(burst_shed_cfg())).0,
        &input,
        &cfg,
        &mut store,
        &mut |_, _| false,
    )
    .expect("store never fails");
    assert!(clean.completed());
    let clean_deg = clean.executor.degradation();
    assert_eq!(clean_deg.overload_peak, 3, "setup: bursts must reach FailClosed");
    let (_, sink) = bursty_builder(&schema, Some(burst_shed_cfg()));
    let baseline: HashSet<String> =
        clean.executor.sink(sink).tuples().map(|t| t.to_string()).collect();

    // Epoch 9 × 32 elements lands inside the second burst (ticks 12–15).
    for kill_epoch in [2u64, 9, 17] {
        let mut store = sp_engine::MemStore::default();
        let mut killed = false;
        let mut oracle = move |e: u64, _p: u64| {
            if !killed && e == kill_epoch {
                killed = true;
                return true;
            }
            false
        };
        let run = sp_engine::run_supervised(
            || bursty_builder(&schema, Some(burst_shed_cfg())).0,
            &input,
            &cfg,
            &mut store,
            &mut oracle,
        )
        .expect("store never fails");
        assert!(run.completed(), "kill at epoch {kill_epoch}: recovery must complete");
        assert_eq!(run.report.checkpoints_restored, 1, "kill at epoch {kill_epoch}");

        let released: HashSet<String> =
            run.executor.sink(sink).tuples().map(|t| t.to_string()).collect();
        assert!(
            released.is_subset(&baseline),
            "kill at epoch {kill_epoch}: recovery leaked past the shedded baseline"
        );
        // Byte-exact shedder restore ⇒ identical end-of-run shed story.
        let deg = run.executor.degradation();
        assert_eq!(deg.shed_tuples, clean_deg.shed_tuples, "kill at epoch {kill_epoch}");
        assert_eq!(deg.overload_peak, 3, "kill at epoch {kill_epoch}");
        assert_eq!(deg.overload_level, 0, "kill at epoch {kill_epoch}");
        assert_eq!(
            deg.ladder_escalations, clean_deg.ladder_escalations,
            "kill at epoch {kill_epoch}"
        );
        assert_eq!(
            deg.ladder_recoveries, clean_deg.ladder_recoveries,
            "kill at epoch {kill_epoch}"
        );
    }
}

// ---------------------------------------------------------------------------
// Ciphertext-corruption campaign: the crypto-enforced mechanism against a
// *malicious* forwarder. The untrusted relay is replaced by a seeded
// `CipherFaultInjector` that flips ciphertext bytes, truncates frames,
// drops digests, replays whole segments, swaps nonces, and perturbs key
// epochs. Under every schedule:
//
// 1. no panic, ever;
// 2. released ⊆ the fault-free plaintext baseline (what the shield-based
//    sp mechanism releases on the clean stream) — corruption may suppress
//    output but must never forge or resurrect it;
// 3. zero unauthenticated releases — nothing leaves the client without a
//    verified AEAD tag and segment digest;
// 4. every suppression is audited: CipherSuppressed records match the
//    violation counters one-to-one (nothing is dropped silently);
// 5. the whole story is deterministic: same seed ⇒ byte-identical audit
//    trail and identical release sequence.
// ---------------------------------------------------------------------------

use sp_baselines::{CryptoClient, CryptoEnforced, CryptoProvider, KeyAuthority};
use sp_engine::fault::{CipherFaultInjector, CipherFaultPlan};
use sp_engine::telemetry::AuditEvent;

const CRYPTO_MASTER: [u8; 32] = [0xA7; 32];
const CRYPTO_IN_FLIGHT: usize = 512;

/// Encodes the scoped workload into cipher frames with a fresh
/// provider/authority, returning the frames and the authority the client
/// must share.
fn crypto_frames() -> (Vec<Vec<u8>>, Arc<KeyAuthority>) {
    let authority = Arc::new(KeyAuthority::new(CRYPTO_MASTER));
    let mut provider = CryptoProvider::new(catalog(), schema(), authority.clone());
    let mut frames = Vec::new();
    for e in scoped_workload() {
        provider.push(e, &mut frames);
    }
    provider.finish(&mut frames);
    (frames, authority)
}

/// Feeds `frames` into a fresh client holding role 0, returning the
/// released tuple strings (ordered) and the client for inspection.
fn crypto_deliver(
    frames: &[Vec<u8>],
    authority: &Arc<KeyAuthority>,
) -> (Vec<String>, CryptoClient) {
    let mut client = CryptoClient::new(authority.clone(), &RoleSet::from([0]), CRYPTO_IN_FLIGHT);
    let mut out = Vec::new();
    for f in frames {
        client.feed(f, &mut out);
    }
    (out.iter().map(|t| t.to_string()).collect(), client)
}

/// The plaintext baseline: what the paper's own (trusted-server) sp
/// mechanism releases on the clean stream. The crypto path may only ever
/// release a subset of this, faults or not.
fn plaintext_baseline() -> HashSet<String> {
    let mut m = SpMechanism::new(catalog(), schema(), RoleSet::from([0]), CRYPTO_IN_FLIGHT);
    run_mechanism(&mut m, scoped_workload()).iter().map(|t| t.to_string()).collect()
}

#[test]
fn crypto_clean_run_matches_plaintext_baseline() {
    let baseline = plaintext_baseline();
    assert!(!baseline.is_empty(), "clean plaintext run must release something");
    let (frames, authority) = crypto_frames();
    let (released, client) = crypto_deliver(&frames, &authority);
    let released_set: HashSet<String> = released.iter().cloned().collect();
    assert_eq!(released_set, baseline, "clean ciphertext run must equal plaintext");
    assert_eq!(client.released_unauthenticated(), 0);
    assert_eq!(client.violations_total(), 0, "clean frames must not trip violations");
    assert_eq!(client.cipher_buffer_bytes(), 0, "journal drained at end of stream");
}

#[test]
fn ciphertext_corruption_campaign_fails_closed() {
    let baseline = plaintext_baseline();
    let (frames, authority) = crypto_frames();
    let mut scenarios_with_injection = 0u32;
    let mut scenarios_with_suppression = 0u32;
    for s in 0..40u64 {
        let plan = CipherFaultPlan::scenario(0xC1F4 ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut injector = CipherFaultInjector::new(plan);
        let delivered = injector.apply(&frames);
        if injector.stats().total() > 0 {
            scenarios_with_injection += 1;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| crypto_deliver(&delivered, &authority)));
        let (released, client) = match outcome {
            Ok(r) => r,
            Err(_) => panic!("scenario {s}: crypto client panicked"),
        };
        // (2) subset of the plaintext baseline.
        let released_set: HashSet<String> = released.iter().cloned().collect();
        let leaked: Vec<&String> = released_set.difference(&baseline).collect();
        assert!(
            leaked.is_empty(),
            "scenario {s}: {} tuple(s) released that plaintext enforcement withheld, e.g. {:?}",
            leaked.len(),
            &leaked[..leaked.len().min(3)],
        );
        // No duplicates either: a replayed segment must not double-release.
        assert_eq!(released.len(), released_set.len(), "scenario {s}: duplicate releases");
        // (3) nothing unauthenticated.
        assert_eq!(client.released_unauthenticated(), 0, "scenario {s}");
        // (4) audit completeness: one CipherSuppressed record per counted
        // violation, one TentativeRolledBack per rolled-back journal entry
        // — and the journal is empty at end of stream.
        let suppressed_records = client
            .recorder()
            .records()
            .filter(|r| matches!(r.event, AuditEvent::CipherSuppressed { .. }))
            .count() as u64;
        assert_eq!(
            suppressed_records,
            client.violations_total(),
            "scenario {s}: unaudited suppression"
        );
        assert_eq!(client.cipher_buffer_bytes(), 0, "scenario {s}: journal not drained");
        if client.violations_total() > 0 {
            scenarios_with_suppression += 1;
        }
        // (5) determinism: replay the same delivery; audit trail and
        // release sequence must be byte-identical.
        let (released2, client2) = crypto_deliver(&delivered, &authority);
        assert_eq!(released, released2, "scenario {s}: nondeterministic releases");
        assert_eq!(client.audit_bytes(), client2.audit_bytes(), "scenario {s}: audit diverged");
    }
    assert!(scenarios_with_injection >= 35, "campaign must actually inject faults");
    assert!(scenarios_with_suppression >= 20, "faults must actually trip suppressions");
}

/// Negative control: a deliberately broken client that releases frames
/// whose AEAD tag check failed. The campaign's own invariants must catch
/// it — proving the assertions above have teeth.
#[test]
fn broken_tag_check_client_is_caught_by_the_campaign() {
    let (frames, authority) = crypto_frames();
    let mut caught = false;
    for s in 0..10u64 {
        let plan = CipherFaultPlan::scenario(0xBAD ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut injector = CipherFaultInjector::new(plan);
        let delivered = injector.apply(&frames);
        let mut client =
            CryptoClient::new(authority.clone(), &RoleSet::from([0]), CRYPTO_IN_FLIGHT)
                .with_broken_tag_check();
        let mut out = Vec::new();
        for f in &delivered {
            client.feed(f, &mut out);
        }
        if client.released_unauthenticated() > 0 {
            caught = true;
            break;
        }
    }
    assert!(caught, "the unauthenticated-release counter must flag the broken client");
}

/// The element-level chaos campaign (dropped/duplicated/reordered raw
/// elements, upstream of encryption) holds for the fourth mechanism too.
#[test]
fn crypto_enforced_fails_closed_under_element_chaos() {
    let catalog = catalog();
    let schema = schema();
    mechanism_chaos(&|| {
        Box::new(CryptoEnforced::new(catalog.clone(), schema.clone(), RoleSet::from([0]), 512))
    });
}
