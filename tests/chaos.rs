//! Chaos campaign: the engine and all three enforcement mechanisms must
//! **fail closed** under hostile stream conditions.
//!
//! Every test perturbs a recorded punctuated workload with seeded faults
//! (dropped / duplicated / delayed / reordered sps and tuples) and checks
//! the two degradation invariants from `sp_engine::fault`:
//!
//! 1. no panic, ever;
//! 2. the set of tuples released under faults is a subset of the tuples
//!    released on the clean input — losing an sp may suppress output but
//!    must never reveal tuples the clean run withheld.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use sp_baselines::{
    run_mechanism, EnforcementMechanism, SpMechanism, StoreAndProbe, TupleEmbedded,
};
use sp_core::{
    DataDescription, RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement,
    StreamId, Timestamp, Tuple, TupleId, Value, ValueType,
};
use sp_engine::fault::{run_chaos, FaultInjector, FaultPlan};
use sp_engine::{CmpOp, Expr, PlanBuilder, QuarantinePolicy, SecurityShield, Select};

/// Stream-time gap between consecutive sp-batches. Must exceed the
/// quarantine TTL so a lost sp leaves its segment *ungoverned* (tuples
/// quarantined and dropped) instead of inheriting the previous policy.
const SEGMENT_MS: u64 = 1_000;
/// Policy freshness window for hardened sources. Larger than the widest
/// in-segment tuple offset, so the clean run releases every granted tuple.
const TTL_MS: u64 = 500;
const TUPLES_PER_SEGMENT: u64 = 14;
const SEGMENTS: u64 = 24;

fn schema() -> Arc<Schema> {
    Schema::of("loc", &[("id", ValueType::Int), ("v", ValueType::Int)])
}

fn catalog() -> Arc<RoleCatalog> {
    let mut c = RoleCatalog::new();
    c.register_synthetic_roles(16);
    Arc::new(c)
}

fn tuple(tid: u64, ts: u64) -> StreamElement {
    StreamElement::tuple(Tuple::new(
        StreamId(1),
        TupleId(tid),
        Timestamp(ts),
        vec![Value::Int(tid as i64), Value::Int((tid % 7) as i64)],
    ))
}

/// Segment `k` grants role `k % 3` plus the always-on role 3. Tuples sit
/// well inside the TTL window of their own sp and far outside every other
/// segment's window.
fn segmented_workload() -> Vec<(StreamId, StreamElement)> {
    let mut out = Vec::new();
    for k in 0..SEGMENTS {
        let base = (k + 1) * SEGMENT_MS;
        let mut roles = RoleSet::from([3]);
        roles.insert(RoleId((k % 3) as u32));
        out.push((
            StreamId(1),
            StreamElement::punctuation(SecurityPunctuation::grant_all(roles, Timestamp(base))),
        ));
        for i in 1..=TUPLES_PER_SEGMENT {
            out.push((StreamId(1), tuple(k * 100 + i, base + i * 10)));
        }
    }
    out
}

/// The engine invariant, at the acceptance bar: 60 seeded fault scenarios
/// over a fig-7-style shielded plan (shared select feeding two queries
/// with different roles) with a hardened, fail-closed source.
#[test]
fn engine_fails_closed_across_60_seeded_scenarios() {
    let input = segmented_workload();
    let schema = schema();
    let catalog = catalog();
    let report = run_chaos(&input, 60, 0xDEC0_DE01, || {
        let mut b = PlanBuilder::new(catalog.clone());
        let src = b.source(StreamId(1), schema.clone());
        b.harden_source(
            src,
            QuarantinePolicy { ttl_ms: TTL_MS, slack_ms: 400, capacity: 64 },
        );
        let sel = b.add(
            Select::new(Expr::cmp(CmpOp::Ge, Expr::Attr(1), Expr::Const(Value::Int(0)))),
            src,
        );
        let q0 = b.add(SecurityShield::new(RoleSet::from([0])), sel);
        let q3 = b.add(SecurityShield::new(RoleSet::from([3])), sel);
        let s0 = b.sink(q0);
        let s3 = b.sink(q3);
        (b, vec![s0, s3])
    });
    assert!(report.passed(), "{}\n{:?}", report.summary(), report.violations);
    assert_eq!(report.scenarios, 60);
    assert!(report.faults.total() > 0, "campaign must actually inject faults");
}

/// The workload for the cross-mechanism equivalence campaign: each sp is
/// *scoped* to its own segment's disjoint tuple-id range, so under any
/// drop/delay/reorder a tuple is either governed by its own policy or by
/// none — every mechanism denies ungoverned tuples.
fn scoped_workload() -> Vec<StreamElement> {
    let mut out = Vec::new();
    for k in 0..SEGMENTS {
        let base = (k + 1) * SEGMENT_MS;
        // Roles alternate so faults flip real grant/deny decisions.
        let roles: RoleSet = if k % 2 == 0 {
            RoleSet::from([0, 1])
        } else {
            RoleSet::from([1, 2])
        };
        out.push(StreamElement::punctuation(
            SecurityPunctuation::grant_all(roles, Timestamp(base))
                .with_ddp(DataDescription::tuple_range(k * 100, k * 100 + 99)),
        ));
        for i in 1..=TUPLES_PER_SEGMENT {
            out.push(tuple(k * 100 + i, base + i * 10));
        }
    }
    out
}

/// Runs the 50-scenario fail-closed campaign against one mechanism.
fn mechanism_chaos(make: &dyn Fn() -> Box<dyn EnforcementMechanism>) {
    let elements = scoped_workload();
    let input: Vec<(StreamId, StreamElement)> =
        elements.iter().map(|e| (StreamId(1), e.clone())).collect();

    let mut m = make();
    let baseline: HashSet<String> = run_mechanism(m.as_mut(), elements)
        .iter()
        .map(|t| t.to_string())
        .collect();
    assert!(!baseline.is_empty(), "clean run must release something");
    assert!(m.denied() > 0, "clean run must deny something");

    for s in 0..50u64 {
        let plan = FaultPlan::scenario(0xBA5E ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut injector = FaultInjector::new(plan);
        let faulty = injector.apply(&input);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut m = make();
            run_mechanism(m.as_mut(), faulty.into_iter().map(|(_, e)| e))
                .iter()
                .map(|t| t.to_string())
                .collect::<HashSet<String>>()
        }));
        let released = match outcome {
            Ok(set) => set,
            Err(_) => panic!("scenario {s}: mechanism panicked"),
        };
        let leaked: Vec<&String> = released.difference(&baseline).collect();
        assert!(
            leaked.is_empty(),
            "scenario {s}: {} tuple(s) leaked that the clean run withheld, e.g. {:?}",
            leaked.len(),
            &leaked[..leaked.len().min(3)],
        );
    }
}

#[test]
fn store_and_probe_fails_closed_under_chaos() {
    let catalog = catalog();
    let schema = schema();
    mechanism_chaos(&|| {
        Box::new(StoreAndProbe::new(
            catalog.clone(),
            schema.clone(),
            RoleSet::from([0]),
            512,
        ))
    });
}

#[test]
fn tuple_embedded_fails_closed_under_chaos() {
    let catalog = catalog();
    let schema = schema();
    mechanism_chaos(&|| {
        Box::new(TupleEmbedded::new(
            catalog.clone(),
            schema.clone(),
            RoleSet::from([0]),
            512,
        ))
    });
}

#[test]
fn sp_mechanism_fails_closed_under_chaos() {
    let catalog = catalog();
    let schema = schema();
    mechanism_chaos(&|| {
        Box::new(SpMechanism::new(
            catalog.clone(),
            schema.clone(),
            RoleSet::from([0]),
            512,
        ))
    });
}
