//! End-to-end scenarios from the paper, driven entirely through the
//! public CQL + Dsms API: the Fig. 4 hospital streams, stream/tuple/
//! attribute-granularity policies, negative and immutable punctuations,
//! server-side refinement, joins, aggregates and DISTINCT.

use std::sync::Arc;

use sp_core::{Policy, RoleSet, Schema, StreamElement, StreamId, Timestamp, Tuple, TupleId, Value};
use sp_mog::health::{body_temperature_schema, heart_rate_schema, streams, HOSPITAL_ROLES};
use sp_query::Dsms;

fn hospital_dsms() -> Dsms {
    let mut dsms = Dsms::new();
    dsms.register_stream(streams::HEART_RATE, heart_rate_schema()).unwrap();
    dsms.register_stream(streams::BODY_TEMPERATURE, body_temperature_schema()).unwrap();
    for role in HOSPITAL_ROLES {
        dsms.register_role(role).unwrap();
    }
    dsms
}

fn hr_tuple(pid: u64, ts: u64, beats: i64) -> StreamElement {
    StreamElement::tuple(Tuple::new(
        streams::HEART_RATE,
        TupleId(pid),
        Timestamp(ts),
        vec![Value::Int(pid as i64), Value::Int(beats)],
    ))
}

fn bt_tuple(pid: u64, ts: u64, temp: f64) -> StreamElement {
    StreamElement::tuple(Tuple::new(
        streams::BODY_TEMPERATURE,
        TupleId(pid),
        Timestamp(ts),
        vec![Value::Int(pid as i64), Value::Float(temp)],
    ))
}

/// The paper's §III-C tuple-level example: "Only queries registered by a
/// general physician can access data tuples (from any data stream) of
/// patients with ids between 120 and 133."
#[test]
fn tuple_level_policy_via_cql() {
    let mut dsms = hospital_dsms();
    let gp = dsms.register_subject("gp", &["general_physician"]).unwrap();
    let derm = dsms.register_subject("derm", &["dermatologist"]).unwrap();
    let q_gp = dsms.submit("SELECT Patient_id, Beats_per_min FROM HeartRate", gp).unwrap();
    let q_derm = dsms.submit("SELECT Patient_id, Beats_per_min FROM HeartRate", derm).unwrap();

    let (sid, sp) = dsms
        .insert_sp(
            "INSERT SP INTO STREAM HeartRate \
             LET DDP = ('*', '<120-133>', '*'), SRP = 'general_physician'",
            Timestamp(0),
        )
        .unwrap();

    let mut running = dsms.start();
    running.push(sid, StreamElement::punctuation(sp));
    running.push(streams::HEART_RATE, hr_tuple(120, 1, 70));
    running.push(streams::HEART_RATE, hr_tuple(133, 2, 72));
    running.push(streams::HEART_RATE, hr_tuple(134, 3, 74)); // out of scope

    let gp_ids: Vec<u64> = running.results(q_gp).tuples().map(|t| t.tid.raw()).collect();
    assert_eq!(gp_ids, vec![120, 133]);
    assert_eq!(running.results(q_derm).tuple_count(), 0, "wrong role sees nothing");
}

/// Stream-level policy (§III-C): "Only queries registered by a cardiologist
/// can query the stream HeartRate" — an sp whose DDP names the stream.
#[test]
fn stream_level_policy_via_cql() {
    let mut dsms = hospital_dsms();
    let cardio = dsms.register_subject("c", &["cardiologist"]).unwrap();
    let nurse = dsms.register_subject("n", &["nurse_on_duty"]).unwrap();
    let q_c = dsms.submit("SELECT Patient_id FROM HeartRate", cardio).unwrap();
    let q_n = dsms.submit("SELECT Patient_id FROM HeartRate", nurse).unwrap();

    let (sid, sp) = dsms
        .insert_sp(
            "INSERT SP INTO STREAM HeartRate \
             LET DDP = ('HeartRate', '*', '*'), SRP = 'cardiologist'",
            Timestamp(0),
        )
        .unwrap();
    let mut running = dsms.start();
    running.push(sid, StreamElement::punctuation(sp));
    running.push(streams::HEART_RATE, hr_tuple(1, 1, 80));
    assert_eq!(running.results(q_c).tuple_count(), 1);
    assert_eq!(running.results(q_n).tuple_count(), 0);
}

/// Negative punctuations override grants within a batch (same timestamp).
#[test]
fn negative_sp_revokes_within_batch() {
    let mut dsms = hospital_dsms();
    let emp = dsms.register_subject("emp", &["employee"]).unwrap();
    let doc = dsms.register_subject("doc", &["doctor"]).unwrap();
    let q_emp = dsms.submit("SELECT Patient_id FROM HeartRate", emp).unwrap();
    let q_doc = dsms.submit("SELECT Patient_id FROM HeartRate", doc).unwrap();

    // Batch at ts=5: grant everyone, then revoke employees.
    let (sid, grant) = dsms
        .insert_sp(
            "INSERT SP INTO STREAM HeartRate LET DDP = ('*','*','*'), SRP = '*'",
            Timestamp(5),
        )
        .unwrap();
    let (_, deny) = dsms
        .insert_sp(
            "INSERT SP INTO STREAM HeartRate \
             LET DDP = ('*','*','*'), SRP = 'employee', SIGN = negative",
            Timestamp(5),
        )
        .unwrap();
    let mut running = dsms.start();
    running.push(sid, StreamElement::punctuation(grant));
    running.push(sid, StreamElement::punctuation(deny));
    running.push(streams::HEART_RATE, hr_tuple(1, 6, 80));
    assert_eq!(running.results(q_doc).tuple_count(), 1);
    assert_eq!(running.results(q_emp).tuple_count(), 0, "negative sp wins");
}

/// Server-side policies refine (intersect) data-provider policies unless
/// the provider marks the sp immutable (§II-B, §III-E).
#[test]
fn server_policy_and_immutability() {
    for immutable in [false, true] {
        let mut dsms = hospital_dsms();
        let nurse = dsms.register_subject("n", &["nurse_on_duty"]).unwrap();
        let q = dsms.submit("SELECT Patient_id FROM HeartRate", nurse).unwrap();
        // The hospital only allows doctors — installed on the stream.
        // (Planner-placed shields sit above the scan; the server policy
        // applies inside the analyzer itself.)
        let doctor_only: RoleSet =
            [dsms.catalog.roles.lookup_role("doctor").unwrap()].into_iter().collect();
        let sql = if immutable {
            "INSERT SP INTO STREAM HeartRate \
             LET DDP = ('*','*','*'), SRP = 'doctor|nurse_on_duty', IMMUTABLE = true"
        } else {
            "INSERT SP INTO STREAM HeartRate \
             LET DDP = ('*','*','*'), SRP = 'doctor|nurse_on_duty'"
        };
        let (sid, sp) = dsms.insert_sp(sql, Timestamp(0)).unwrap();

        // Build by hand to install the server policy on the source.
        let mut builder = sp_engine::PlanBuilder::new(Arc::new(dsms.catalog.roles.clone()));
        let src = builder.source(streams::HEART_RATE, heart_rate_schema());
        builder.set_server_policy(src, Some(Policy::tuple_level(doctor_only, Timestamp(0))));
        let roles = dsms.queries()[0].roles.clone();
        let ss = builder.add(sp_engine::SecurityShield::new(roles), src);
        let sink = builder.sink(ss);
        let mut exec = builder.build();
        exec.push(sid, StreamElement::punctuation(sp)).unwrap();
        exec.push(streams::HEART_RATE, hr_tuple(1, 1, 70)).unwrap();

        let released = exec.sink(sink).tuple_count();
        if immutable {
            assert_eq!(released, 1, "immutable provider sp ignores the server policy");
        } else {
            assert_eq!(released, 0, "server refinement removed the nurse's access");
        }
        let _ = q;
    }
}

/// A windowed CQL join across the two vitals streams enforces policy
/// compatibility of the base tuples.
#[test]
fn cql_join_enforces_policy_compatibility() {
    let mut dsms = hospital_dsms();
    let doc = dsms.register_subject("doc", &["doctor"]).unwrap();
    let q = dsms
        .submit(
            "SELECT h.Patient_id, h.Beats_per_min, t.Temperature \
             FROM HeartRate [RANGE 10 SECONDS] AS h, \
                  BodyTemperature [RANGE 10 SECONDS] AS t \
             WHERE h.Patient_id = t.Patient_id",
            doc,
        )
        .unwrap();

    let grant = |stream: &str, srp: &str, ts: u64, dsms: &Dsms| {
        dsms.insert_sp(
            &format!("INSERT SP INTO STREAM {stream} LET DDP = ('*','*','*'), SRP = '{srp}'"),
            Timestamp(ts),
        )
        .unwrap()
    };

    let mut running = dsms.start();
    // Both sides doctor-visible: join result flows.
    let (s1, sp1) = grant("HeartRate", "doctor", 0, &dsms);
    let (s2, sp2) = grant("BodyTemperature", "doctor|employee", 0, &dsms);
    running.push(s1, StreamElement::punctuation(sp1));
    running.push(s2, StreamElement::punctuation(sp2));
    running.push(streams::HEART_RATE, hr_tuple(120, 100, 70));
    running.push(streams::BODY_TEMPERATURE, bt_tuple(120, 101, 98.6));
    assert_eq!(running.results(q).tuple_count(), 1);

    // Heart side flips to employee-only: policies incompatible with the
    // doctor query → no further join results for the doctor.
    let (s1, sp1) = grant("HeartRate", "employee", 200, &dsms);
    running.push(s1, StreamElement::punctuation(sp1));
    running.push(streams::HEART_RATE, hr_tuple(121, 201, 75));
    running.push(streams::BODY_TEMPERATURE, bt_tuple(121, 202, 99.1));
    assert_eq!(running.results(q).tuple_count(), 1, "no new result");
}

/// Aggregates through CQL: attribute subgroups keep aggregates policy-pure.
#[test]
fn cql_aggregate_respects_subgroups() {
    let mut dsms = hospital_dsms();
    let doc = dsms.register_subject("doc", &["doctor"]).unwrap();
    let q = dsms
        .submit(
            "SELECT COUNT(Beats_per_min) FROM HeartRate [RANGE 60 SECONDS] GROUP BY Patient_id",
            doc,
        )
        .unwrap();
    let mut running = dsms.start();
    let (sid, sp) = dsms
        .insert_sp(
            "INSERT SP INTO STREAM HeartRate LET DDP = ('*','*','*'), SRP = 'doctor'",
            Timestamp(0),
        )
        .unwrap();
    running.push(sid, StreamElement::punctuation(sp));
    for (ts, beats) in [(1u64, 70i64), (2, 71), (3, 72)] {
        running.push(streams::HEART_RATE, hr_tuple(120, ts, beats));
    }
    // The latest visible count for patient 120 is 3 (a lone aggregate
    // projects away the grouping column).
    let counts: Vec<i64> =
        running.results(q).tuples().map(|t| t.value(0).unwrap().as_i64().unwrap()).collect();
    assert_eq!(counts, vec![1, 2, 3]);

    // Under a policy invisible to the doctor, the count restarts fresh —
    // the doctor's aggregate never mixes in unauthorized tuples.
    let (sid2, sp2) = dsms
        .insert_sp(
            "INSERT SP INTO STREAM HeartRate LET DDP = ('*','*','*'), SRP = 'employee'",
            Timestamp(10),
        )
        .unwrap();
    running.push(sid2, StreamElement::punctuation(sp2));
    running.push(streams::HEART_RATE, hr_tuple(120, 11, 99));
    let after: Vec<i64> =
        running.results(q).tuples().map(|t| t.value(0).unwrap().as_i64().unwrap()).collect();
    assert_eq!(after, vec![1, 2, 3], "unauthorized tuple contributed nothing");
}

/// DISTINCT through CQL: duplicates re-released only to new audiences.
#[test]
fn cql_distinct_audience_tracking() {
    let mut dsms = hospital_dsms();
    let doc = dsms.register_subject("doc", &["doctor"]).unwrap();
    let q = dsms
        .submit("SELECT DISTINCT Beats_per_min FROM HeartRate [RANGE 60 SECONDS]", doc)
        .unwrap();
    let mut running = dsms.start();
    let grant = |srp: &str, ts: u64, dsms: &Dsms| {
        dsms.insert_sp(
            &format!("INSERT SP INTO STREAM HeartRate LET DDP = ('*','*','*'), SRP = '{srp}'"),
            Timestamp(ts),
        )
        .unwrap()
    };
    let (sid, sp) = grant("doctor", 0, &dsms);
    running.push(sid, StreamElement::punctuation(sp));
    running.push(streams::HEART_RATE, hr_tuple(1, 1, 70));
    running.push(streams::HEART_RATE, hr_tuple(2, 2, 70)); // duplicate value
    assert_eq!(running.results(q).tuple_count(), 1, "doctor sees 70 once");
}

/// Dynamic mid-stream policy changes deliver/withhold instantly — the
/// paper's headline property, through the full stack.
#[test]
fn dynamic_policy_changes_are_immediate() {
    let mut dsms = hospital_dsms();
    let doc = dsms.register_subject("doc", &["doctor"]).unwrap();
    let q = dsms.submit("SELECT Patient_id FROM HeartRate", doc).unwrap();
    let mut running = dsms.start();
    let grant = |srp: &str, ts: u64, dsms: &Dsms| {
        dsms.insert_sp(
            &format!("INSERT SP INTO STREAM HeartRate LET DDP = ('*','*','*'), SRP = '{srp}'"),
            Timestamp(ts),
        )
        .unwrap()
    };
    let mut expected = 0;
    for round in 0u64..20 {
        let visible = round % 3 != 0;
        let (sid, sp) = grant(if visible { "doctor" } else { "employee" }, round * 10, &dsms);
        running.push(sid, StreamElement::punctuation(sp));
        running.push(streams::HEART_RATE, hr_tuple(1, round * 10 + 1, 70));
        if visible {
            expected += 1;
        }
        assert_eq!(
            running.results(q).tuple_count(),
            expected,
            "round {round}: enforcement lags the policy"
        );
    }
}

/// The reorder buffer feeds the engine correctly: a disordered raw stream
/// produces the same results as the ordered one.
#[test]
fn out_of_order_ingestion_with_reorder_buffer() {
    use sp_engine::ReorderBuffer;

    let schema: Arc<Schema> = Schema::of("s", &[("id", sp_core::ValueType::Int)]);
    let build = || {
        let mut catalog = sp_core::RoleCatalog::new();
        catalog.register_synthetic_roles(4);
        let mut b = sp_engine::PlanBuilder::new(Arc::new(catalog));
        let src = b.source(StreamId(1), schema.clone());
        let ss = b.add(sp_engine::SecurityShield::new(RoleSet::from([1])), src);
        let sink = b.sink(ss);
        (b.build(), sink)
    };

    let sp = |ts: u64, roles: &[u32]| {
        StreamElement::punctuation(sp_core::SecurityPunctuation::grant_all(
            roles.iter().map(|&r| sp_core::RoleId(r)).collect(),
            Timestamp(ts),
        ))
    };
    let tup = |ts: u64| {
        StreamElement::tuple(Tuple::new(
            StreamId(1),
            TupleId(ts),
            Timestamp(ts),
            vec![Value::Int(ts as i64)],
        ))
    };
    let ordered =
        vec![sp(1, &[1]), tup(2), tup(3), sp(10, &[2]), tup(11), sp(20, &[1]), tup(21), tup(22)];
    // Locally disordered arrival of the same elements.
    let disordered = vec![
        ordered[1].clone(),
        ordered[0].clone(),
        ordered[2].clone(),
        ordered[4].clone(),
        ordered[3].clone(),
        ordered[6].clone(),
        ordered[5].clone(),
        ordered[7].clone(),
    ];

    let (mut exec_a, sink_a) = build();
    for e in &ordered {
        exec_a.push(StreamId(1), e.clone()).unwrap();
    }

    let (mut exec_b, sink_b) = build();
    let mut buffer = ReorderBuffer::new(30);
    let mut staged = Vec::new();
    for e in disordered {
        buffer.push(e, &mut staged);
    }
    buffer.flush(&mut staged);
    for e in staged {
        exec_b.push(StreamId(1), e).unwrap();
    }

    let a: Vec<u64> = exec_a.sink(sink_a).tuples().map(|t| t.tid.raw()).collect();
    let b: Vec<u64> = exec_b.sink(sink_b).tuples().map(|t| t.tid.raw()).collect();
    assert_eq!(a, b);
    assert_eq!(a, vec![2, 3, 21, 22]);
}

/// Runtime role reassignment (§IX future work): a running query's shield
/// predicate is swapped in place and takes effect on the very next tuple.
#[test]
fn runtime_role_reassignment_updates_shield() {
    let schema = Schema::of("s", &[("id", sp_core::ValueType::Int)]);
    let mut catalog = sp_core::RoleCatalog::new();
    catalog.register_synthetic_roles(4);
    let mut b = sp_engine::PlanBuilder::new(Arc::new(catalog));
    let src = b.source(StreamId(1), schema);
    let ss = b.add(sp_engine::SecurityShield::new(RoleSet::from([1])), src);
    let sink = b.sink(ss);
    let mut exec = b.build();

    let grant = |roles: &[u32], ts: u64| {
        StreamElement::punctuation(sp_core::SecurityPunctuation::grant_all(
            roles.iter().map(|&r| sp_core::RoleId(r)).collect(),
            Timestamp(ts),
        ))
    };
    let tup = |tid: u64, ts: u64| {
        StreamElement::tuple(Tuple::new(
            StreamId(1),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64)],
        ))
    };

    exec.push(StreamId(1), grant(&[2], 0)).unwrap();
    exec.push(StreamId(1), tup(1, 1)).unwrap();
    assert_eq!(exec.sink(sink).tuple_count(), 0, "role 1 not authorized");

    // The subject's roles change to {2}: the shield is updated in place
    // and the buffered segment policy re-evaluated.
    assert!(exec.update_predicate(ss, &RoleSet::from([2])));
    exec.push(StreamId(1), tup(2, 2)).unwrap();
    assert_eq!(exec.sink(sink).tuple_count(), 1, "new role sees the segment");

    // And back again.
    assert!(exec.update_predicate(ss, &RoleSet::from([3])));
    exec.push(StreamId(1), tup(3, 3)).unwrap();
    assert_eq!(exec.sink(sink).tuple_count(), 1);
}

/// Incremental policies (§IX future work) through the engine: grants
/// accumulate and negative sps revoke, instead of wholesale replacement.
#[test]
fn incremental_policies_through_the_engine() {
    let schema = Schema::of("s", &[("id", sp_core::ValueType::Int)]);
    let mut catalog = sp_core::RoleCatalog::new();
    catalog.register_synthetic_roles(4);
    let mut b = sp_engine::PlanBuilder::new(Arc::new(catalog));
    let src = b.source(StreamId(1), schema);
    b.set_incremental(src, true);
    let ss = b.add(sp_engine::SecurityShield::new(RoleSet::from([1])), src);
    let sink = b.sink(ss);
    let mut exec = b.build();

    let tup = |tid: u64, ts: u64| {
        StreamElement::tuple(Tuple::new(
            StreamId(1),
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64)],
        ))
    };
    let grant = |roles: &[u32], ts: u64| {
        StreamElement::punctuation(sp_core::SecurityPunctuation::grant_all(
            roles.iter().map(|&r| sp_core::RoleId(r)).collect(),
            Timestamp(ts),
        ))
    };
    let revoke = |roles: &[u32], ts: u64| {
        StreamElement::punctuation(
            sp_core::SecurityPunctuation::grant_all(
                roles.iter().map(|&r| sp_core::RoleId(r)).collect(),
                Timestamp(ts),
            )
            .negative(),
        )
    };

    exec.push(StreamId(1), grant(&[1], 1)).unwrap();
    exec.push(StreamId(1), tup(1, 2)).unwrap(); // visible
    exec.push(StreamId(1), grant(&[2], 3)).unwrap(); // ADDS role 2; role 1 keeps access
    exec.push(StreamId(1), tup(2, 4)).unwrap(); // still visible
    exec.push(StreamId(1), revoke(&[1], 5)).unwrap(); // revokes role 1
    exec.push(StreamId(1), tup(3, 6)).unwrap(); // no longer visible
    let ids: Vec<u64> = exec.sink(sink).tuples().map(|t| t.tid.raw()).collect();
    assert_eq!(ids, vec![1, 2]);
}

/// Attribute-granularity enforcement through the full stack (§III-C's
/// attribute-level example): an sp grants only Beats_per_min to the
/// nurse; with attribute granularity the nurse receives tuples with the
/// other attribute masked, while tuple granularity drops them entirely.
#[test]
fn attribute_granularity_masks_through_cql() {
    for attribute_mode in [true, false] {
        let mut dsms = hospital_dsms();
        if attribute_mode {
            dsms.granularity = sp_engine::Granularity::Attribute;
        }
        let nurse = dsms.register_subject("n", &["nurse_on_duty"]).unwrap();
        let q = dsms.submit("SELECT Patient_id, Beats_per_min FROM HeartRate", nurse).unwrap();
        // Attribute-level sp: nurses may read ONLY the heart beat.
        let (sid, sp) = dsms
            .insert_sp(
                "INSERT SP INTO STREAM HeartRate \
                 LET DDP = ('*', '*', 'Beats_per_min'), SRP = 'nurse_on_duty'",
                Timestamp(0),
            )
            .unwrap();
        let mut running = dsms.start();
        running.push(sid, StreamElement::punctuation(sp));
        running.push(streams::HEART_RATE, hr_tuple(120, 1, 72));

        if attribute_mode {
            let released: Vec<_> = running.results(q).tuples().collect();
            assert_eq!(released.len(), 1, "attribute grant admits the tuple");
            assert!(released[0].value(0).unwrap().is_null(), "Patient_id masked for the nurse");
            assert_eq!(released[0].value(1), Some(&Value::Int(72)));
        } else {
            assert_eq!(
                running.results(q).tuple_count(),
                0,
                "tuple granularity: attribute-only grants do not admit tuples"
            );
        }
    }
}

/// CQL UNION across the two vitals streams: each side's tuples remain
/// governed by their own stream's policy on the merged output.
#[test]
fn cql_union_keeps_per_stream_policies() {
    let mut dsms = hospital_dsms();
    let doc = dsms.register_subject("doc", &["doctor"]).unwrap();
    let q = dsms
        .submit(
            "SELECT Patient_id FROM HeartRate UNION SELECT Patient_id FROM BodyTemperature",
            doc,
        )
        .unwrap();
    // HeartRate is doctor-visible; BodyTemperature is employee-only.
    let (s1, sp1) = dsms
        .insert_sp(
            "INSERT SP INTO STREAM HeartRate LET DDP = ('*','*','*'), SRP = 'doctor'",
            Timestamp(0),
        )
        .unwrap();
    let (s2, sp2) = dsms
        .insert_sp(
            "INSERT SP INTO STREAM BodyTemperature LET DDP = ('*','*','*'), SRP = 'employee'",
            Timestamp(0),
        )
        .unwrap();
    let mut running = dsms.start();
    running.push(s1, StreamElement::punctuation(sp1));
    running.push(s2, StreamElement::punctuation(sp2));
    running.push(streams::HEART_RATE, hr_tuple(120, 1, 70));
    running.push(streams::BODY_TEMPERATURE, bt_tuple(121, 2, 98.6));
    running.push(streams::HEART_RATE, hr_tuple(122, 3, 71));
    let ids: Vec<u64> = running.results(q).tuples().map(|t| t.tid.raw()).collect();
    assert_eq!(ids, vec![120, 122], "only the heart-rate side is visible");
}
