//! The framework's core security property, tested end-to-end: **no tuple
//! is ever released to a query whose roles do not intersect the policy
//! governing that tuple** (denial-by-default included), across random
//! punctuated streams — and all three enforcement mechanisms release
//! *exactly* the same tuples.
//!
//! Streams are generated *well-formed* per the sp model's contract
//! (§III-A): every punctuation precedes the tuples it governs, and the
//! tuples of a segment fall within the segment policy's scope (tuples
//! outside any announced scope are denial-by-default in every mechanism).

use std::sync::Arc;

use proptest::prelude::*;
use sp_baselines::{run_mechanism, SpMechanism, StoreAndProbe, TupleEmbedded};
use sp_core::{
    DataDescription, RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement,
    StreamId, Timestamp, Tuple, TupleId, Value, ValueType,
};
use sp_pattern::Pattern;

fn schema() -> Arc<Schema> {
    Schema::of("s", &[("id", ValueType::Int)])
}

fn catalog() -> Arc<RoleCatalog> {
    let mut c = RoleCatalog::new();
    c.register_synthetic_roles(16);
    Arc::new(c)
}

/// One generated segment: a policy followed by its tuples.
#[derive(Debug, Clone)]
struct Segment {
    roles: Vec<u32>,
    /// Inclusive id scope; `None` covers every id.
    scope: Option<(u64, u64)>,
    negative: bool,
    /// Tuple ids, offsets into the scope when scoped.
    tuple_offsets: Vec<u64>,
}

fn arb_segments() -> impl Strategy<Value = Vec<Segment>> {
    let segment = (
        prop::collection::vec(0u32..8, 0..3),
        prop::option::of((0u64..15, 0u64..6)),
        prop::bool::ANY,
        prop::collection::vec(0u64..6, 0..5),
    )
        .prop_map(|(roles, scope, negative, tuple_offsets)| Segment {
            roles,
            scope: scope.map(|(lo, span)| (lo, lo + span)),
            negative,
            tuple_offsets,
        });
    prop::collection::vec(segment, 1..12)
}

/// Renders segments into a well-formed punctuated stream with strictly
/// increasing timestamps.
fn render(segments: &[Segment]) -> Vec<StreamElement> {
    let mut out = Vec::new();
    let mut ts = 0u64;
    for seg in segments {
        ts += 1;
        let set: RoleSet = seg.roles.iter().map(|&r| RoleId(r)).collect();
        let mut sp = SecurityPunctuation::grant_all(set, Timestamp(ts));
        if let Some((lo, hi)) = seg.scope {
            sp = sp.with_ddp(DataDescription {
                tuple: Pattern::numeric_range(lo, hi),
                ..DataDescription::everything()
            });
        }
        if seg.negative {
            sp = sp.negative();
        }
        out.push(StreamElement::punctuation(sp));
        for &off in &seg.tuple_offsets {
            ts += 1;
            let tid = match seg.scope {
                Some((lo, hi)) => lo + off.min(hi - lo),
                None => off,
            };
            out.push(StreamElement::tuple(Tuple::new(
                StreamId(1),
                TupleId(tid),
                Timestamp(ts),
                vec![Value::Int(tid as i64)],
            )));
        }
    }
    out
}

/// Reference model: each segment's policy governs exactly its own tuples;
/// negative sps deny their roles (here: the whole policy, since a lone
/// negative sp grants nobody).
fn reference_released(segments: &[Segment], query: &RoleSet) -> Vec<u64> {
    let mut released = Vec::new();
    for seg in segments {
        let allowed = if seg.negative {
            false
        } else {
            let set: RoleSet = seg.roles.iter().map(|&r| RoleId(r)).collect();
            set.intersects(query)
        };
        for &off in &seg.tuple_offsets {
            let tid = match seg.scope {
                Some((lo, hi)) => lo + off.min(hi - lo),
                None => off,
            };
            if allowed {
                released.push(tid);
            }
        }
    }
    released
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// All three mechanisms agree with each other AND with the reference
    /// model.
    #[test]
    fn mechanisms_release_exactly_the_authorized_tuples(
        segments in arb_segments(),
        query_roles in prop::collection::vec(0u32..8, 1..3),
    ) {
        let elements = render(&segments);
        let catalog = catalog();
        let schema = schema();
        let query: RoleSet = query_roles.into_iter().map(RoleId).collect();
        let expected = reference_released(&segments, &query);

        let mut sp_mech = SpMechanism::new(catalog.clone(), schema.clone(), query.clone(), 64);
        let via_sp: Vec<u64> = run_mechanism(&mut sp_mech, elements.iter().cloned())
            .iter()
            .map(|t| t.tid.raw())
            .collect();
        prop_assert_eq!(&via_sp, &expected, "sp mechanism vs reference");

        let mut store = StoreAndProbe::new(catalog.clone(), schema.clone(), query.clone(), 64);
        let via_store: Vec<u64> = run_mechanism(&mut store, elements.iter().cloned())
            .iter()
            .map(|t| t.tid.raw())
            .collect();
        prop_assert_eq!(&via_store, &expected, "store-and-probe vs reference");

        let mut embedded = TupleEmbedded::new(catalog, schema, query, 64);
        let via_embedded: Vec<u64> = run_mechanism(&mut embedded, elements.iter().cloned())
            .iter()
            .map(|t| t.tid.raw())
            .collect();
        prop_assert_eq!(&via_embedded, &expected, "tuple-embedded vs reference");
    }

    /// Full-plan invariant: through the query layer's parsed, planned and
    /// optimized pipelines, a query never receives a tuple its roles were
    /// not authorized for.
    #[test]
    fn engine_plans_never_leak(
        segments in arb_segments(),
        query_role in 0u32..8,
    ) {
        let elements = render(&segments);
        let mut dsms = sp_query::Dsms::new();
        dsms.register_stream(StreamId(1), schema()).unwrap();
        for i in 0..16 {
            dsms.register_role(&format!("r{i}")).unwrap();
        }
        let subject = dsms
            .register_subject("probe", &[&format!("r{query_role}")])
            .unwrap();
        let q = dsms.submit("SELECT id FROM s", subject).unwrap();
        let mut running = dsms.start();
        for e in &elements {
            running.push(StreamId(1), e.clone());
        }
        let released: Vec<u64> = running.results(q).tuples().map(|t| t.tid.raw()).collect();
        let expected = reference_released(&segments, &RoleSet::single(RoleId(query_role)));
        prop_assert_eq!(released, expected);
    }
}

/// Deterministic regression: override + scoped + negative interplay.
#[test]
fn scoped_negative_and_override_sequence() {
    let segments = vec![
        Segment { roles: vec![], scope: None, negative: false, tuple_offsets: vec![1] },
        Segment { roles: vec![1], scope: None, negative: false, tuple_offsets: vec![2] },
        Segment { roles: vec![1], scope: Some((10, 20)), negative: false, tuple_offsets: vec![5] },
        Segment { roles: vec![2], scope: None, negative: false, tuple_offsets: vec![3] },
        Segment { roles: vec![1], scope: None, negative: true, tuple_offsets: vec![4] },
    ];
    let elements = render(&segments);
    let query = RoleSet::single(RoleId(1));
    let expected = reference_released(&segments, &query);
    assert_eq!(expected, vec![2, 15]);
    let mut mech = SpMechanism::new(catalog(), schema(), query, 64);
    let got: Vec<u64> = run_mechanism(&mut mech, elements).iter().map(|t| t.tid.raw()).collect();
    assert_eq!(got, expected);
}
