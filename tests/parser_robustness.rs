//! Robustness fuzzing: the CQL parser, the pattern compiler and the wire
//! decoder are the system's untrusted-input surfaces; none of them may
//! panic, whatever bytes arrive.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Arbitrary text through the CQL lexer + parser: errors allowed,
    /// panics not.
    #[test]
    fn cql_parser_never_panics(src in "\\PC{0,120}") {
        let _ = sp_query::parse(&src);
    }

    /// Mutated almost-valid CQL: prefixes/suffixes of real statements.
    #[test]
    fn cql_parser_handles_truncations(cut in 0usize..200) {
        let full = "SELECT a.obj_id, AVG(b.speed) FROM LocationUpdates [RANGE 10 SECONDS] AS a, \
                    Regions [RANGE 5 SECONDS] AS b \
                    WHERE a.obj_id = b.obj_id AND a.x > 1.5 OR NOT b.region != 7 \
                    GROUP BY obj_id UNION SELECT x FROM y;";
        let cut = cut.min(full.len());
        // Find a char boundary at or below the cut.
        let mut boundary = cut;
        while !full.is_char_boundary(boundary) {
            boundary -= 1;
        }
        let _ = sp_query::parse(&full[..boundary]);
    }

    /// Arbitrary text through the pattern compiler.
    #[test]
    fn pattern_compiler_never_panics(src in "\\PC{0,60}") {
        if let Ok(p) = sp_pattern::Pattern::compile(&src) {
            // And matching is safe on arbitrary inputs too.
            let _ = p.matches("probe-123");
            let _ = p.matches("");
            let _ = p.matches_u64(u64::MAX);
        }
    }

    /// Metacharacter-dense pattern soup (more likely to hit parser edges
    /// than fully random text).
    #[test]
    fn pattern_metachar_soup_never_panics(src in r"[\\()\[\]<>{}|*+?.\-0-9a-c]{0,40}") {
        if let Ok(p) = sp_pattern::Pattern::compile(&src) {
            let _ = p.matches("abc012");
        }
    }

    /// INSERT SP statements with arbitrary embedded pattern strings: the
    /// planner surfaces pattern errors as query errors, never panics.
    #[test]
    fn insert_sp_with_arbitrary_patterns(ddp in "[^'\\\\]{0,20}", srp in "[^'\\\\]{0,20}") {
        let sql = format!(
            "INSERT SP INTO STREAM s LET DDP = ('*', '{ddp}', '*'), SRP = '{srp}'"
        );
        if let Ok(sp_query::Statement::InsertSp(stmt)) = sp_query::parse(&sql) {
            let mut catalog = sp_query::Catalog::new();
            catalog
                .register_stream(
                    sp_core::StreamId(1),
                    sp_core::Schema::of("s", &[("x", sp_core::ValueType::Int)]),
                )
                .unwrap();
            let _ = sp_query::plan_insert_sp(&catalog, &stmt, sp_core::Timestamp(0));
        }
    }
}
