//! Property tests for the wire protocol: any message built from random
//! tuples and punctuations survives an encode/decode round trip, and a
//! full simulated workload replayed over the wire produces identical query
//! results.

use proptest::prelude::*;
use sp_core::{
    wire::Message, DataDescription, RoleId, RoleSet, SecurityPunctuation, StreamElement, StreamId,
    Timestamp, Tuple, TupleId, Value,
};
use sp_pattern::Pattern;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq-based comparison, and
        // the engine's total order handles NaN separately (unit-tested).
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 àéü]{0,16}".prop_map(|s| Value::text(&s)),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (any::<u32>(), any::<u64>(), any::<u64>(), prop::collection::vec(arb_value(), 0..6)).prop_map(
        |(sid, tid, ts, values)| Tuple::new(StreamId(sid), TupleId(tid), Timestamp(ts), values),
    )
}

fn arb_sp() -> impl Strategy<Value = SecurityPunctuation> {
    (
        prop::collection::vec(0u32..512, 0..12),
        any::<u64>(),
        prop::option::of((0u64..1000, 0u64..1000)),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(roles, ts, range, negative, immutable)| {
            let set: RoleSet = roles.into_iter().map(RoleId).collect();
            let mut sp = SecurityPunctuation::grant_all(set, Timestamp(ts));
            if let Some((lo, span)) = range {
                sp = sp.with_ddp(DataDescription {
                    tuple: Pattern::numeric_range(lo, lo + span),
                    ..DataDescription::everything()
                });
            }
            if negative {
                sp = sp.negative();
            }
            if immutable {
                sp = sp.immutable();
            }
            sp
        })
}

fn arb_element() -> impl Strategy<Value = StreamElement> {
    prop_oneof![
        arb_tuple().prop_map(StreamElement::tuple),
        arb_sp().prop_map(StreamElement::punctuation),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_round_trips(
        stream in any::<u32>(),
        elements in prop::collection::vec(arb_element(), 0..24),
    ) {
        let msg = Message::new(StreamId(stream), elements);
        let bytes = msg.encode_to_vec();
        let decoded = Message::decode(&mut bytes.as_slice()).expect("round trip");
        prop_assert_eq!(decoded, msg);
    }

    /// Truncating an encoded message at any point either fails cleanly or
    /// (when the truncation point coincides with a whole-message boundary)
    /// yields a prefix — it must never panic.
    #[test]
    fn truncation_never_panics(
        elements in prop::collection::vec(arb_element(), 1..8),
        cut_ratio in 0.0f64..1.0,
    ) {
        let msg = Message::new(StreamId(1), elements);
        let mut bytes = msg.encode_to_vec();
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        bytes.truncate(cut);
        let _ = Message::decode(&mut bytes.as_slice());
    }

    /// Random byte soup must never panic the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&mut bytes.as_slice());
    }

    /// Control frames (the server protocol's handshake/backpressure
    /// vocabulary) survive an encode/decode round trip through the
    /// incremental decoder even when delivered one byte at a time.
    #[test]
    fn control_frames_round_trip_byte_by_byte(
        tenant in any::<u32>(),
        acked in any::<u64>(),
        pos in any::<u64>(),
        retry in any::<u64>(),
    ) {
        use sp_core::{Control, StreamDecoder, WireFrame};
        let ctrls = [
            Control::Hello { tenant, acked },
            Control::HelloAck { resume_from: pos },
            Control::Ack { pos },
            Control::Overloaded { retry_after_ms: retry, pos },
            Control::Draining { pos },
        ];
        let mut bytes = Vec::new();
        for c in &ctrls {
            c.encode(&mut bytes);
        }
        let mut dec = StreamDecoder::new(1 << 16);
        let mut got = Vec::new();
        for b in &bytes {
            got.extend(dec.feed(std::slice::from_ref(b)));
        }
        let want: Vec<WireFrame> = ctrls.iter().cloned().map(WireFrame::Control).collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(dec.buffered(), 0);
    }

    /// Byte soup through the incremental decoder: no panic, no frame.
    #[test]
    fn stream_decoder_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut dec = sp_core::StreamDecoder::new(1 << 16);
        let frames = dec.feed(&bytes);
        // Random bytes essentially never satisfy a CRC-32 check.
        prop_assert!(frames.is_empty());
    }
}

/// A punctuated stream shipped through the wire and replayed produces the
/// same released tuples as feeding it directly.
#[test]
fn wire_replay_preserves_query_results() {
    use sp_mog::{location_stream, WorkloadConfig};
    use std::sync::Arc;

    let workload = location_stream(&WorkloadConfig {
        objects: 50,
        ticks: 10,
        sp_every: 5,
        ..WorkloadConfig::default()
    });

    let build = || {
        let mut catalog = sp_core::RoleCatalog::new();
        catalog.register_synthetic_roles(128);
        let mut b = sp_engine::PlanBuilder::new(Arc::new(catalog));
        let src = b.source(StreamId(1), workload.schema.clone());
        let ss = b.add(sp_engine::SecurityShield::new(RoleSet::from([0])), src);
        let sink = b.sink(ss);
        (b.build(), sink)
    };

    let (mut direct, dsink) = build();
    for e in &workload.elements {
        direct.push(StreamId(1), e.clone()).unwrap();
    }

    let (mut replayed, rsink) = build();
    for chunk in workload.elements.chunks(16) {
        let bytes = Message::new(StreamId(1), chunk.to_vec()).encode_to_vec();
        let msg = Message::decode(&mut bytes.as_slice()).expect("round trip");
        for e in msg.elements {
            replayed.push(msg.stream, e).unwrap();
        }
    }

    let a: Vec<String> = direct.sink(dsink).tuples().map(|t| t.to_string()).collect();
    let b: Vec<String> = replayed.sink(rsink).tuples().map(|t| t.to_string()).collect();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}
