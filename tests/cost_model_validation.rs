//! Validates the §VI-A cost model against measured execution: the model's
//! *ordinal* predictions (which plan is cheaper) must match reality for
//! the placements the paper's optimizer reasons about. Absolute costs are
//! unitless; orderings with wide margins are what the optimizer needs.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sp_core::{
    RoleCatalog, RoleId, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, Timestamp,
    Tuple, TupleId, Value, ValueType,
};
use sp_engine::{JoinVariant, PlanBuilder};
use sp_query::{instantiate, CostModel, LogicalPlan};

fn schema(name: &str) -> Arc<Schema> {
    Schema::of(name, &[("id", ValueType::Int), ("v", ValueType::Int)])
}

fn scan(stream: u32, name: &str) -> LogicalPlan {
    LogicalPlan::Scan { stream: StreamId(stream), schema: schema(name), window_ms: 60_000 }
}

fn shield(input: LogicalPlan, roles: &[u32]) -> LogicalPlan {
    LogicalPlan::Shield {
        input: Box::new(input),
        roles: roles.iter().map(|&r| RoleId(r)).collect(),
    }
}

fn join(left: LogicalPlan, right: LogicalPlan) -> LogicalPlan {
    LogicalPlan::Join {
        left: Box::new(left),
        right: Box::new(right),
        left_key: 0,
        right_key: 0,
        window_ms: 60_000,
        variant: JoinVariant::NestedLoopPF,
    }
}

/// Executes a plan over a two-stream workload with sparse grants, so the
/// shield placement matters; returns wall time (best of 3).
fn measure(plan: &LogicalPlan) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let mut catalog = RoleCatalog::new();
        catalog.register_synthetic_roles(16);
        let mut builder = PlanBuilder::new(Arc::new(catalog));
        let mut sources = HashMap::new();
        let root = instantiate(plan, &mut builder, &mut sources);
        let _sink = builder.sink(root);
        let mut exec = builder.build();

        let start = Instant::now();
        for ts in 1..=3000u64 {
            let stream = StreamId(1 + (ts % 2) as u32);
            if ts % 20 == 0 {
                // Only one segment in five carries the probe role: the
                // shield is selective, so pre-filtering pays off.
                let roles: RoleSet = if ts % 100 == 0 { [1u32].into() } else { [5u32].into() };
                exec.push(
                    stream,
                    StreamElement::punctuation(SecurityPunctuation::grant_all(
                        roles,
                        Timestamp(ts),
                    )),
                )
                .unwrap();
            }
            let id = (ts % 40) as i64;
            exec.push(
                stream,
                StreamElement::tuple(Tuple::new(
                    stream,
                    TupleId(id as u64),
                    Timestamp(ts),
                    vec![Value::Int(id), Value::Int((ts % 10) as i64)],
                )),
            )
            .unwrap();
        }
        best = best.min(start.elapsed());
    }
    best
}

#[test]
fn model_predicts_shield_placement_ordering_around_joins() {
    let post = shield(join(scan(1, "a"), scan(2, "b")), &[1]);
    let pre = shield(join(shield(scan(1, "a"), &[1]), shield(scan(2, "b"), &[1])), &[1]);

    let model = CostModel::default();
    let predicted_post = model.cost(&post).cost;
    let predicted_pre = model.cost(&pre).cost;
    assert!(
        predicted_pre < predicted_post / 2.0,
        "model must predict a decisive win for pre-filtering: {predicted_pre} vs {predicted_post}"
    );

    let measured_post = measure(&post);
    let measured_pre = measure(&pre);
    assert!(
        measured_pre < measured_post,
        "measured ordering must agree: pre {measured_pre:?} vs post {measured_post:?}"
    );
}

#[test]
fn model_predicts_index_join_ordering_at_low_selectivity() {
    // At low σ_sp the index SAJoin must be predicted AND measured faster
    // than the nested loop.
    let mk = |variant| LogicalPlan::Join {
        left: Box::new(scan(1, "a")),
        right: Box::new(scan(2, "b")),
        left_key: 0,
        right_key: 0,
        window_ms: 60_000,
        variant,
    };
    let mut model = CostModel::default();
    model.sigma_sp = 0.2;
    let predicted_nested = model.cost(&mk(JoinVariant::NestedLoopPF)).cost;
    let predicted_index = model.cost(&mk(JoinVariant::Index)).cost;
    assert!(predicted_index < predicted_nested);

    let measured_nested = measure(&mk(JoinVariant::NestedLoopPF));
    let measured_index = measure(&mk(JoinVariant::Index));
    assert!(
        measured_index < measured_nested,
        "measured: index {measured_index:?} vs nested {measured_nested:?}"
    );
}
