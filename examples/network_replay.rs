//! Network replay: policies ride in the same message as the data, and the
//! plan runs pipeline-parallel.
//!
//! The paper's premise (§I-B) is that devices inject punctuations into the
//! data channel itself — "the policies can be encoded into a compact
//! format, and in most cases can be included into the same network message
//! with the data". This example:
//!
//! 1. simulates moving objects and *frames* their punctuated stream into
//!    wire [`Message`]s (what devices would transmit),
//! 2. reports the measured policy overhead on the wire,
//! 3. decodes the messages on the "server" and replays them through a
//!    select + shield plan on the **pipeline-parallel executor** (one
//!    thread per operator), verifying against the sequential engine.
//!
//! Run with: `cargo run --release --example network_replay`

use std::sync::Arc;

use sp_core::{wire::Message, RoleSet, StreamElement, StreamId, Value};
use sp_engine::{run_parallel, CmpOp, Expr, PlanBuilder, SecurityShield, Select, SinkRef};
use sp_mog::{location_stream, WorkloadConfig};

/// Tuples per network message (one device batch).
const BATCH: usize = 32;

fn build_plan() -> (PlanBuilder, SinkRef) {
    let mut catalog = sp_core::RoleCatalog::new();
    catalog.register_synthetic_roles(128);
    let mut b = PlanBuilder::new(Arc::new(catalog));
    let src = b.source(StreamId(1), sp_mog::MovingObjectSim::location_schema());
    let sel = b.add(
        Select::new(Expr::cmp(
            CmpOp::Ge,
            Expr::Attr(3),
            Expr::Const(Value::Float(10.0)), // moving faster than 10 m/s
        )),
        src,
    );
    let ss = b.add(SecurityShield::new(RoleSet::from([0])), sel);
    let sink = b.sink(ss);
    (b, sink)
}

fn main() {
    // 1. Devices: generate the punctuated stream and frame it.
    let workload = location_stream(&WorkloadConfig {
        objects: 150,
        ticks: 30,
        sp_every: 10,
        grant_selectivity: 0.6,
        ..WorkloadConfig::default()
    });
    let mut messages = Vec::new();
    for chunk in workload.elements.chunks(BATCH) {
        messages.push(Message::new(StreamId(1), chunk.to_vec()));
    }
    let wire_bytes: usize = messages.iter().map(|m| m.encode_to_vec().len()).sum();
    let data_only: usize = messages
        .iter()
        .map(|m| {
            Message::new(m.stream, m.elements.iter().filter(|e| e.is_tuple()).cloned().collect())
                .encode_to_vec()
                .len()
        })
        .sum();
    println!(
        "{} elements ({} tuples, {} sps) framed into {} messages: {} KB on the wire",
        workload.elements.len(),
        workload.tuples,
        workload.sps,
        messages.len(),
        wire_bytes / 1024,
    );
    println!(
        "policy overhead vs data-only: {:.1}% — the sps ride along nearly for free",
        (wire_bytes - data_only) as f64 / data_only as f64 * 100.0
    );

    // 2. Server: decode and replay.
    let mut replayed: Vec<(StreamId, StreamElement)> = Vec::new();
    for msg in &messages {
        let bytes = msg.encode_to_vec();
        let decoded = Message::decode(&mut bytes.as_slice()).expect("wire round-trip");
        for elem in decoded.elements {
            replayed.push((decoded.stream, elem));
        }
    }

    // 3a. Sequential reference run.
    let (builder, sink) = build_plan();
    let mut exec = builder.build();
    exec.push_all(replayed.clone()).expect("sequential replay");
    let sequential: Vec<String> = exec.sink(sink).tuples().map(|t| t.to_string()).collect();

    // 3b. Pipeline-parallel run: one thread per operator.
    let (builder, psink) = build_plan();
    let results = run_parallel(builder, replayed).expect("parallel replay");
    let parallel: Vec<String> = results.sink(psink).tuples().map(|t| t.to_string()).collect();

    println!(
        "released to the role-0 query: {} fast-moving updates (sequential) / {} (parallel)",
        sequential.len(),
        parallel.len()
    );
    assert_eq!(sequential, parallel, "parallel run must match exactly");
    assert!(!sequential.is_empty());
    println!("OK: wire round-trip + parallel execution reproduce the sequential results.");
}
