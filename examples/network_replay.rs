//! Network replay: policies ride in the same message as the data, and
//! the stream round-trips through the real TCP front door.
//!
//! The paper's premise (§I-B) is that devices inject punctuations into
//! the data channel itself — "the policies can be encoded into a compact
//! format, and in most cases can be included into the same network
//! message with the data". This example:
//!
//! 1. simulates moving objects and *frames* their punctuated stream into
//!    wire [`Message`]s (what devices would transmit), reporting the
//!    measured policy overhead on the wire,
//! 2. starts the multi-tenant `sp-server` on a loopback port and replays
//!    the frames through it with the real [`LoadClient`],
//! 3. scrapes the server's `/metrics` (Prometheus text exposition) and
//!    `/healthz` endpoints while it runs,
//! 4. drains the server and verifies the released tuples and the audit
//!    trail are byte-identical to running the same session in memory.
//!
//! Run with: `cargo run --release --example network_replay`

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

use sp_core::{wire::Message, StreamElement, StreamId};
use sp_engine::TelemetryConfig;
use sp_mog::{location_stream, MovingObjectSim, WorkloadConfig};
use sp_query::Dsms;
use sp_server::{ClientConfig, LoadClient, Server, ServerConfig, SessionFactory, StoreMap};

/// Tuples per network message (one device batch).
const BATCH: usize = 32;

/// Every tenant runs the same session: one analyst query over the
/// LocationUpdates stream, with telemetry (audit trail + metrics) armed.
fn session_factory() -> SessionFactory {
    Arc::new(|tenant: u32| {
        let mut dsms = Dsms::new();
        dsms.register_stream(StreamId(1), MovingObjectSim::location_schema())
            .expect("stream registers");
        dsms.register_role("analyst").expect("role registers");
        let subject = dsms
            .register_subject(&format!("tenant-{tenant}"), &["analyst"])
            .expect("subject registers");
        dsms.submit("SELECT obj_id, speed FROM LocationUpdates WHERE speed >= 10.0", subject)
            .expect("query plans");
        dsms.telemetry = Some(TelemetryConfig::enabled());
        dsms
    })
}

/// A minimal HTTP/1.0 GET against the observability listener.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("observability listener reachable");
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("request writes");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("response reads");
    body
}

fn main() {
    // 1. Devices: generate the punctuated stream and frame it.
    let workload = location_stream(&WorkloadConfig {
        objects: 150,
        ticks: 30,
        sp_every: 10,
        grant_selectivity: 0.6,
        ..WorkloadConfig::default()
    });
    let messages: Vec<Message> = workload
        .elements
        .chunks(BATCH)
        .map(|chunk| Message::new(StreamId(1), chunk.to_vec()))
        .collect();
    let wire_bytes: usize = messages.iter().map(|m| m.encode_to_vec().len()).sum();
    let data_only: usize = messages
        .iter()
        .map(|m| {
            Message::new(m.stream, m.elements.iter().filter(|e| e.is_tuple()).cloned().collect())
                .encode_to_vec()
                .len()
        })
        .sum();
    println!(
        "{} elements ({} tuples, {} sps) framed into {} messages: {} KB on the wire",
        workload.elements.len(),
        workload.tuples,
        workload.sps,
        messages.len(),
        wire_bytes / 1024,
    );
    println!(
        "policy overhead vs data-only: {:.1}% — the sps ride along nearly for free",
        (wire_bytes - data_only) as f64 / data_only as f64 * 100.0
    );

    // 2. In-memory reference run: what the server must reproduce.
    let factory = session_factory();
    let dsms = factory(0);
    let mut reference = dsms.start();
    for e in &workload.elements {
        let _ = reference.try_push(StreamId(1), e.clone());
    }
    let mut want: Vec<String> = Vec::new();
    for q in dsms.queries() {
        want.extend(reference.results(q.id).tuples().map(|t| t.to_string()));
    }
    let want_audit = reference.audit_trail().encode_to_vec();

    // 3. The real server, on a loopback port, with observability on.
    let cfg = ServerConfig { metrics: true, ..ServerConfig::default() };
    let handle = Server::start(cfg, Arc::clone(&factory), StoreMap::new()).expect("server binds");
    println!("server on {} (metrics on {:?})", handle.addr, handle.metrics_addr);

    let input: Vec<(StreamId, StreamElement)> =
        workload.elements.iter().map(|e| (StreamId(1), e.clone())).collect();
    let report = LoadClient::new(ClientConfig { frame_elements: BATCH, ..ClientConfig::default() })
        .run(handle.addr, &input);
    assert!(report.completed, "client must deliver every element: {report:?}");

    // 4. Scrape the observability endpoints while the server is live.
    let metrics_addr = handle.metrics_addr.expect("metrics listener is on");
    let health = http_get(metrics_addr, "/healthz");
    assert!(health.contains("200 OK") && health.contains("ok tenants=1"), "{health}");
    println!("healthz: ready");
    let metrics = http_get(metrics_addr, "/metrics");
    assert!(metrics.contains("sp_server_frames_total"), "server counters exposed");
    assert!(metrics.contains("sp_tuples_in_total"), "per-tenant engine counters exposed");
    let interesting: Vec<&str> = metrics
        .lines()
        .filter(|l| !l.starts_with('#') && (l.contains("frames") || l.contains("tuples")))
        .take(4)
        .collect();
    println!("metrics sample:");
    for line in interesting {
        println!("  {line}");
    }

    // 5. Drain and verify against the in-memory run.
    let drained = handle.drain();
    assert!(drained.clean, "graceful drain must checkpoint every tenant");
    let tenant = drained.tenant(0).expect("tenant 0 drained");
    let got: Vec<String> = tenant.released.iter().flat_map(|(_, v)| v.iter().cloned()).collect();
    println!(
        "released to the analyst query: {} fast-moving updates (loopback) / {} (in-memory)",
        got.len(),
        want.len()
    );
    assert_eq!(got, want, "loopback must reproduce the in-memory results exactly");
    assert_eq!(tenant.audit, want_audit, "audit trail must be byte-identical");
    assert!(!got.is_empty());
    println!("OK: wire round-trip through the live server reproduces the in-memory run.");

    // 6. Scale out: the same replay against a server running every
    // tenant at 4 shard replicas. Partitioned execution is an internal
    // concern — the released tuples and the audit trail must be
    // byte-identical to the single-shard run above.
    let cfg = ServerConfig { metrics: true, shards: 4, ..ServerConfig::default() };
    let handle = Server::start(cfg, factory, StoreMap::new()).expect("sharded server binds");
    println!("sharded server on {} (4 shard replicas per tenant)", handle.addr);
    let report = LoadClient::new(ClientConfig { frame_elements: BATCH, ..ClientConfig::default() })
        .run(handle.addr, &input);
    assert!(report.completed, "sharded run must deliver every element: {report:?}");
    let metrics = http_get(handle.metrics_addr.expect("metrics listener is on"), "/metrics");
    assert!(metrics.contains("sp_shard_count 4"), "shard width exposed on /metrics");
    let drained = handle.drain();
    assert!(drained.clean, "sharded drain must checkpoint every tenant");
    let tenant = drained.tenant(0).expect("tenant 0 drained");
    let got4: Vec<String> = tenant.released.iter().flat_map(|(_, v)| v.iter().cloned()).collect();
    assert_eq!(got4, want, "4-shard run must release the same tuples, in the same order");
    assert_eq!(tenant.audit, want_audit, "4-shard audit trail must be byte-identical");
    println!("OK: the 4-shard run is byte-identical to the sequential run.");
}
