//! Privacy protection of personal health data — the paper's Example 2 and
//! running example (Fig. 4).
//!
//! A patient with a home health-monitoring device streams HeartRate and
//! BodyTemperature readings. The patient's own policy (streamed as security
//! punctuations) authorizes only her doctor and the nurse-on-duty. A
//! hospital-side (server) policy further refines access. When vitals spike
//! far above the norm, the device escalates: it injects a policy that also
//! grants the emergency-room role, so the closest ER gains access exactly
//! for the abnormal segment — and loses it when vitals normalize.
//!
//! The demo also runs a windowed SAJoin of the two vitals streams: joined
//! readings flow only to subjects compatible with *both* base policies.
//!
//! Run with: `cargo run --example health_monitoring`

use sp_core::{StreamElement, Timestamp, Tuple};
use sp_mog::health::{
    body_temperature_schema, heart_rate_schema, streams, HealthSim, HOSPITAL_ROLES,
};
use sp_query::Dsms;

fn main() {
    let mut dsms = Dsms::new();
    dsms.register_stream(streams::HEART_RATE, heart_rate_schema()).expect("stream");
    dsms.register_stream(streams::BODY_TEMPERATURE, body_temperature_schema()).expect("stream");
    for role in HOSPITAL_ROLES {
        dsms.register_role(role).expect("role");
    }
    dsms.register_role("emergency_room").expect("role");
    dsms.register_role("insurance_company").expect("role");

    let dr_lee = dsms.register_subject("dr_lee", &["doctor"]).expect("subject");
    let er_desk = dsms.register_subject("er_desk", &["emergency_room"]).expect("subject");
    let actuary = dsms.register_subject("actuary", &["insurance_company"]).expect("subject");

    // Continuous queries: the doctor watches raw heart rates; the ER and
    // the insurance company try to do the same; the doctor additionally
    // correlates heart rate with temperature via a windowed join.
    let q_doctor =
        dsms.submit("SELECT Patient_id, Beats_per_min FROM HeartRate", dr_lee).expect("query");
    let q_er =
        dsms.submit("SELECT Patient_id, Beats_per_min FROM HeartRate", er_desk).expect("query");
    let q_insurance =
        dsms.submit("SELECT Patient_id, Beats_per_min FROM HeartRate", actuary).expect("query");
    let q_join = dsms
        .submit(
            "SELECT h.Patient_id, h.Beats_per_min, t.Temperature \
             FROM HeartRate [RANGE 5 SECONDS] AS h, BodyTemperature [RANGE 5 SECONDS] AS t \
             WHERE h.Patient_id = t.Patient_id",
            dr_lee,
        )
        .expect("query");

    println!("doctor's join plan (after optimization):\n{}", dsms.queries()[3].plan);

    let mut running = dsms.start();

    // Patient 120's standing policy, written in the paper's CQL extension:
    // doctor or nurse-on-duty only, for her tuples on any vitals stream.
    let normal_policy = |ts: Timestamp, dsms: &Dsms| {
        dsms.insert_sp(
            "INSERT SP INTO STREAM HeartRate \
             LET DDP = ('*', '120', '*'), SRP = 'doctor|nurse_on_duty'",
            ts,
        )
        .expect("sp parses")
    };
    // The escalation policy adds the ER while vitals are abnormal.
    let emergency_policy = |ts: Timestamp, dsms: &Dsms| {
        dsms.insert_sp(
            "INSERT SP INTO STREAM HeartRate \
             LET DDP = ('*', '120', '*'), SRP = 'doctor|nurse_on_duty|emergency_room'",
            ts,
        )
        .expect("sp parses")
    };

    let mut sim = HealthSim::new(120, 1, 1000, 2026);
    let mut was_emergency = false;
    let mut escalations = 0u32;
    for _ in 0..60 {
        let (hr, bt, _) = sim.tick();
        let beats = hr[0].value(1).and_then(sp_core::Value::as_i64).unwrap_or(0);
        let emergency = beats > 110;
        let ts = hr[0].ts;

        // The device adapts its punctuations to the patient's condition.
        if emergency != was_emergency {
            let (sid, sp) = if emergency {
                escalations += 1;
                println!("!! {ts}: {beats} bpm — escalating access to the ER");
                emergency_policy(ts.minus(1), &dsms)
            } else {
                println!("   {ts}: {beats} bpm — back to normal, ER access revoked");
                normal_policy(ts.minus(1), &dsms)
            };
            running.push(sid, StreamElement::punctuation(sp));
            was_emergency = emergency;
        } else if ts.millis() == 1000 {
            // Initial policy before the first reading.
            let (sid, sp) = normal_policy(Timestamp::ZERO, &dsms);
            running.push(sid, StreamElement::punctuation(sp));
        }

        // Temperature stream carries the same policy, injected separately.
        let (tsid, tsp) = dsms
            .insert_sp(
                "INSERT SP INTO STREAM BodyTemperature \
                 LET DDP = ('*', '120', '*'), SRP = 'doctor|nurse_on_duty'",
                ts.minus(1),
            )
            .expect("sp parses");
        running.push(tsid, StreamElement::punctuation(tsp));

        push_tuples(&mut running, streams::HEART_RATE, hr);
        push_tuples(&mut running, streams::BODY_TEMPERATURE, bt);
    }

    let doctor = running.results(q_doctor).tuple_count();
    let er = running.results(q_er).tuple_count();
    let insurance = running.results(q_insurance).tuple_count();
    let joined = running.results(q_join).tuple_count();

    println!("---");
    println!("readings seen by the doctor:            {doctor:>4}");
    println!("readings seen by the emergency room:    {er:>4}");
    println!("readings seen by the insurance company: {insurance:>4}");
    println!("joined HR×Temp readings (doctor):       {joined:>4}");
    println!("escalation episodes: {escalations}");

    assert_eq!(doctor, 60, "the doctor always has access");
    assert_eq!(insurance, 0, "third parties never gain access");
    assert!(er < doctor, "the ER sees only abnormal segments");
    assert!(joined > 0, "the join produces doctor-visible results");
    if escalations > 0 {
        assert!(er > 0, "escalated segments reached the ER");
    }
    println!("OK: access followed the patient's streaming policy exactly.");
}

fn push_tuples(running: &mut sp_query::RunningDsms, sid: sp_core::StreamId, tuples: Vec<Tuple>) {
    for t in tuples {
        running.push(sid, StreamElement::tuple(t));
    }
}
