//! Security-aware query optimization in action (§VI of the paper).
//!
//! Builds the three canonical Security Shield placements for a windowed
//! join query — pre-filtering, post-filtering and optimizer-chosen
//! intermediate placement — costs them with the §VI-A model, shows the
//! Table II rules the optimizer applied, and then *executes* the
//! unoptimized and optimized plans on the same punctuated stream to verify
//! they release exactly the same tuples.
//!
//! Run with: `cargo run --example optimizer_demo`

use std::collections::HashMap;
use std::sync::Arc;

use sp_core::{
    RoleCatalog, RoleSet, Schema, SecurityPunctuation, StreamElement, StreamId, Timestamp, Tuple,
    TupleId, Value, ValueType,
};
use sp_engine::{JoinVariant, PlanBuilder};
use sp_query::{instantiate, CostModel, InputStats, LogicalPlan, Optimizer};

fn schema(name: &str) -> Arc<Schema> {
    Schema::of(name, &[("obj_id", ValueType::Int), ("v", ValueType::Int)])
}

fn scan(id: u32, name: &str) -> LogicalPlan {
    LogicalPlan::Scan { stream: StreamId(id), schema: schema(name), window_ms: 10_000 }
}

fn shield(input: LogicalPlan, roles: &RoleSet) -> LogicalPlan {
    LogicalPlan::Shield { input: Box::new(input), roles: roles.clone() }
}

fn join(left: LogicalPlan, right: LogicalPlan) -> LogicalPlan {
    LogicalPlan::Join {
        left: Box::new(left),
        right: Box::new(right),
        left_key: 0,
        right_key: 0,
        window_ms: 10_000,
        variant: JoinVariant::Index,
    }
}

fn main() {
    let roles = RoleSet::from([1]);
    let mut model = CostModel::default();
    model.set_stream(StreamId(1), InputStats { lambda: 2000.0, lambda_sp: 200.0 });
    model.set_stream(StreamId(2), InputStats { lambda: 2000.0, lambda_sp: 200.0 });

    // The three placements of §IV-A.
    let post_filtering = shield(join(scan(1, "gps_a"), scan(2, "gps_b")), &roles);
    let pre_filtering = join(shield(scan(1, "gps_a"), &roles), shield(scan(2, "gps_b"), &roles));

    println!("== post-filtering plan (SS fixed at the top) ==");
    println!("{post_filtering}");
    println!("cost: {:.0}\n", model.cost(&post_filtering).cost);

    println!("== pre-filtering plan (SS fixed at the inputs) ==");
    println!("{pre_filtering}");
    println!("cost: {:.0}\n", model.cost(&pre_filtering).cost);

    let optimizer = Optimizer::new(model.clone());
    let (best, report) = optimizer.optimize(&post_filtering);
    println!("== optimizer-chosen plan ==");
    println!("{best}");
    println!(
        "cost: {:.0} (from {:.0}; {} candidates examined)",
        report.final_cost, report.initial_cost, report.candidates_examined
    );
    println!("rules applied: {:?}\n", report.applied);
    assert!(report.final_cost <= report.initial_cost);

    // Execute both the naive and the optimized plan on identical input and
    // compare outputs — the rewrites are behaviour-preserving.
    let released_naive = execute(&post_filtering);
    let released_best = execute(&best);
    println!(
        "released tuples: naive = {}, optimized = {}",
        released_naive.len(),
        released_best.len()
    );
    assert_eq!(released_naive, released_best, "rewrites preserve results");
    println!("OK: the optimized plan is cheaper and result-equivalent.");
}

/// Runs a plan over a fixed two-stream punctuated workload, returning the
/// released (joined) tuple signatures.
fn execute(plan: &LogicalPlan) -> Vec<String> {
    let mut catalog = RoleCatalog::new();
    catalog.register_synthetic_roles(8);
    let mut builder = PlanBuilder::new(Arc::new(catalog));
    let mut sources = HashMap::new();
    let root = instantiate(plan, &mut builder, &mut sources);
    let sink = builder.sink(root);
    let mut exec = builder.build();

    for ts in 0..200u64 {
        let stream = StreamId(1 + (ts % 2) as u32);
        if ts % 10 == 0 {
            // Alternate segments between an authorized and an
            // unauthorized policy, on BOTH streams.
            let roles = if ts % 20 == 0 { RoleSet::from([1, 2]) } else { RoleSet::from([3]) };
            for sid in [StreamId(1), StreamId(2)] {
                exec.push(
                    sid,
                    StreamElement::punctuation(SecurityPunctuation::grant_all(
                        roles.clone(),
                        Timestamp(ts),
                    )),
                )
                .unwrap();
            }
        }
        exec.push(
            stream,
            StreamElement::tuple(Tuple::new(
                stream,
                TupleId(ts % 7),
                Timestamp(ts),
                vec![Value::Int((ts % 7) as i64), Value::Int(ts as i64)],
            )),
        )
        .unwrap();
    }

    let mut out: Vec<String> = exec.sink(sink).tuples().map(|t| t.to_string()).collect();
    out.sort();
    out
}
