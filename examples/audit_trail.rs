//! Security-decision audit trail over the location-privacy workload.
//!
//! Re-runs the context-aware-spam scenario of `location_privacy.rs` with
//! telemetry armed: every access-control decision the engine makes —
//! which tuples were released, to which role, under which in-stream
//! policy, and which were suppressed — lands in a bounded flight
//! recorder. Afterwards the example prints a human-readable excerpt of
//! the trail ("tuple 42 released to role family_member via DDP @1999ms")
//! and a Prometheus-format metrics snapshot.
//!
//! Run with: `cargo run --release --example audit_trail`

use std::sync::Arc;

use sp_core::{DataDescription, RoleSet, SecurityPunctuation, StreamElement, StreamId};
use sp_engine::TelemetryConfig;
use sp_mog::{MovingObjectSim, RoadNetwork};
use sp_pattern::Pattern;
use sp_query::Dsms;

const OBJECTS: usize = 24;
const TICKS: usize = 10;

fn main() {
    let mut dsms = Dsms::new();
    let stream = StreamId(1);
    dsms.register_stream(stream, MovingObjectSim::location_schema()).expect("stream");
    dsms.register_role("retail_store").expect("role");
    dsms.register_role("family_member").expect("role");
    let store = dsms.register_subject("mall_kiosk", &["retail_store"]).expect("subject");
    let family = dsms.register_subject("parent", &["family_member"]).expect("subject");
    let q_store = dsms.submit("SELECT obj_id, x, y FROM LocationUpdates", store).expect("query");
    let q_family = dsms
        .submit("SELECT obj_id, x, y FROM LocationUpdates WHERE obj_id = 0", family)
        .expect("query");

    // Arm the flight recorder and the latency/queue histograms.
    dsms.telemetry = Some(TelemetryConfig::enabled());

    let store_role = dsms.catalog.roles.lookup_role("retail_store").expect("role exists");
    let family_role = dsms.catalog.roles.lookup_role("family_member").expect("role exists");

    let mut running = dsms.start();

    // Every third device opts out of marketing: its sps never grant the
    // retail_store role, so the store's shield suppresses its tuples.
    let policy_for = |obj: u64, ts: sp_core::Timestamp| {
        let mut roles = RoleSet::new();
        roles.insert(family_role);
        if !obj.is_multiple_of(3) {
            roles.insert(store_role);
        }
        SecurityPunctuation {
            ddp: DataDescription {
                tuple: Pattern::numeric_range(obj, obj),
                ..DataDescription::everything()
            },
            ..SecurityPunctuation::grant_all(roles, ts)
        }
    };

    let network = Arc::new(RoadNetwork::grid(8, 8, 100.0, 7));
    let mut sim = MovingObjectSim::new(network, stream, OBJECTS, 1000, 7);
    for _ in 0..TICKS {
        for update in sim.tick() {
            let sp = policy_for(update.tid.raw(), update.ts.minus(1));
            running.push(stream, StreamElement::punctuation(sp));
            running.push(stream, StreamElement::tuple(update));
        }
    }

    let store_seen = running.results(q_store).tuple_count();
    let family_seen = running.results(q_family).tuple_count();
    println!("store received {store_seen} updates, parent received {family_seen}");

    // ---- the audit trail -------------------------------------------------
    let trail = running.audit_trail();
    assert!(!trail.is_empty(), "telemetry was armed; the trail must not be empty");
    let rendered = trail.render(Some(&dsms.catalog.roles));
    let lines: Vec<&str> = rendered.lines().collect();
    println!("\naudit trail: {} records ({} evicted from the ring)", trail.len(), trail.evicted());
    println!("first decisions on the store's shield:");
    for line in lines.iter().filter(|l| l.contains("released")).take(6) {
        println!("  {line}");
    }
    println!("suppressions (opted-out devices):");
    for line in lines.iter().filter(|l| l.contains("suppressed")).take(4) {
        println!("  {line}");
    }

    // Every release the sinks saw is accounted for in the trail.
    let released_records = lines.iter().filter(|l| l.contains("released")).count();
    assert_eq!(released_records, store_seen + family_seen, "one audit record per release");

    // ---- metrics ---------------------------------------------------------
    let prom = running.metrics_prometheus();
    println!("\nmetrics excerpt (Prometheus exposition):");
    for line in prom
        .lines()
        .filter(|l| l.starts_with("sp_tuples_shielded_total") || l.contains("latency_ns_count"))
        .take(8)
    {
        println!("  {line}");
    }
    assert!(prom.contains("sp_operator_latency_ns_bucket"), "metrics mode must emit histograms");
    println!("\nOK: every security decision is on the record.");
}
