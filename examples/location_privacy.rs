//! Protection against context-aware spam — the paper's Example 1 and the
//! workload of its evaluation (§VII-A).
//!
//! Moving objects (cars, pedestrians with GPS devices) travel a road
//! network and continuously report their location. A store registers the
//! paper's motivating query — *"continuously retrieve all moving objects in
//! the two-mile region around the store (to send sale advertisements to
//! their cell phones)"*. Each object streams its own tuple-granularity
//! policy: privacy-conscious objects never authorize the `retail_store`
//! role, so the store's query simply never sees them, while a family
//! query with the `family_member` role tracks its own device regardless.
//!
//! Run with: `cargo run --release --example location_privacy`

use std::sync::Arc;

use sp_core::{DataDescription, RoleSet, SecurityPunctuation, StreamElement, StreamId, Tuple};
use sp_mog::{MovingObjectSim, RoadNetwork};
use sp_pattern::Pattern;
use sp_query::Dsms;

const OBJECTS: usize = 120;
const TICKS: usize = 40;
/// "Two mile region" mapped onto the synthetic network's meters.
const REGION: f64 = 700.0;
const STORE: (f64, f64) = (800.0, 800.0);

fn main() {
    let mut dsms = Dsms::new();
    let stream = StreamId(1);
    dsms.register_stream(stream, MovingObjectSim::location_schema()).expect("stream");
    dsms.register_role("retail_store").expect("role");
    dsms.register_role("family_member").expect("role");
    dsms.register_role("law_enforcement").expect("role");
    let store = dsms.register_subject("mall_kiosk", &["retail_store"]).expect("subject");
    let family = dsms.register_subject("parent", &["family_member"]).expect("subject");

    // The store's context-aware advertisement query.
    let q_store = dsms
        .submit(
            &format!(
                "SELECT obj_id, x, y FROM LocationUpdates \
                 WHERE x >= {} AND x <= {} AND y >= {} AND y <= {}",
                STORE.0 - REGION,
                STORE.0 + REGION,
                STORE.1 - REGION,
                STORE.1 + REGION
            ),
            store,
        )
        .expect("query");
    // A parent tracks the family device (object 0).
    let q_family = dsms
        .submit("SELECT obj_id, x, y FROM LocationUpdates WHERE obj_id = 0", family)
        .expect("query");

    println!("store query plan:\n{}", dsms.queries()[0].plan);

    let store_role = dsms.catalog.roles.lookup_role("retail_store").expect("role exists");
    let family_role = dsms.catalog.roles.lookup_role("family_member").expect("role exists");
    let police_role = dsms.catalog.roles.lookup_role("law_enforcement").expect("role exists");

    let mut running = dsms.start();

    // Every third object opts out of marketing: its punctuations never
    // include the retail_store role ("blocking context-aware spam").
    let policy_for = |obj: u64, ts: sp_core::Timestamp| {
        let mut roles = RoleSet::new();
        roles.insert(family_role);
        roles.insert(police_role);
        if !obj.is_multiple_of(3) {
            roles.insert(store_role);
        }
        SecurityPunctuation {
            ddp: DataDescription {
                tuple: Pattern::numeric_range(obj, obj),
                ..DataDescription::everything()
            },
            ..SecurityPunctuation::grant_all(roles, ts)
        }
    };

    let network = Arc::new(RoadNetwork::grid(16, 16, 100.0, 7));
    let mut sim = MovingObjectSim::new(network, stream, OBJECTS, 1000, 7);

    let mut in_region_total = 0usize;
    for _ in 0..TICKS {
        let updates = sim.tick();
        for update in updates {
            if in_region(&update) {
                in_region_total += 1;
            }
            // Each device ships its policy in the same network message as
            // the update: one sp preceding its tuple.
            let sp = policy_for(update.tid.raw(), update.ts.minus(1));
            running.push(stream, StreamElement::punctuation(sp));
            running.push(stream, StreamElement::tuple(update));
        }
    }

    let store_seen = running.results(q_store).tuple_count();
    let family_seen = running.results(q_family).tuple_count();
    let opted_out_seen = running.results(q_store).tuples().filter(|t| t.tid.raw() % 3 == 0).count();

    println!("---");
    println!("location updates in the store's region: {in_region_total}");
    println!("updates the store actually received:    {store_seen}");
    println!("  ... from opted-out devices:           {opted_out_seen}");
    println!("updates the parent received (object 0): {family_seen}");

    assert_eq!(opted_out_seen, 0, "opted-out devices are invisible to the store");
    assert!(store_seen < in_region_total, "opt-outs reduce the store's feed");
    assert_eq!(family_seen, TICKS, "the family role is always authorized");
    println!("OK: context-aware spam blocked by in-stream policies.");
}

fn in_region(t: &Tuple) -> bool {
    let x = t.value(1).and_then(sp_core::Value::as_f64).unwrap_or(f64::NAN);
    let y = t.value(2).and_then(sp_core::Value::as_f64).unwrap_or(f64::NAN);
    (STORE.0 - REGION..=STORE.0 + REGION).contains(&x)
        && (STORE.1 - REGION..=STORE.1 + REGION).contains(&y)
}
