//! Quickstart: enforce stream access control with security punctuations.
//!
//! Builds a tiny DSMS, registers a stream and two subjects with different
//! roles, submits a continuous query per subject, and interleaves security
//! punctuations with the data — watching the engine release each tuple only
//! to the queries its policy authorizes.
//!
//! Run with: `cargo run --example quickstart`

use sp_core::{Schema, StreamElement, StreamId, Timestamp, Tuple, TupleId, Value, ValueType};
use sp_query::Dsms;

fn main() {
    // 1. Set up the DSMS: one GPS stream, two roles, two subjects.
    let mut dsms = Dsms::new();
    let stream = StreamId(1);
    dsms.register_stream(
        stream,
        Schema::of(
            "LocationUpdates",
            &[("obj_id", ValueType::Int), ("x", ValueType::Float), ("y", ValueType::Float)],
        ),
    )
    .expect("stream registers");
    dsms.register_role("family_member").expect("role registers");
    dsms.register_role("retail_store").expect("role registers");
    let spouse = dsms.register_subject("spouse", &["family_member"]).expect("subject");
    let shop = dsms.register_subject("corner_shop", &["retail_store"]).expect("subject");

    // 2. Each subject registers a continuous query; the query inherits the
    //    subject's roles (its "security predicate").
    let q_family =
        dsms.submit("SELECT obj_id, x, y FROM LocationUpdates", spouse).expect("query plans");
    let q_store =
        dsms.submit("SELECT obj_id, x, y FROM LocationUpdates", shop).expect("query plans");
    println!("family query plan:\n{}", dsms.queries()[0].plan);
    println!("store query plan:\n{}", dsms.queries()[1].plan);

    // 3. Start the engine and stream data with interleaved punctuations,
    //    declared in the paper's CQL extension.
    let mut running = dsms.start();

    let tuple = |tid: u64, ts: u64, x: f64, y: f64| {
        StreamElement::tuple(Tuple::new(
            stream,
            TupleId(tid),
            Timestamp(ts),
            vec![Value::Int(tid as i64), Value::Float(x), Value::Float(y)],
        ))
    };

    // Segment 1: the device owner allows everyone (family AND stores).
    let (sid, open) = dsms
        .insert_sp(
            "INSERT SP INTO STREAM LocationUpdates \
             LET DDP = ('*', '*', '*'), SRP = 'family_member|retail_store'",
            Timestamp(0),
        )
        .expect("sp parses");
    running.push(sid, StreamElement::punctuation(open));
    running.push(stream, tuple(7, 1, 10.0, 20.0));

    // Segment 2: entering a private area — block the stores immediately.
    let (sid, private) = dsms
        .insert_sp(
            "INSERT SP INTO STREAM LocationUpdates \
             LET DDP = ('*', '*', '*'), SRP = 'family_member'",
            Timestamp(10),
        )
        .expect("sp parses");
    running.push(sid, StreamElement::punctuation(private));
    running.push(stream, tuple(7, 11, 11.5, 20.5));
    running.push(stream, tuple(7, 12, 13.0, 21.0));

    // 4. Inspect what each query was allowed to see.
    let family: Vec<String> = running.results(q_family).tuples().map(|t| format!("{t}")).collect();
    let store: Vec<String> = running.results(q_store).tuples().map(|t| format!("{t}")).collect();

    println!("family sees {} updates:", family.len());
    for t in &family {
        println!("  {t}");
    }
    println!("store sees {} updates:", store.len());
    for t in &store {
        println!("  {t}");
    }

    assert_eq!(family.len(), 3, "family is authorized throughout");
    assert_eq!(store.len(), 1, "store lost access after the policy change");
    println!("OK: the store was cut off the moment the policy changed.");
}
